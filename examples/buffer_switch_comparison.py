#!/usr/bin/env python
"""Compare the two buffer-switch algorithms under all-to-all load.

Reproduces the Figure 7 vs Figure 9 comparison at a few cluster sizes:
the full copy's cost is pinned at capacity/copy-rate (dominated by the
14 MB/s write-combining read of the NIC send queue), while the improved
valid-packets-only copy scales with occupancy and lands inside the
paper's "< 1.25% of a 1-second quantum" envelope.

Run:  python examples/buffer_switch_comparison.py
"""

from repro.experiments.figure7 import run_switch_point
from repro.gluefm.switch import FullCopy, ValidOnlyCopy


def main():
    print("Context-switch stage costs under all-to-all load")
    print("(cycles on the 200 MHz host, mean per switch)\n")
    header = (f"{'nodes':>5}  {'algorithm':>16}  {'halt':>9}  {'switch':>10}  "
              f"{'release':>9}  {'recv occ':>8}  {'%1s quantum':>10}")
    print(header)
    print("-" * len(header))
    for nodes in (4, 8, 16):
        for algo in (FullCopy(), ValidOnlyCopy()):
            point = run_switch_point(nodes, algo, num_switches=6)
            cyc = point.mean_cycles
            pct = 100.0 * cyc.switch / point.clock_hz / 1.0
            print(f"{nodes:>5}  {algo.name:>16}  {cyc.halt:>9,}  "
                  f"{cyc.switch:>10,}  {cyc.release:>9,}  "
                  f"{point.occupancy.mean_recv:>8.1f}  {pct:>9.3f}%")
    print()
    print("The paper's claims: full copy < 17,000,000 cycles (85 ms); improved")
    print("copy < 2,500,000 cycles (12.5 ms) = < 1.25% of a 1 s gang quantum.")


if __name__ == "__main__":
    main()
