#!/usr/bin/env python
"""An MPI application on the gang-scheduled cluster.

A 1-D Jacobi-style stencil: each rank owns a block of cells, exchanges
halo rows with its neighbours every iteration (tagged sendrecv), and
every few iterations the ranks agree on the global residual with an
allreduce.  Two such jobs are gang-scheduled against each other on the
same nodes, so every buffer switch happens mid-computation — the paper's
machinery, exercised by exactly the kind of application it was built for.

Run:  python examples/mpi_stencil.py
"""

import numpy as np

from repro.mpi import Communicator
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec

CELLS_PER_RANK = 512
ITERATIONS = 40
HALO_BYTES = 8 * 2            # two doubles of halo per edge
CHECK_EVERY = 10
COMPUTE_TIME = 400e-6         # simulated host time per Jacobi sweep


def stencil_workload(ep):
    """One rank of the Jacobi job."""
    comm = Communicator(ep)
    rng = np.random.default_rng(ep.rank)
    block = rng.random(CELLS_PER_RANK)
    left = comm.rank - 1 if comm.rank > 0 else None
    right = comm.rank + 1 if comm.rank < comm.size - 1 else None

    residuals = []
    for it in range(ITERATIONS):
        # Halo exchange with both neighbours (tag = iteration).
        left_halo = right_halo = None
        if right is not None:
            yield from comm.send(right, HALO_BYTES, tag=it, payload=block[-1])
        if left is not None:
            yield from comm.send(left, HALO_BYTES, tag=it, payload=block[0])
        if left is not None:
            msg = yield from comm.recv(left, tag=it)
            left_halo = msg.payload
        if right is not None:
            msg = yield from comm.recv(right, tag=it)
            right_halo = msg.payload

        padded = np.concatenate((
            [left_halo if left_halo is not None else block[0]],
            block,
            [right_halo if right_halo is not None else block[-1]],
        ))
        new_block = 0.5 * padded[1:-1] + 0.25 * (padded[:-2] + padded[2:])
        local_residual = float(np.abs(new_block - block).sum())
        block = new_block
        # The sweep itself costs host time on the simulated Pentium-Pro.
        yield ep.library.host.cpu.busy(COMPUTE_TIME)

        if (it + 1) % CHECK_EVERY == 0:
            total = yield from comm.allreduce(local_residual, nbytes=8)
            residuals.append(total)

    return {"rank": comm.rank, "residuals": residuals,
            "checksum": float(block.sum())}


def main():
    cluster = ParParCluster(ClusterConfig(
        num_nodes=4, time_slots=2, quantum=0.006, buffer_switching=True,
    ))
    jobs = [cluster.submit(JobSpec(f"jacobi-{i}", 4, stencil_workload))
            for i in range(2)]
    print("Two 4-rank Jacobi jobs gang-scheduled on 4 nodes "
          f"(quantum {cluster.config.quantum * 1000:.0f} ms)")
    cluster.run_until_finished(jobs)

    for job in jobs:
        res = job.result_of(0)["residuals"]
        trend = " -> ".join(f"{r:.2f}" for r in res)
        print(f"  job {job.job_id}: global residual {trend}")
        checks = [job.result_of(r)["checksum"] for r in range(4)]
        print(f"           per-rank checksums {['%.2f' % c for c in checks]}")
        assert res == sorted(res, reverse=True), "Jacobi must converge"

    print(f"\nContext switches: {cluster.masterd.switches_completed}, "
          f"packets dropped: {cluster.total_dropped()}")
    halt, switch, release = cluster.recorder.mean_stage_seconds()
    print(f"Mean buffer-switch stage: {switch * 1000:.2f} ms "
          f"(halt {halt * 1e6:.0f} us, release {release * 1e6:.0f} us)")


if __name__ == "__main__":
    main()
