#!/usr/bin/env python
"""Quickstart: measure FM point-to-point bandwidth under both buffer
management schemes.

Builds a two-node Myrinet/FM network (no cluster daemons), runs the
paper's bandwidth benchmark once with the original static partitioning
(sized for 4 time-sliced contexts) and once with the paper's full-buffer
scheme, and prints the comparison — the core of the paper in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro.errors import CreditError
from repro.fm.buffers import FullBuffer, StaticPartition
from repro.fm.config import FMConfig
from repro.fm.harness import FMNetwork
from repro.sim import Simulator
from repro.units import mb_per_second


def measure(policy, contexts: int, messages: int = 400, nbytes: int = 16384) -> float:
    """Bandwidth [MB/s] of one p2p run under `policy`."""
    sim = Simulator()
    config = FMConfig(max_contexts=contexts, num_processors=16)
    net = FMNetwork(sim, num_nodes=2, config=config, strict_no_loss=True)
    sender, receiver = net.create_job(job_id=1, node_ids=[0, 1], policy=policy)

    start = {}

    def tx():
        start["t"] = sim.now
        for _ in range(messages):
            yield from sender.library.send(1, nbytes)

    def rx():
        yield from receiver.library.extract_messages(messages)

    sim.process(tx())
    done = sim.process(rx())
    try:
        sim.run_until_processed(done, max_events=50_000_000)
    except CreditError:
        return 0.0  # zero credits: communication impossible
    return mb_per_second(messages * nbytes, sim.now - start["t"])


def main():
    print("FM p2p bandwidth, 16 KB messages, 16-processor credit sizing")
    print(f"{'contexts':>8}  {'static partition':>18}  {'full buffer (paper)':>20}")
    for contexts in (1, 2, 4, 8):
        # "report" mode keeps the legacy zero-credit geometry so the n=8
        # collapse prints as 0.0 MB/s instead of refusing to configure.
        static = measure(StaticPartition(on_zero_credit="report"), contexts)
        full = measure(FullBuffer(), contexts)
        print(f"{contexts:>8}  {static:>15.1f} MB/s  {full:>17.1f} MB/s")
    print()
    print("Static partitioning collapses quadratically (C0 = Br/n^2p) and is")
    print("dead by 8 contexts; the gang-scheduled full-buffer scheme (C0 = Br/p)")
    print("is independent of the number of time-sliced jobs.")


if __name__ == "__main__":
    main()
