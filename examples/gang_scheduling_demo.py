#!/usr/bin/env python
"""Gang scheduling on the full ParPar cluster.

Boots a complete simulated ParPar system — masterd, one noded per node,
glueFM, Myrinet fabric, control Ethernet — submits three parallel jobs of
different sizes through the jobrep, shows the DHC placements in the gang
matrix, lets the round-robin scheduler run them to completion with
buffer-switching context switches, and prints the per-switch stage costs.

Run:  python examples/gang_scheduling_demo.py
"""

from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.workloads.alltoall import alltoall_benchmark
from repro.workloads.bandwidth import bandwidth_benchmark
from repro.workloads.synthetic import ring_benchmark


def main():
    cluster = ParParCluster(ClusterConfig(
        num_nodes=8, time_slots=3, quantum=0.008,
        buffer_switching=True,
    ))

    jobs = [
        cluster.submit(JobSpec("alltoall-8", 8, alltoall_benchmark(60, 2000))),
        cluster.submit(JobSpec("ring-4", 4, ring_benchmark(400, 1500))),
        cluster.submit(JobSpec("bandwidth-2", 2, bandwidth_benchmark(600, 1400))),
    ]

    print("Gang matrix after loading (DHC buddy placement):")
    print(cluster.matrix.render())
    print()

    cluster.run_until_finished(jobs)

    print("All jobs finished.")
    for job in jobs:
        span = job.finished_at - job.submitted_at
        print(f"  job {job.job_id} ({job.spec.name}): slot {job.slot}, "
              f"nodes {job.node_ids}, wall {span * 1000:.1f} ms")
    bw = jobs[2].result_of(0)
    print(f"  bandwidth-2 measured {bw.mbps:.1f} MB/s across its time slices")
    print()

    print(f"Context switches completed: {cluster.masterd.switches_completed}")
    halt, switch, release = cluster.recorder.mean_stage_seconds()
    print(f"Mean stage costs: halt {halt * 1e6:.0f} us, "
          f"buffer switch {switch * 1e3:.2f} ms, release {release * 1e6:.0f} us")
    send_occ, recv_occ = cluster.recorder.mean_occupancy()
    print(f"Mean buffer occupancy at switch: send {send_occ:.1f} pkts, "
          f"recv {recv_occ:.1f} pkts")
    print(f"Packets dropped anywhere: {cluster.total_dropped()}")


if __name__ == "__main__":
    main()
