#!/usr/bin/env python
"""A tour of FM's credit-based flow control.

Watches the credit machinery in action on a two-node link: window
exhaustion, low-water-mark refills, piggybacking on reverse traffic, and
the analytic model's prediction next to the simulator's measurement for
a sweep of credit windows.

Run:  python examples/flow_control_tour.py
"""

from repro.errors import CreditError
from repro.fm.buffers import StaticPartition
from repro.fm.config import FMConfig
from repro.fm.harness import FMNetwork
from repro.model.analytic import predict_p2p_bandwidth
from repro.sim import Simulator
from repro.units import mb_per_second


def trace_window_exhaustion():
    """Show the sender stalling on credits and resuming on a refill."""
    sim = Simulator()
    config = FMConfig(max_contexts=4, num_processors=16)  # C0 = 2
    net = FMNetwork(sim, num_nodes=2, config=config)
    sender, receiver = net.create_job(1, [0, 1], StaticPartition())
    c0 = sender.context.geometry.initial_credits
    print(f"window: C0 = {c0} credits per peer, refill threshold = "
          f"{sender.context.credits.refill_threshold}")

    events = []

    def tx():
        for i in range(6):
            before = sender.context.credits.available(1)
            yield from sender.library.send(1, 1400)
            events.append((sim.now, f"sent msg {i} (credits {before}->"
                           f"{sender.context.credits.available(1)})"))

    def rx():
        yield from receiver.library.extract_messages(6)

    sim.process(tx())
    done = sim.process(rx())
    sim.run_until_processed(done, max_events=1_000_000)
    for t, what in events:
        print(f"  t={t * 1e6:7.1f} us  {what}")
    print(f"  refills received by sender: "
          f"{sender.context.credits.credits_received} credits\n")


def model_vs_simulation():
    """The analytic window model against the DES, across window sizes."""
    print("analytic model vs simulation (16 KB messages):")
    print(f"{'contexts':>8} {'C0':>4} {'model MB/s':>11} {'sim MB/s':>9}")
    for contexts in (1, 2, 3, 4, 5, 8):
        config = FMConfig(max_contexts=contexts, num_processors=16)
        policy = StaticPartition(on_zero_credit="report")
        geo = policy.geometry(config)
        predicted = predict_p2p_bandwidth(config, geo, 16384).mbps

        sim = Simulator()
        net = FMNetwork(sim, num_nodes=2, config=config)
        sender, receiver = net.create_job(1, [0, 1], policy)
        messages = 150
        start = {}

        def tx():
            start["t"] = sim.now
            for _ in range(messages):
                yield from sender.library.send(1, 16384)

        def rx():
            yield from receiver.library.extract_messages(messages)

        sim.process(tx())
        done = sim.process(rx())
        try:
            sim.run_until_processed(done, max_events=50_000_000)
            measured = mb_per_second(messages * 16384, sim.now - start["t"])
        except CreditError:
            measured = 0.0
        print(f"{contexts:>8} {geo.initial_credits:>4} {predicted:>11.1f} "
              f"{measured:>9.1f}")


def main():
    trace_window_exhaustion()
    model_vs_simulation()


if __name__ == "__main__":
    main()
