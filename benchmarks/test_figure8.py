"""Regenerates Figure 8: valid packets in the buffers at switch time.

Paper shape being asserted:
- the send queue stays nearly empty (the LANai drains it faster than the
  ~80 MB/s PIO path can fill it);
- the receive queue holds a modest number of packets that *grows* with
  the node count (all-to-all fan-in bursts outrun extraction), toward
  the ~100-packet scale at 16 nodes;
- both stay far below capacity (252 / 668 packets), which is what makes
  the valid-only copy worthwhile.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import NODE_SWEEP
from repro.experiments.figure8 import run_figure8
from repro.experiments.report import render_figure8


def test_figure8(benchmark, publish):
    points = run_once(benchmark, lambda: run_figure8(nodes=NODE_SWEEP))
    publish("figure8", render_figure8(points))

    by_nodes = {p.nodes: p for p in points}
    small, large = min(by_nodes), max(by_nodes)

    # Receive occupancy grows with the cluster size.
    assert by_nodes[large].mean_recv_valid > 3 * by_nodes[small].mean_recv_valid
    assert by_nodes[large].max_recv_valid >= 40
    # Send queues stay comparatively empty.
    for p in points:
        assert p.mean_send_valid < p.mean_recv_valid
        assert p.mean_send_valid < 30
    # Far below capacity: the queues are "generally quite empty".
    assert by_nodes[large].max_recv_valid < 668 / 3
    assert by_nodes[large].max_send_valid < 252 / 3
    assert all(p.samples > 0 for p in points)
