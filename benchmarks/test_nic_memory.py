"""Regenerates the Section 4.1 NIC-memory sufficiency observation.

"about 256KB of memory on the NIC suffices for adequate performance;
hence as the available memory grows, more contexts can be supported."
"""

from benchmarks.conftest import run_once
from repro.experiments.nic_memory import (
    contexts_supported,
    knee_of,
    run_nic_memory_sweep,
)
from repro.experiments.report import format_table


def test_nic_memory_sufficiency(benchmark, publish):
    points = run_once(benchmark, run_nic_memory_sweep)
    knee = knee_of(points)
    rows = [(p.send_buffer_kib, p.recv_buffer_kib, p.credits, f"{p.mbps:.1f}",
             "<- knee" if p is knee else "") for p in points]
    publish("nic_memory",
            "NIC memory sufficiency (Sec 4.1): p2p bandwidth vs per-context "
            "buffers\n"
            + format_table(["sendbuf[KiB]", "recvbuf[KiB]", "C0", "MB/s", ""],
                           rows)
            + f"\n\n512 KiB card supports ~{contexts_supported(432, knee.send_buffer_kib)}"
            " full-performance contexts (432 KiB after firmware)")

    best = max(p.mbps for p in points)
    # Bandwidth saturates: the knee sits at or below ~256 KB of send
    # buffer, and doubling past it buys < 5%.
    assert knee.send_buffer_kib <= 256
    assert points[-1].mbps < 1.05 * knee.mbps
    # Starved configurations are clearly degraded.
    assert points[0].mbps < 0.8 * best
