"""Regenerates Figure 9: per-stage switch cost with the improved
(valid-packets-only) buffer copy.

Paper shape being asserted:
- the buffer-switch stage drops by about an order of magnitude versus
  the full copy, into the paper's < 2.5 M cycle (12.5 ms) envelope;
- the copy time now grows with the node count, tracking the occupancy
  growth of Figure 8 ("the linear growth in the copying time is
  correlated with the linear growth of the number of packets found in
  the buffer").
"""

from benchmarks.conftest import run_once
from repro.experiments.common import NODE_SWEEP
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure9 import run_figure9
from repro.experiments.report import render_switch_overheads


def test_figure9(benchmark, publish):
    points = run_once(benchmark, lambda: run_figure9(nodes=NODE_SWEEP))
    publish("figure9", render_switch_overheads(points, "9"))

    switch = {p.nodes: p.mean_cycles.switch for p in points}
    # Inside the paper's envelope at every size.
    assert all(c < 2_500_000 for c in switch.values())
    # Growth with nodes, correlated with occupancy.
    assert switch[max(switch)] > 2 * switch[min(switch)]
    occ = {p.nodes: p.occupancy.mean_recv for p in points}
    assert occ[max(occ)] > occ[min(occ)]

    # An order of magnitude below the full copy at the largest size.
    full = run_figure7(nodes=(max(switch),))[0]
    assert full.mean_cycles.switch > 10 * switch[max(switch)]
