"""Regenerates the quantum-tolerability argument of Section 4.2.

"the buffer switch takes less than 12.5msecs ... We ran our overhead
measurements using a 1 second time quantum, so this overhead is less
than 1.25%!  Even when using the full buffer switch the time is less
than 85msecs, an overhead which is tolerable even for such a short
quantum."
"""

from benchmarks.conftest import run_once
from repro.experiments.quantum_sweep import (
    run_quantum_sweep,
    verify_quantum_independence,
)
from repro.experiments.report import format_table


def test_quantum_sweep(benchmark, publish):
    points = run_once(benchmark, run_quantum_sweep)
    rows = [(p.algorithm, f"{p.quantum:g}",
             f"{p.switch_seconds * 1000:.2f}", f"{p.overhead_percent:.3f}%")
            for p in points]
    publish("quantum_sweep",
            "Switch overhead vs gang quantum (16 nodes, all-to-all; full "
            "three-stage cost)\n"
            + format_table(["algorithm", "quantum[s]", "switch[ms]", "overhead"],
                           rows))

    by_key = {(p.algorithm, p.quantum): p for p in points}
    # The paper's operating points.
    assert by_key[("valid-only-copy", 1.0)].overhead_percent < 1.25
    assert by_key[("full-copy", 3.0)].overhead_percent < 3.0
    assert by_key[("full-copy", 1.0)].overhead_percent < 10.0
    # At minute-scale quanta both vanish.
    assert by_key[("full-copy", 10.0)].overhead_percent < 1.0


def test_quantum_independence(benchmark):
    a, b = run_once(benchmark, verify_quantum_independence)
    # The per-switch cost is a property of the buffers, not the quantum.
    assert abs(a - b) / max(a, b) < 0.05
