"""Regenerates Figure 5: bandwidth vs message size x contexts, static FM.

Paper shape being asserted:
- peak ~75-80 MB/s at one context for large messages;
- sharp monotone collapse as contexts increase (C0 = Br/(n^2 p));
- zero bandwidth at 7-8 contexts ("no communication is even possible");
- small messages much slower than large ones (a full credit per packet).
"""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.experiments.figure5 import run_figure5
from repro.experiments.report import render_figure5


def test_figure5(benchmark, publish):
    points = run_once(benchmark, lambda: run_figure5(target_packets=800))
    publish("figure5", render_figure5(points))

    by_ctx = defaultdict(dict)
    for p in points:
        by_ctx[p.contexts][p.message_bytes] = p.mbps

    largest = max(p.message_bytes for p in points)
    # Peak at one context: the ~80 MB/s PIO ceiling.
    assert 60 < by_ctx[1][largest] < 85
    # Monotone collapse with the number of contexts.
    curve = [by_ctx[n][largest] for n in sorted(by_ctx)]
    assert all(a >= b for a, b in zip(curve, curve[1:]))
    assert by_ctx[2][largest] < 0.75 * by_ctx[1][largest]
    assert by_ctx[4][largest] < 0.25 * by_ctx[1][largest]
    # The paper's headline: nothing moves at 7-8 contexts.
    assert by_ctx[7][largest] == 0.0
    assert by_ctx[8][largest] == 0.0
    # Small messages waste credits: far below the large-message rate.
    assert by_ctx[1][64] < 0.25 * by_ctx[1][largest]
