"""Regenerates the Section 4.2 headline overhead claims.

- improved switch < 12.5 ms (2.5 M cycles at 200 MHz) => < 1.25% of the
  paper's 1-second quantum;
- full switch < 85 ms (17 M cycles), "tolerable even for such a short
  quantum".
"""

from benchmarks.conftest import run_once
from repro.experiments.report import render_headline
from repro.experiments.table_overhead import run_headline_overheads


def test_headline_overheads(benchmark, publish):
    summaries = run_once(benchmark, lambda: run_headline_overheads(nodes=16))
    publish("headline_overheads", render_headline(summaries))

    by_algo = {s.algorithm: s for s in summaries}
    full = by_algo["full-copy"]
    improved = by_algo["valid-only-copy"]

    assert full.within_paper_bound
    assert improved.within_paper_bound
    # "this overhead is less than 1.25%!"
    assert improved.overhead_percent_at_1s_quantum < 1.25
    # Full copy stays under 8.5% of a 1 s quantum.
    assert full.overhead_percent_at_1s_quantum < 8.5
    # The improvement is roughly an order of magnitude.
    assert full.max_switch_seconds > 10 * improved.max_switch_seconds
