"""Exercises Table 1 — the complete glueFM management API — in one
scripted scenario, timing the full lifecycle.

Table 1 is an API listing rather than a results table; reproducing it
means demonstrating that all eight entry points exist with the documented
split (initialisation / process control / context-switch control) and
drive a working lifecycle: node init -> topology update -> job init ->
traffic -> halt/switch/release -> job teardown.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.report import format_table
from repro.fm.api import FMLibrary
from repro.fm.buffers import FullBuffer
from repro.fm.config import FMConfig
from repro.gluefm.api import GlueFM
from repro.hardware.network import MyrinetFabric
from repro.hardware.node import HostNode
from repro.sim import Simulator

API = [
    ("COMM_init_node", "initialize LANai, contexts, routing table"),
    ("COMM_add_node", "update topology"),
    ("COMM_remove_node", "update topology"),
    ("COMM_init_job", "allocate context, prepare environment variables"),
    ("COMM_end_job", "cleanup"),
    ("COMM_halt_network", "stop sending and perform global network flush"),
    ("COMM_context_switch", "swap buffers"),
    ("COMM_release_network", "synchronize and restart sending"),
]


def full_lifecycle():
    """Drive every Table 1 function; returns per-call wall (sim) times."""
    sim = Simulator()
    config = FMConfig(num_processors=2)
    fabric = MyrinetFabric(sim)
    nodes = [HostNode(sim, i) for i in range(2)]
    for node in nodes:
        fabric.register(node.nic)
    glue = [GlueFM(sim, node, fabric, config) for node in nodes]
    timings: dict[str, float] = {}

    # Initialisation group.
    for g in glue:
        g.COMM_init_node([0, 1])
    timings["COMM_init_node"] = sim.now
    for g in glue:
        g.COMM_add_node(99)
        g.COMM_remove_node(99)
    timings["COMM_add_node"] = 0.0
    timings["COMM_remove_node"] = 0.0

    rank_to_node = {0: 0, 1: 1}
    libs = {}

    def scenario(i):
        g = glue[i]
        t0 = sim.now
        ctx, env = yield from g.COMM_init_job(1, i, rank_to_node, FullBuffer())
        timings["COMM_init_job"] = sim.now - t0
        libs[i] = FMLibrary(nodes[i], g.firmware, ctx)
        ctx2, _ = yield from g.COMM_init_job(2, i, rank_to_node, FullBuffer(),
                                             install=False)
        if i == 0:
            yield from libs[i].send(1, 4000)
        t0 = sim.now
        halt = yield from g.COMM_halt_network()
        timings["COMM_halt_network"] = halt
        t0 = sim.now
        yield from g.COMM_context_switch(1, 2)
        timings["COMM_context_switch"] = sim.now - t0
        release = yield from g.COMM_release_network()
        timings["COMM_release_network"] = release
        # Switch back so job 1's context is installed for teardown, then
        # end both jobs.
        yield from g.COMM_halt_network()
        yield from g.COMM_context_switch(2, 1)
        yield from g.COMM_release_network()
        t0 = sim.now
        yield from g.COMM_end_job(1)
        yield from g.COMM_end_job(2)
        timings["COMM_end_job"] = sim.now - t0

    procs = [sim.process(scenario(i)) for i in range(2)]
    for p in procs:
        sim.run_until_processed(p, max_events=10_000_000)
    return timings


def test_table1_api(benchmark, publish):
    timings = run_once(benchmark, full_lifecycle)
    rows = [(name, desc, f"{timings.get(name, 0.0) * 1e6:.1f}")
            for name, desc in API]
    publish("table1_api", "Table 1 - glueFM API lifecycle (measured, us)\n"
            + format_table(["function", "role", "time[us]"], rows))
    # Every documented entry point ran.
    for name, _ in API:
        assert name in timings, f"{name} was never exercised"
    # The buffer switch is the expensive call, as the paper measures.
    assert timings["COMM_context_switch"] > timings["COMM_halt_network"]


def test_api_is_complete():
    """The GlueFM class exposes exactly the Table 1 surface."""
    exported = {name for name in dir(GlueFM) if name.startswith("COMM_")}
    assert exported == {name for name, _ in API}
