"""Regenerates Figure 6: total bandwidth vs message size x jobs, with the
buffer-switching scheme under gang scheduling.

Paper shape being asserted: the aggregate bandwidth (mean per-app MB/s x
number of apps) stays roughly constant as jobs are added — multiple gang-
scheduled applications do not impair the system's communication capacity.
"""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.experiments.figure6 import run_figure6
from repro.experiments.report import render_figure6

JOBS = (1, 2, 4, 6, 8)
SIZES = (384, 1536, 24576)


def test_figure6(benchmark, publish):
    points = run_once(benchmark, lambda: run_figure6(jobs=JOBS, message_sizes=SIZES))
    publish("figure6", render_figure6(points))

    by_size = defaultdict(dict)
    for p in points:
        by_size[p.message_bytes][p.jobs] = p

    for size in SIZES:
        base = by_size[size][1].aggregate_mbps
        assert base > 0
        for njobs in JOBS:
            point = by_size[size][njobs]
            # "Fairly constant level": within +-35% of the single-job rate
            # (quantum-boundary edge effects at simulation scale).
            assert 0.65 * base < point.aggregate_mbps < 1.35 * base, (
                f"aggregate at {njobs} jobs, {size}B: "
                f"{point.aggregate_mbps:.1f} vs base {base:.1f}"
            )
            # Each job individually gets ~1/n of the machine.
            if njobs > 1:
                assert max(point.per_job_mbps) < 0.8 * base
    # Multi-job points actually switched buffers.
    assert all(p.switches > 0 for p in points if p.jobs > 1)
