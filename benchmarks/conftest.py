"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's figures/tables, prints the
rendered rows (visible with ``pytest benchmarks/ -s`` and in the captured
output block), and writes them under ``benchmarks/results/`` so a full
run leaves the reproduced figures on disk.  pytest-benchmark's pedantic
mode keeps every experiment to a single timed round — the experiments
are deterministic simulations; repeating them buys nothing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def publish():
    """publish(name, text): print a rendered figure and persist it."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _publish


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
