"""Ablation benchmarks: the paper's design choices vs Section 5's
alternatives.

1. **Flush vs no-flush (SHARE)** — switching without the flush protocol
   drops in-flight packets; under FM's credit flow control each drop is
   a permanently leaked credit.  The flushed design loses nothing.
2. **Credits vs ack/nack (PM/SCore-D)** — PM's flush is broadcast-free
   and stays flat in the cluster size, but its transport pays per-packet
   ack processing; FM's credit scheme has cheaper steady-state sends and
   a flush whose cost grows with the node count.
3. **Gang vs dynamic coscheduling** — message-triggered wakeups recover
   much of what uncoordinated local time-slicing loses on ping-pong
   traffic, at the price of per-message preemptions; gang scheduling
   avoids the pathology by construction.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import format_table


def run_share_vs_flushed():
    from tests.alternatives.test_share import run_switching
    from repro.alternatives.share import ShareNodeDaemon

    rows = []
    for label, noded_class, strict in (("flushed (paper)", None, True),
                                       ("share (no flush)", ShareNodeDaemon, False)):
        cluster = run_switching(noded_class, strict, num_switches=8, nodes=8)
        drops = cluster.total_dropped()
        switches = len(cluster.recorder.with_outgoing_job())
        rows.append((label, switches, drops,
                     f"{drops / max(switches, 1):.1f}"))
    return rows


def test_share_ablation(benchmark, publish):
    rows = run_once(benchmark, run_share_vs_flushed)
    publish("ablation_share",
            "Ablation 1 - flush protocol vs SHARE-style unflushed switching "
            "(8 nodes, all-to-all)\n"
            + format_table(["scheme", "switches", "dropped pkts", "drops/switch"],
                           rows))
    flushed, share = rows
    assert flushed[2] == 0
    assert share[2] > 0


def run_pm_flush_scaling():
    """PM's local drain vs the halt-broadcast flush across cluster sizes."""
    from repro.alternatives.pm_nack import PMNetwork
    from repro.fm.buffers import FullBuffer
    from repro.fm.config import FMConfig
    from repro.sim import Simulator
    from tests.gluefm.conftest import GlueRig

    rows = []
    for nodes in (2, 4, 8, 16):
        # Halt-broadcast flush (idle network: pure protocol cost).
        rig = GlueRig(nodes)
        durations = rig.run_all(lambda g: (yield from g.COMM_halt_network()))
        halt_flush = max(durations)

        # PM drain with a comparable in-flight window (one packet out).
        sim = Simulator()
        pm = PMNetwork(sim, nodes, FMConfig(num_processors=nodes))
        eps = pm.create_job(1, list(range(nodes)), FullBuffer())
        results = {}

        def scenario(ep=eps[0]):
            yield from ep.library.send(1, 1400)
            # Wait for the LANai to actually inject the packet so the
            # drain measures a real outstanding window.
            while ep.firmware.outstanding == 0 and ep.firmware.acks_received == 0:
                yield sim.timeout(1e-6)
            results["drain"] = yield from pm.pm_flush(ep.context.node_id)

        proc = sim.process(scenario())
        sim.run_until_processed(proc, max_events=1_000_000)
        rows.append((nodes, f"{halt_flush * 1e6:.1f}",
                     f"{results['drain'] * 1e6:.1f}"))
    return rows


def test_pm_flush_ablation(benchmark, publish):
    rows = run_once(benchmark, run_pm_flush_scaling)
    publish("ablation_pm_flush",
            "Ablation 2 - network flush cost [us]: halt broadcast (FM+glueFM) "
            "vs local ack drain (PM)\n"
            + format_table(["nodes", "halt-broadcast[us]", "pm-drain[us]"], rows))
    halt = [float(r[1]) for r in rows]
    drain = [float(r[2]) for r in rows]
    # The broadcast flush grows with the cluster; PM's drain does not.
    assert halt[-1] > 1.5 * halt[0]
    assert drain[-1] < 3 * drain[0] + 50


def run_pm_vs_fm_bandwidth():
    from repro.alternatives.pm_nack import PMNetwork
    from repro.fm.buffers import FullBuffer
    from repro.fm.config import FMConfig
    from repro.fm.harness import FMNetwork
    from repro.sim import Simulator
    from repro.units import mb_per_second

    def measure(make_net):
        sim = Simulator()
        net = make_net(sim)
        a, b = net.create_job(1, [0, 1], FullBuffer())
        count, nbytes = 400, 16384
        start = {}

        def tx():
            start["t"] = sim.now
            for _ in range(count):
                yield from a.library.send(1, nbytes)

        def rx():
            yield from b.library.extract_messages(count)

        sim.process(tx())
        done = sim.process(rx())
        sim.run_until_processed(done, max_events=100_000_000)
        return mb_per_second(count * nbytes, sim.now - start["t"])

    config = FMConfig(num_processors=2)
    fm = measure(lambda sim: FMNetwork(sim, 2, config=config))
    pm = measure(lambda sim: PMNetwork(sim, 2, config=config))
    return [("FM credits", f"{fm:.1f}"), ("PM ack/nack", f"{pm:.1f}")], fm, pm


def test_pm_bandwidth_ablation(benchmark, publish):
    rows, fm, pm = run_once(benchmark, run_pm_vs_fm_bandwidth)
    publish("ablation_pm_bandwidth",
            "Ablation 2b - p2p bandwidth [MB/s], 16 KB messages\n"
            + format_table(["transport", "MB/s"], rows))
    # Both transports sustain PIO-ceiling-class bandwidth on p2p; the ack
    # stream costs the receiving LANai extra work but does not halve it.
    assert pm > 0.7 * fm


def run_coscheduling():
    from repro.alternatives.coscheduling import DemandScheduler, LocalRoundRobin
    from tests.alternatives.test_coscheduling import pingpong_throughput

    blind, _ = pingpong_throughput(LocalRoundRobin)
    demand, scheds = pingpong_throughput(DemandScheduler)
    wakeups = sum(s.demand_wakeups for s in scheds)
    return [("uncoordinated RR", blind, "-"),
            ("dynamic coscheduling", demand, wakeups)], blind, demand


def test_coscheduling_ablation(benchmark, publish):
    rows, blind, demand = run_once(benchmark, run_coscheduling)
    publish("ablation_coscheduling",
            "Ablation 3 - ping-pong round trips in 80 ms, two time-shared jobs\n"
            + format_table(["scheduler", "round trips", "demand wakeups"], rows))
    assert demand > 1.25 * blind
