"""Job start-up cost: stock FM's GRM/CM protocol vs ParPar's integration.

Section 3's motivation: "the required job ID and rank are known by the
noded prior to execution, so there is actually no need to perform
additional costly communication operations when a process is started".
Stock FM pays a GRM round trip per process plus the CM context
allocation and the all-up barrier; ParPar passes everything through
environment variables set up before the fork (Figure 2) and the masterd
provides the synchronisation point it already has.

Both paths are measured from job-load start until *every* process of the
job is allowed to send.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import format_table
from repro.fm.cm import ContextManager
from repro.fm.config import FMConfig
from repro.fm.grm import GlobalResourceManager
from repro.fm.harness import FMNetwork
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.sim import Simulator


def stock_fm_startup(num_procs: int) -> float:
    """All processes ready via the GRM/CM three-stage protocol."""
    sim = Simulator()
    config = FMConfig(num_processors=max(num_procs, 2), max_contexts=2)
    net = FMNetwork(sim, num_procs, config=config)
    GlobalResourceManager(sim, net.control_net)
    cms = [ContextManager(sim, net.node(i), net.firmware(i), net.control_net,
                          config) for i in range(num_procs)]
    node_ids = list(range(num_procs))
    done_at = {}

    def app(node_id):
        yield from cms[node_id].fm_initialize("job", node_ids)
        done_at[node_id] = sim.now

    procs = [sim.process(app(i)) for i in range(num_procs)]
    for p in procs:
        sim.run_until_processed(p, max_events=1_000_000)
    return max(done_at.values())


def parpar_startup(num_procs: int) -> float:
    """All processes synced via masterd/noded + environment hand-off."""
    cluster = ParParCluster(ClusterConfig(
        num_nodes=max(num_procs, 2), time_slots=2, quantum=10.0,  # no switches
    ))

    def workload(ep):
        yield ep.library.sim.timeout(0)

    t0 = cluster.sim.now
    job = cluster.submit(JobSpec("startup", num_procs, workload))
    return job.ready_at - t0


def run_comparison():
    rows = []
    for procs in (2, 4, 8, 16):
        stock = stock_fm_startup(procs)
        parpar = parpar_startup(procs)
        rows.append((procs, f"{stock * 1000:.2f}", f"{parpar * 1000:.2f}",
                     f"{stock / parpar:.2f}x"))
    return rows


def test_init_protocol(benchmark, publish):
    rows = run_once(benchmark, run_comparison)
    publish("init_protocol",
            "Job start-up until all processes may send [ms]: stock FM "
            "(GRM+CM) vs ParPar (env hand-off)\n"
            + format_table(["procs", "stock FM", "ParPar", "ratio"], rows)
            + "\n(stock measurement even excludes process spawning, which "
            "ParPar's figure includes)")
    # The stock path serialises at the single GRM daemon: it grows with
    # the job size, while ParPar stays flat.
    stock = [float(r[1]) for r in rows]
    parpar = [float(r[2]) for r in rows]
    assert stock[-1] > 3 * stock[0] * 0.5  # grows with procs
    assert max(parpar) - min(parpar) < 0.5  # essentially flat
    assert parpar[-1] < stock[-1]  # ParPar wins at full cluster size
