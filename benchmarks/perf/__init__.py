"""Performance benchmark harness (scripts, not pytest).

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py
    PYTHONPATH=src python benchmarks/perf/bench_sweeps.py

Each script prints a table and rewrites its ``BENCH_*.json`` at the repo
root; the JSONs are committed so regressions show up in review diffs.
The ``SEED_BASELINE`` constants are measurements of the pre-optimisation
kernel (commit 369a02e) taken with the same interleaved best-of-N
methodology on the same class of machine — see each script's docstring.
"""
