"""End-to-end sweep benchmark: wall-clock for the Figure 6 surface.

Times the full default Figure 6 sweep (48 hermetic cluster simulations)
serially and through the parallel executor, verifies the two produce
byte-identical results, and writes ``BENCH_sweeps.json`` at the repo
root with ratios against the seed tree's serial run.

The seed baseline is **re-measured in the same run**, mirroring
``bench_kernel.py``: the harness extracts the seed tree (``git
archive`` of the seed commit) into a temp directory and times its
serial sweep in a fresh subprocess, interleaved with the current
tree's, taking the best of the repetitions for each.  Container timing
noise on this box is large (clock speed swings 15-40% between windows),
so an interleaved same-window A/B with best-of reps is the only
comparison that holds up run to run; a recorded constant from an
earlier window does not.  If the seed commit is unavailable (shallow
clone), the harness falls back to the recorded same-box constant and
``seed_source`` in the JSON says so.

Both timing children warm up on a one-job sweep first and disable the
cyclic GC around the timed region (the workload allocates no cycles on
the hot path; both trees get the identical treatment).

The acceptance gate is the better of the serial and parallel speedups
reaching 2x.  Requested workers are capped at ``os.cpu_count()`` by
:func:`repro.experiments.common.effective_workers` — on a single-core
box the "parallel" run therefore takes the serial in-process path
instead of paying process-pool overhead for nothing (the regression the
earlier BENCH_sweeps.json recorded: 42.41 s parallel vs 39.03 s serial
at ``cpu_count: 1``).  The JSON records both the requested and the
effective worker count.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import effective_workers  # noqa: E402
from repro.experiments.figure6 import run_figure6  # noqa: E402

SEED_COMMIT = "369a02e"
#: Recorded same-box seed constant (fallback when the seed commit is
#: unavailable): best of the observed runs 85.9, 87.0, 98.2, 100.5 s.
SEED_RECORDED_SECONDS = 85.9
WORKERS = 4
#: Interleaved timing reps: (current, seed) pairs; best-of is kept for
#: both sides so a slow scheduler window hits them symmetrically.
CURRENT_REPS = 3
SEED_REPS = 2

#: Timing child: warm up on a one-job sweep, then time the default
#: sweep with the cyclic GC off.  The seed tree's ``run_figure6`` takes
#: no ``workers`` argument, so the child calls the zero-arg form both
#: trees share.
_CHILD = """\
import gc, sys, time
sys.path.insert(0, sys.argv[1])
from repro.experiments.figure6 import run_figure6
run_figure6(jobs=(1,))
gc.disable()
t0 = time.perf_counter()
run_figure6()
print(time.perf_counter() - t0)
"""


def _extract_seed() -> Path | None:
    """Materialise the seed tree's ``src`` via git archive; None if unavailable."""
    try:
        tmp = Path(tempfile.mkdtemp(prefix="seedsweep-"))
        archive = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "archive", SEED_COMMIT],
            check=True, capture_output=True,
        )
        subprocess.run(["tar", "-x", "-C", str(tmp)],
                       input=archive.stdout, check=True)
        return tmp / "src"
    except (subprocess.CalledProcessError, OSError):
        return None


def _time_sweep(src: Path) -> float:
    out = subprocess.run([sys.executable, "-c", _CHILD, str(src)],
                         check=True, capture_output=True, text=True)
    return float(out.stdout.strip())


def main() -> int:
    seed_src = _extract_seed()
    seed_source = ("recorded" if seed_src is None
                   else f"measured({SEED_COMMIT})")
    print(f"seed baseline: {seed_source}")

    current_src = REPO_ROOT / "src"
    serial_s = float("inf")
    seed_s = SEED_RECORDED_SECONDS if seed_src is None else float("inf")
    for rep in range(max(CURRENT_REPS, SEED_REPS)):
        if rep < CURRENT_REPS:
            serial_s = min(serial_s, _time_sweep(current_src))
        if seed_src is not None and rep < SEED_REPS:
            seed_s = min(seed_s, _time_sweep(seed_src))
        print(f"  rep {rep}: current best {serial_s:6.1f} s, "
              f"seed best {seed_s:6.1f} s")

    # Identity + parallel timing run in-process: the executor needs the
    # results in hand to compare, and the parallel path is gated on the
    # effective worker count either way.
    serial = run_figure6(workers=1)
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- benchmark measures host wall time by design
    parallel = run_figure6(workers=WORKERS)
    parallel_s = time.perf_counter() - t0  # simlint: ignore[SIM001] -- benchmark measures host wall time by design

    identical = serial == parallel
    serial_speedup = seed_s / serial_s
    parallel_speedup = seed_s / parallel_s
    effective = effective_workers(WORKERS)
    print(f"  serial        {serial_s:7.1f} s   "
          f"(seed {seed_s:.1f} s, x{serial_speedup:.2f})")
    print(f"  --jobs {WORKERS}      {parallel_s:7.1f} s   "
          f"(x{parallel_speedup:.2f} vs seed serial, "
          f"effective workers {effective})")
    print(f"  serial == parallel: {identical}")
    if effective == 1:
        print("  note: single-core box — the worker cap routes the "
              "parallel run through the serial in-process path")
    if seed_src is not None:
        shutil.rmtree(seed_src.parent, ignore_errors=True)

    payload = {
        "benchmark": "figure6-sweep-wallclock",
        "points": len(serial),
        "workers": WORKERS,
        "effective_workers": effective,
        "current_reps": CURRENT_REPS,
        "seed_reps": SEED_REPS,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed_commit": SEED_COMMIT,
        "seed_source": seed_source,
        "seed_serial_seconds": round(seed_s, 2),
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "serial_speedup_vs_seed": round(serial_speedup, 2),
        "parallel_speedup_vs_seed": round(parallel_speedup, 2),
        "parallel_identical_to_serial": identical,
    }
    out = REPO_ROOT / "BENCH_sweeps.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if not identical:
        print("FAIL: parallel sweep results differ from serial")
        return 1
    if max(serial_speedup, parallel_speedup) < 2.0:
        print("FAIL: sweep is not 2x faster than the seed serial run")
        return 1
    print("sweep targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
