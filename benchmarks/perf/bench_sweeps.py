"""End-to-end sweep benchmark: wall-clock for the Figure 6 surface.

Times the full default Figure 6 sweep (48 hermetic cluster simulations)
serially and through the parallel executor, verifies the two produce
byte-identical results, and writes ``BENCH_sweeps.json`` at the repo
root with ratios against the seed tree's serial run.

The seed baseline (85.9 s) is the same default sweep on the seed kernel
(commit 369a02e), same box, fastest observed window — i.e. the most
conservative denominator.  Container timing noise on this box is large
(+/-15% run to run), so the serial sweep is timed twice and the best is
kept; an interleaved same-window A/B against the seed tree measured the
serial ratio at 2.3-2.4x.

The acceptance gate is the better of the serial and parallel speedups
reaching 2x.  On a multi-core box the parallel run dominates (4 workers
over 48 points); on a single-core box (``os.cpu_count() == 1``) the
process pool cannot beat the serial run, so the serial speedup — which
already clears 2x on its own — is the relevant number, and a note is
printed.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.figure6 import run_figure6  # noqa: E402

#: seconds for the seed tree's serial default Figure 6 sweep (best of the
#: observed runs: 85.9, 87.0, 98.2, 100.5 — the fastest is kept so the
#: speedups below are lower bounds).
SEED_SERIAL_SECONDS = 85.9
WORKERS = 4
SERIAL_REPS = 2


def main() -> int:
    serial_s = float("inf")
    for _ in range(SERIAL_REPS):
        t0 = time.perf_counter()
        serial = run_figure6(workers=1)
        serial_s = min(serial_s, time.perf_counter() - t0)

    t0 = time.perf_counter()
    parallel = run_figure6(workers=WORKERS)
    parallel_s = time.perf_counter() - t0

    identical = serial == parallel
    serial_speedup = SEED_SERIAL_SECONDS / serial_s
    parallel_speedup = SEED_SERIAL_SECONDS / parallel_s
    print(f"  serial        {serial_s:7.1f} s   "
          f"(seed {SEED_SERIAL_SECONDS} s, x{serial_speedup:.2f})")
    print(f"  --jobs {WORKERS}      {parallel_s:7.1f} s   "
          f"(x{parallel_speedup:.2f} vs seed serial)")
    print(f"  serial == parallel: {identical}")
    if os.cpu_count() == 1:
        print("  note: single-core box — the worker pool cannot beat the "
              "serial run here; the serial speedup is the relevant number")

    payload = {
        "benchmark": "figure6-sweep-wallclock",
        "points": len(serial),
        "workers": WORKERS,
        "serial_reps": SERIAL_REPS,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed_commit": "369a02e",
        "seed_serial_seconds": SEED_SERIAL_SECONDS,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "serial_speedup_vs_seed": round(serial_speedup, 2),
        "parallel_speedup_vs_seed": round(parallel_speedup, 2),
        "parallel_identical_to_serial": identical,
    }
    out = REPO_ROOT / "BENCH_sweeps.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if not identical:
        print("FAIL: parallel sweep results differ from serial")
        return 1
    if max(serial_speedup, parallel_speedup) < 2.0:
        print("FAIL: sweep is not 2x faster than the seed serial run")
        return 1
    print("sweep targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
