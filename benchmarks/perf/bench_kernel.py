"""DES-kernel microbenchmarks: events/sec per dispatch pattern.

Measures the four kernel hot paths (see :mod:`repro.sim.bench`) and
writes ``BENCH_des_kernel.json`` at the repo root, including the ratio
against the pre-optimisation seed kernel.

Methodology: GC disabled, best of ``REPS`` runs of ``N`` iterations
each — DES microbenchmarks are allocation-dominated, so *best-of* (not
mean) is the right statistic against scheduler noise.  The baselines
were captured by running seed and optimised trees interleaved, one
fresh subprocess per measurement, best of 4x3 runs, on the same box.

The ``sleep`` row is the headline: every hardware/firmware model sleeps
through the kernel this way, so it bounds full-simulation throughput.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.bench import KERNEL_BENCHMARKS, bench_sleep_profiled  # noqa: E402

N = 300_000
REPS = 3

#: events/sec of the seed kernel (commit 369a02e), interleaved best-of.
SEED_BASELINE = {
    "sleep": 642_962,     # seed idiom: yield sim.timeout(d)
    "timeout": 653_643,
    "chain": 865_770,
    "churn": 750_038,
}


def main() -> int:
    gc.disable()
    results = {}
    for name, fn in KERNEL_BENCHMARKS.items():
        best = max(fn(N) for _ in range(REPS))
        baseline = SEED_BASELINE[name]
        results[name] = {
            "events_per_sec": round(best),
            "seed_events_per_sec": baseline,
            "speedup": round(best / baseline, 2),
        }
        print(f"  {name:<8} {best:>12,.0f} events/s   "
              f"seed {baseline:>9,}   x{best / baseline:.2f}")

    # Telemetry overhead: the sleep pattern with the kernel profiler on.
    # The profiled loop dispatches through the generic step() path, so
    # this ratio is the full price of `--telemetry` on the hot loop; the
    # telemetry-off number must be unaffected (zero-cost-when-off).
    profiled = max(bench_sleep_profiled(N) for _ in range(REPS))
    overhead = results["sleep"]["events_per_sec"] / profiled
    results["sleep_profiled"] = {
        "events_per_sec": round(profiled),
        "overhead_ratio_vs_off": round(overhead, 2),
    }
    print(f"  {'profiled':<8} {profiled:>12,.0f} events/s   "
          f"telemetry overhead x{overhead:.2f}")
    gc.enable()

    payload = {
        "benchmark": "des-kernel-microbench",
        "iterations": N,
        "reps": REPS,
        "statistic": "best-of",
        "python": platform.python_version(),
        "seed_commit": "369a02e",
        "results": results,
    }
    out = REPO_ROOT / "BENCH_des_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    headline = results["sleep"]["speedup"]
    if headline < 2.0:
        print(f"FAIL: sleep-path speedup x{headline} is below the 2x target")
        return 1
    print(f"sleep-path speedup x{headline} meets the 2x target")
    return 0


if __name__ == "__main__":
    sys.exit(main())
