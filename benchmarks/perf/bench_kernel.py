"""DES-kernel microbenchmarks: events/sec per dispatch pattern.

Measures the kernel hot paths (see :mod:`repro.sim.bench`) and writes
``BENCH_des_kernel.json`` at the repo root, including the ratio against
the pre-optimisation seed kernel.

Methodology: GC disabled, best of ``REPS`` runs of ``N`` iterations
each — DES microbenchmarks are allocation-dominated, so *best-of* (not
mean) is the right statistic against scheduler noise.  The seed kernel
is **re-measured in the same run**: the harness extracts the seed tree
(``git archive`` of the seed commit) into a temp directory and executes
the *identical* workload source from ``src/repro/sim/bench.py`` against
it, one fresh subprocess per (tree, pattern, rep), the seed and current
children run back-to-back per pattern so both sides of each ratio see
the same thermal/turbo window.  The
workloads use only the public simulator API, which is unchanged since
the seed, so the comparison is apples-to-apples even for patterns the
seed tree never shipped a benchmark for.  If the seed commit is
unreachable (shallow checkout), recorded same-box constants are used
and the JSON says so in ``seed_source``.

The ``sleep`` row is the headline: every hardware/firmware model sleeps
through the kernel this way, so it bounds full-simulation throughput.
``--quick`` runs a reduced matrix against recorded seed constants (for
the CI perf-smoke step); ``--compare OLD.json`` prints report-only
warnings for >``--tolerance`` events/s regressions without failing.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

SEED_COMMIT = "369a02e"
N = 300_000
REPS = 3
PROFILE_STRIDE = 32

#: Recorded same-box seed constants (fallback when the seed commit is
#: unreachable), interleaved best-of on the same shapes.
SEED_RECORDED = {
    "sleep": 626_000,
    "timeout": 590_000,
    "chain": 583_000,
    "churn": 667_000,
    "same_instant_burst": 383_000,
    "far_horizon": 222_000,
}

#: Child process: run every pattern once against the tree whose ``src``
#: is argv[1], loading the workload definitions from *this* repo's
#: bench module so seed and current execute byte-identical workloads.
#: One wrinkle: the seed kernel predates bare-number sleeps, so on
#: trees that reject ``yield 1.0`` the ``sleep`` row falls back to the
#: ``yield sim.timeout()`` idiom — the seed's own canonical sleep form,
#: and exactly what the original recorded baseline measured.
_CHILD_SRC = """\
import gc, importlib.util, json, sys
sys.path.insert(0, sys.argv[1])
spec = importlib.util.spec_from_file_location("_bench_defs", sys.argv[2])
mod = importlib.util.module_from_spec(spec)
spec.loader.exec_module(mod)
import repro.sim as _rs
def _bare_sleep_ok():
    sim = _rs.Simulator()
    def g():
        yield 0.0
    try:
        sim.run_until_processed(sim.process(g()))
        return True
    except Exception:
        return False
gc.disable()
name = sys.argv[3]
n = int(sys.argv[4])
fn = mod.KERNEL_BENCHMARKS[name]
if name == "sleep" and not _bare_sleep_ok():
    fn = mod.bench_timeout
fn(max(n // 8, 2000))  # warm-up: allocator arenas, code paths, free lists
print(json.dumps(max(fn(n), fn(n))))
"""


def _measure_pattern(src_path: Path, name: str, n: int) -> float:
    """One pattern, one run, in a fresh interpreter against a tree."""
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SRC, str(src_path),
         str(SRC / "repro" / "sim" / "bench.py"), name, str(n)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def _extract_seed() -> Path | None:
    """Materialise the seed tree's ``src`` via git archive; None if unavailable."""
    try:
        tmp = Path(tempfile.mkdtemp(prefix="seedtree-"))
        tar = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "archive", SEED_COMMIT],
            capture_output=True, check=True,
        )
        subprocess.run(["tar", "-x", "-C", str(tmp)], input=tar.stdout, check=True)
        return tmp / "src" if (tmp / "src" / "repro").is_dir() else None
    except (subprocess.CalledProcessError, OSError):
        return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced matrix vs recorded seed constants (CI smoke)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_des_kernel.json")
    ap.add_argument("--compare", type=Path, default=None,
                    help="previous BENCH JSON; report (not fail) regressions")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="events/s regression fraction that triggers a warning")
    args = ap.parse_args(argv)

    n = 60_000 if args.quick else N
    reps = 2 if args.quick else REPS

    seed_src = None if args.quick else _extract_seed()
    seed_source = "recorded" if seed_src is None else f"measured({SEED_COMMIT})"
    print(f"seed baseline: {seed_source}")

    from repro.sim.bench import KERNEL_BENCHMARKS
    patterns = list(KERNEL_BENCHMARKS)
    best_cur: dict[str, float] = {}
    best_seed: dict[str, float] = dict(SEED_RECORDED)
    for rep in range(reps):
        # Seed and current children run back-to-back per pattern, so
        # each ratio's numerator and denominator share one thermal
        # window — per-rep interleaving is too coarse on a box whose
        # clock swings 2x between windows.
        for name in patterns:
            if seed_src is not None:
                rate = _measure_pattern(seed_src, name, n)
                if rep == 0 or rate > best_seed[name]:
                    best_seed[name] = rate
            best_cur[name] = max(best_cur.get(name, 0.0),
                                 _measure_pattern(SRC, name, n))
        print(f"  rep {rep + 1}/{reps} done")

    results = {}
    for name, best in best_cur.items():
        baseline = best_seed[name]
        results[name] = {
            "events_per_sec": round(best),
            "seed_events_per_sec": round(baseline),
            "speedup": round(best / baseline, 2),
        }
        print(f"  {name:<18} {best:>12,.0f} events/s   "
              f"seed {baseline:>9,.0f}   x{best / baseline:.2f}")

    # Telemetry overhead: the sleep pattern with the sampling profiler
    # attached at the stride the sweeps use.  The telemetry-off number
    # must be unaffected (zero-cost-when-off).
    from repro.sim.bench import bench_sleep_profiled
    gc.disable()
    profiled = max(bench_sleep_profiled(n, stride=PROFILE_STRIDE)
                   for _ in range(reps))
    gc.enable()
    overhead = best_cur["sleep"] / profiled
    results["sleep_profiled"] = {
        "events_per_sec": round(profiled),
        "stride": PROFILE_STRIDE,
        "overhead_ratio_vs_off": round(overhead, 2),
    }
    print(f"  {'profiled':<18} {profiled:>12,.0f} events/s   "
          f"telemetry overhead x{overhead:.2f} (stride={PROFILE_STRIDE})")

    payload = {
        "benchmark": "des-kernel-microbench",
        "iterations": n,
        "reps": reps,
        "statistic": "best-of",
        "python": platform.python_version(),
        "seed_commit": SEED_COMMIT,
        "seed_source": seed_source,
        "same_instant_width": 4096,
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.compare is not None and args.compare.exists():
        old = json.loads(args.compare.read_text())["results"]
        for name, entry in results.items():
            prev = old.get(name, {}).get("events_per_sec")
            if not prev:
                continue
            drop = 1.0 - entry["events_per_sec"] / prev
            if drop > args.tolerance:
                print(f"::warning::perf-smoke: {name} dropped "
                      f"{drop:.0%} vs committed ({entry['events_per_sec']:,} "
                      f"vs {prev:,} events/s)")
        print("compare: report-only, not failing the run")
        return 0

    if args.quick:
        return 0

    failed = []
    if results["sleep"]["speedup"] < 2.0:
        failed.append(f"sleep x{results['sleep']['speedup']} < 2.0")
    for name in ("chain", "churn"):
        if results[name]["speedup"] < 3.0:
            failed.append(f"{name} x{results[name]['speedup']} < 3.0")
    if results["sleep_profiled"]["overhead_ratio_vs_off"] >= 2.0:
        failed.append(
            f"profiled overhead x{results['sleep_profiled']['overhead_ratio_vs_off']} >= 2.0")
    if failed:
        print("FAIL: " + "; ".join(failed))
        return 1
    print("all kernel perf targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
