"""Regenerates Figure 7: per-stage switch cost vs nodes, full buffer copy.

Paper shape being asserted:
- the buffer-switch stage is flat in the node count (it is a local copy
  of fixed-size regions) and lands inside the paper's 14-17 M cycle band;
- it dominates the halt and release stages by orders of magnitude;
- halt and release grow with the node count (global protocols between
  unsynchronised machines).
"""

from benchmarks.conftest import run_once
from repro.experiments.common import NODE_SWEEP
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import render_switch_overheads


def test_figure7(benchmark, publish):
    points = run_once(benchmark, lambda: run_figure7(nodes=NODE_SWEEP))
    publish("figure7", render_switch_overheads(points, "7"))

    switch = [p.mean_cycles.switch for p in points]
    halt = [p.mean_cycles.halt for p in points]
    release = [p.mean_cycles.release for p in points]

    # Flat and in the paper's band (< 85 ms = 17M cycles at 200 MHz).
    assert max(switch) == min(switch)
    assert 12_000_000 < switch[0] < 17_000_000
    # The copy dominates both protocols at every size.
    for p in points:
        assert p.mean_cycles.switch > 20 * p.mean_cycles.halt
        assert p.mean_cycles.switch > 20 * p.mean_cycles.release
    # Halt and release grow with the cluster (compare the sweep ends).
    assert halt[-1] > 2 * halt[0]
    assert release[-1] > release[0]
    # Each point measured real switches.
    assert all(p.switches >= 8 for p in points)
