"""Analytic bandwidth model for the point-to-point benchmark.

Two regimes bound FM's p2p throughput:

**Host-limited (peak)**: the sender's cost per packet is the per-fragment
bookkeeping plus the write-combining PIO write of the payload (plus the
per-message overhead amortised over its fragments):

    t_pkt  =  o_pkt + payload / r_pio + o_msg / nfrags
    peak   =  payload_per_pkt / t_pkt

**Window-limited**: with a credit window C0 and refills issued after
k = max(1, C0 - low_water) consumed packets, one refill cycle takes the
consumption of k packets (spaced by the arrival rate, i.e. t_pkt) plus
the pipeline latency delta (wire, DMA, extract, refill turnaround), and
returns k credits while up to C0 remain outstanding:

    cycle  =  k * t_pkt + delta + turnaround
    bw_win =  C0 * payload_per_pkt / cycle

The achievable bandwidth is min(peak, bw_win); C0 = 0 means zero.  The
DES must agree with this within a modest tolerance on p2p scenarios —
that agreement is a regression test (tests/model/), catching silent
drift in either the simulator's mechanics or this derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fm.buffers import ContextGeometry
from repro.fm.config import FMConfig
from repro.hardware.dma import DmaSpec
from repro.hardware.link import LinkSpec
from repro.hardware.nic import NicSpec
from repro.units import MB


@dataclass(frozen=True)
class BandwidthPrediction:
    """Model output for one (configuration, message size) point."""

    message_bytes: int
    c0: int
    peak_mbps: float
    window_mbps: float

    @property
    def mbps(self) -> float:
        """The binding constraint."""
        if self.c0 == 0:
            return 0.0
        return min(self.peak_mbps, self.window_mbps)

    @property
    def window_limited(self) -> bool:
        return self.c0 == 0 or self.window_mbps < self.peak_mbps


def predict_p2p_bandwidth(config: FMConfig, geometry: ContextGeometry,
                          message_bytes: int,
                          link: LinkSpec = LinkSpec(),
                          nic: NicSpec = NicSpec(),
                          dma: DmaSpec = DmaSpec()) -> BandwidthPrediction:
    """Predict the paper's Figure-5-style p2p bandwidth for one point."""
    if message_bytes < 0:
        raise ConfigError(f"negative message size {message_bytes}")
    c0 = geometry.initial_credits
    nfrags = config.packets_for(message_bytes)
    # Mean payload per packet (the last fragment may be partial).
    payload = message_bytes / nfrags if message_bytes > 0 else 0.0

    # Sender-side cost per packet.
    t_pkt = (config.host_packet_overhead
             + payload / config.pio_rate
             + config.host_msg_overhead / nfrags)
    peak = (payload / t_pkt) / MB if t_pkt > 0 else 0.0

    if c0 == 0:
        return BandwidthPrediction(message_bytes, 0, peak, 0.0)

    # Receiver-side per-packet consumption cost (extraction).
    t_extract = config.extract_packet_overhead + payload / config.extract_copy_rate
    # One-way pipeline latency: injection, wire, receive context, DMA,
    # extraction of the packet that crosses the refill threshold, plus the
    # receiver's refill-send overhead and the return trip of the refill.
    wire = link.wire_time(int(payload) + 24) + link.latency()
    dma_time = dma.setup_time + (payload + 24) / dma.bandwidth
    delta = (wire + nic.send_pickup_time + nic.interrupt_time
             + nic.recv_process_time + dma_time
             + t_extract + config.refill_send_overhead
             + link.wire_time(16) + link.latency() + nic.recv_process_time)

    low_water = int(c0 * config.low_water_fraction)
    k = max(1, c0 - low_water)
    # Packets are consumed at the arrival rate (sender-paced), so the k
    # consumptions of one refill cycle span k * t_pkt.
    cycle = k * max(t_pkt, t_extract) + delta + config.credit_turnaround
    window = (c0 * payload / cycle) / MB

    return BandwidthPrediction(message_bytes, c0, peak, window)
