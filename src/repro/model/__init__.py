"""Closed-form performance models used to cross-check the simulator."""

from repro.model.analytic import BandwidthPrediction, predict_p2p_bandwidth

__all__ = ["BandwidthPrediction", "predict_p2p_bandwidth"]
