"""Switch overhead as a fraction of the gang quantum.

The paper's argument for tolerability is relative: "the overhead incurred
by the buffer switch is negligible compared to the long time quantum used
in multiprogrammed gang scheduling machines (seconds or even minutes)".
This sweep measures the full three-stage switch cost under all-to-all
load and reports the duty-cycle loss for a range of quanta — including
the paper's 1 s and 3 s operating points — for both copy algorithms.

The stage costs are quantum-independent (per-event), so the measurement
runs once per algorithm at a simulation-friendly quantum and the
percentage is evaluated at each target quantum; the experiment *also*
verifies the quantum-independence claim by measuring at two different
quanta directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gluefm.switch import FullCopy, SwitchAlgorithm, ValidOnlyCopy
from repro.experiments.common import point_seed, run_points
from repro.experiments.figure7 import run_switch_point


@dataclass(frozen=True)
class QuantumPoint:
    """Overhead of one algorithm at one target quantum."""

    algorithm: str
    quantum: float
    switch_seconds: float       # full three-stage cost per switch
    overhead_percent: float


def measure_switch_cost(algorithm: SwitchAlgorithm, nodes: int = 16,
                        measure_quantum: float = 0.012,
                        num_switches: int = 8,
                        seed: int = 0) -> float:
    """Mean three-stage cost per switch [s] under all-to-all load."""
    point = run_switch_point(nodes, algorithm, quantum=measure_quantum,
                             num_switches=num_switches, seed=seed)
    return point.mean_cycles.total / point.clock_hz


def _cost_worker(args: tuple) -> float:
    """Picklable run_points worker: one algorithm's switch cost."""
    algorithm, nodes, seed = args
    return measure_switch_cost(algorithm, nodes=nodes, seed=seed)


def run_quantum_sweep(quanta: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 10.0),
                      nodes: int = 16,
                      root_seed: int = 0,
                      workers: int = 1) -> list[QuantumPoint]:
    """Duty-cycle loss per quantum for both switch algorithms."""
    algorithms = (FullCopy(), ValidOnlyCopy())
    items = [(algo, nodes,
              point_seed(root_seed, f"quantum:{algo.name}:nodes={nodes}"))
             for algo in algorithms]
    costs = run_points(_cost_worker, items, workers=workers)
    points = []
    for algorithm, cost in zip(algorithms, costs):
        for quantum in quanta:
            points.append(QuantumPoint(
                algorithm=algorithm.name, quantum=quantum,
                switch_seconds=cost,
                overhead_percent=100.0 * cost / (quantum + cost),
            ))
    return points


def verify_quantum_independence(algorithm: SwitchAlgorithm | None = None,
                                nodes: int = 8) -> tuple[float, float]:
    """The stage cost measured at two different quanta (should match)."""
    algo = algorithm if algorithm is not None else FullCopy()
    a = measure_switch_cost(algo, nodes=nodes, measure_quantum=0.008)
    b = measure_switch_cost(algo, nodes=nodes, measure_quantum=0.020)
    return a, b
