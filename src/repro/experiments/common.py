"""Shared experiment plumbing.

The paper's measurements push 10^5-10^6 packets per data point on real
hardware; a Python DES cannot, so every experiment takes a *scale* knob:
``target_packets`` bounds the packets per measurement and quanta are tens
of milliseconds rather than seconds.  Bandwidths are steady-state rates
and switch costs are per-event, so the *shapes* are scale-invariant;
EXPERIMENTS.md tabulates the scaling factor used for each figure.

Sweeps fan out over independent data points, each a hermetic simulation
(fresh :class:`~repro.sim.core.Simulator`, own config, own RNG streams),
so :func:`run_points` can run them through a process pool: results are
bit-identical to a serial run because nothing but the point's own
arguments — including its :func:`point_seed`-derived RNG seed, which
depends only on the point's identity, never on execution order — feeds
the simulation.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.fm.config import FMConfig

_T = TypeVar("_T")
_R = TypeVar("_R")


#: Message sizes for the Figure 5 sweep (its axis runs 1 byte to 64K).
FIG5_MESSAGE_SIZES = (64, 256, 1024, 4096, 16384, 65536)
#: Message sizes for the Figure 6 sweep (its axis runs 96 bytes to 96K).
FIG6_MESSAGE_SIZES = (96, 384, 1536, 6144, 24576, 98304)
#: Cluster sizes for the Figures 7-9 sweep ("Nodes" axis, 2..16).
NODE_SWEEP = (2, 4, 8, 12, 16)


def messages_for_size(config: FMConfig, message_bytes: int,
                      target_packets: int) -> int:
    """Pick a message count so each point moves ~target_packets packets.

    Mirrors the paper's "500,000 for small messages and 100,000 for large
    ones", scaled to simulation budgets.  At least 20 messages keeps the
    finish-message overhead amortised.
    """
    if target_packets <= 0:
        raise ConfigError(f"target_packets must be positive, got {target_packets}")
    per_message = config.packets_for(message_bytes)
    return max(20, target_packets // per_message)


def packets_for_messages(config: FMConfig, message_bytes: int, messages: int) -> int:
    """Packets a point actually moves with ``messages`` messages.

    :func:`messages_for_size` floors the message count at 20, so for large
    messages the real packet volume can exceed ``target_packets`` by a
    wide margin; result records carry this actual count rather than the
    nominal target.
    """
    return messages * config.packets_for(message_bytes)


def point_seed(root_seed: int, label: str) -> int:
    """Derive a sweep point's RNG seed from the root seed and its identity.

    Hash-derived (not sequential), so the seed depends only on *which*
    point this is — adding, removing, reordering, or parallelising points
    never changes any other point's stream.
    """
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def effective_workers(workers: int | None) -> int:
    """The worker count :func:`run_points` will actually use.

    Requested workers are capped at ``os.cpu_count()``: a pool wider
    than the machine only adds fork and pickle overhead (on a one-core
    box a 4-worker pool made the Figure 6 sweep *slower* than serial).
    A cap of 1 means the serial in-process path.
    """
    import os

    if workers is None or workers <= 1:
        return 1
    return min(workers, os.cpu_count() or 1)


def run_points(worker: Callable[[_T], _R], items: Sequence[_T],
               workers: int = 1) -> list[_R]:
    """Map ``worker`` over sweep ``items``, optionally in parallel.

    An effective worker count of 1 (requested serial, or the
    :func:`effective_workers` CPU cap) runs serially in-process.
    Otherwise the points run in a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results come
    back in input order, and because every point is hermetic (see module
    docstring) the output is bit-identical to the serial path.  ``worker``
    and each item must be picklable, i.e. a module-level function applied
    to plain-data arguments.
    """
    items = list(items)
    capped = effective_workers(workers)
    if capped <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(capped, len(items))) as pool:
        return list(pool.map(worker, items))
