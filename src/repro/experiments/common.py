"""Shared experiment plumbing.

The paper's measurements push 10^5-10^6 packets per data point on real
hardware; a Python DES cannot, so every experiment takes a *scale* knob:
``target_packets`` bounds the packets per measurement and quanta are tens
of milliseconds rather than seconds.  Bandwidths are steady-state rates
and switch costs are per-event, so the *shapes* are scale-invariant;
EXPERIMENTS.md tabulates the scaling factor used for each figure.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fm.config import FMConfig


#: Message sizes for the Figure 5 sweep (its axis runs 1 byte to 64K).
FIG5_MESSAGE_SIZES = (64, 256, 1024, 4096, 16384, 65536)
#: Message sizes for the Figure 6 sweep (its axis runs 96 bytes to 96K).
FIG6_MESSAGE_SIZES = (96, 384, 1536, 6144, 24576, 98304)
#: Cluster sizes for the Figures 7-9 sweep ("Nodes" axis, 2..16).
NODE_SWEEP = (2, 4, 8, 12, 16)


def messages_for_size(config: FMConfig, message_bytes: int,
                      target_packets: int) -> int:
    """Pick a message count so each point moves ~target_packets packets.

    Mirrors the paper's "500,000 for small messages and 100,000 for large
    ones", scaled to simulation budgets.  At least 20 messages keeps the
    finish-message overhead amortised.
    """
    if target_packets <= 0:
        raise ConfigError(f"target_packets must be positive, got {target_packets}")
    per_message = config.packets_for(message_bytes)
    return max(20, target_packets // per_message)
