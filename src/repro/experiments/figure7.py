"""Figures 7 and 9 share this driver: per-stage context-switch cost vs
cluster size, under an all-to-all load.

Two all-to-all jobs (each spanning all nodes) occupy two gang slots; the
masterd rotates with a (scaled) quantum; every switch's halt / buffer
switch / release stages are timed per node.  Figure 7 uses the full-copy
algorithm, Figure 9 the improved valid-packets-only copy — the paper's
point being that the full copy is flat (~capacity / copy rate) and
dominant, while the improved one drops by an order of magnitude and
scales with occupancy, and that halt/release grow with the node count
(global protocols) while the copy does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.fm.config import FMConfig
from repro.gluefm.switch import FullCopy, SwitchAlgorithm
from repro.metrics.counters import StageTimings, SwitchRecorder
from repro.metrics.occupancy import OccupancySummary, summarize_occupancy
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.experiments.common import NODE_SWEEP, point_seed, run_points
from repro.workloads.alltoall import alltoall_stream


@dataclass(frozen=True)
class SwitchOverheadPoint:
    """One x-axis position of Figure 7 / Figure 9."""

    nodes: int
    algorithm: str
    switches: int
    mean_cycles: StageTimings
    occupancy: OccupancySummary
    clock_hz: float = 200e6
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None


def run_switch_point(nodes: int, algorithm: SwitchAlgorithm,
                     quantum: float = 0.012,
                     num_switches: int = 10,
                     message_bytes: int = 8192,
                     num_processors: int = 16,
                     max_events: int = 400_000_000,
                     seed: int = 0,
                     telemetry: bool = False) -> SwitchOverheadPoint:
    """Measure one cluster size with one switch algorithm.

    Two *endless* all-to-all jobs stream under the gang scheduler and the
    simulation runs until ``num_switches`` switch rounds complete — every
    sampled switch therefore interrupts live traffic, which is the
    condition the paper measures under (and the condition that puts
    packets in the buffers for Figure 8).  The jobs are then abandoned,
    not drained: nothing in the stage timings depends on how the run ends.
    """
    fm = FMConfig(max_contexts=2, num_processors=num_processors)
    cluster = ParParCluster(ClusterConfig(
        num_nodes=nodes, time_slots=2, quantum=quantum,
        buffer_switching=True, switch_algorithm=algorithm, fm=fm,
        seed=seed, telemetry=telemetry,
    ))
    workload = alltoall_stream(until=float("inf"), message_bytes=message_bytes)
    for i in range(2):
        cluster.submit(JobSpec(f"a2a{i}", nodes, workload))
    sim = cluster.sim
    done = cluster.masterd.switch_count_event(num_switches)
    try:
        sim.run_until_processed(done, max_events=max_events)
    except SimulationError as exc:
        if str(exc).startswith("exceeded max_events"):
            raise RuntimeError(
                f"switch sweep exceeded max_events={max_events}") from None
        raise

    recorder: SwitchRecorder = cluster.recorder
    switched = recorder.with_outgoing_job()
    # Build the mean over switches that actually moved a context.
    sub = SwitchRecorder()
    for rec in switched:
        sub.add(rec)
    clock = cluster.nodes[0].cpu.spec.clock_hz
    return SwitchOverheadPoint(
        nodes=nodes,
        algorithm=algorithm.name,
        switches=len(switched),
        mean_cycles=sub.mean_stage_cycles(clock),
        occupancy=summarize_occupancy(switched),
        clock_hz=clock,
        telemetry=cluster.telemetry_snapshot() if telemetry else None,
    )


def _point_worker(args: tuple) -> SwitchOverheadPoint:
    """Picklable run_points worker: one (nodes, algorithm) position."""
    nodes, algorithm, quantum, num_switches, message_bytes, seed, telem = args
    return run_switch_point(nodes, algorithm, quantum=quantum,
                            num_switches=num_switches,
                            message_bytes=message_bytes, seed=seed,
                            telemetry=telem)


def run_switch_overheads(algorithm: SwitchAlgorithm,
                         nodes: Sequence[int] = NODE_SWEEP,
                         quantum: float = 0.012,
                         num_switches: int = 10,
                         message_bytes: int = 8192,
                         root_seed: int = 0,
                         workers: int = 1,
                         telemetry: bool = False) -> list[SwitchOverheadPoint]:
    """The node sweep for one algorithm (Fig. 7: FullCopy, Fig. 9: ValidOnly)."""
    items = [(n, algorithm, quantum, num_switches, message_bytes,
              point_seed(root_seed, f"switch:{algorithm.name}:nodes={n}"),
              telemetry)
             for n in nodes]
    return run_points(_point_worker, items, workers=workers)


def run_figure7(nodes: Sequence[int] = NODE_SWEEP, **kwargs) -> list[SwitchOverheadPoint]:
    """Figure 7: the full-copy buffer switch."""
    return run_switch_overheads(FullCopy(), nodes=nodes, **kwargs)
