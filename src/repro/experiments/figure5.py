"""Figure 5: FM bandwidth vs message size and number of contexts, using
the original (static) buffer division.

Methodology as in the paper: the p2p bandwidth benchmark runs as a single
application — no context switches occur — but the buffers are divided for
the *maximum* number of contexts n, so the credit window shrinks as
C0 = Br / (n^2 p) and bandwidth collapses; at n >= 7 the window is zero
and "no communication is even possible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fm.buffers import StaticPartition
from repro.fm.config import FMConfig
from repro.fm.harness import FMNetwork
from repro.sim.core import Simulator
from repro.experiments.common import (FIG5_MESSAGE_SIZES, messages_for_size,
                                      packets_for_messages, run_points)
from repro.workloads.bandwidth import BandwidthResult, bandwidth_benchmark


@dataclass(frozen=True)
class Figure5Point:
    """One cell of the figure's surface."""

    contexts: int
    message_bytes: int
    c0: int
    mbps: float
    messages: int
    packets_moved: int   # actual packet volume (>= the nominal target)
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None


def _measure_point(contexts: int, message_bytes: int, messages: int,
                   num_processors: int,
                   telemetry: bool = False) -> Figure5Point:
    sim = Simulator()
    config = FMConfig(max_contexts=contexts, num_processors=num_processors)
    # "report" keeps the legacy zero-credit geometry: measuring the
    # collapse (0 MB/s at n >= 7) is this figure's entire point.
    policy = StaticPartition(on_zero_credit="report")
    c0 = policy.geometry(config).initial_credits
    telem = None
    if telemetry:
        from repro.telemetry.session import Telemetry
        telem = Telemetry(clock=lambda: sim.now)
        sim.profiler = telem.profiler
    net = FMNetwork(sim, num_nodes=2, config=config, strict_no_loss=True,
                    tracer=telem.tracer if telem is not None else None)
    sender, receiver = net.create_job(1, [0, 1], policy)
    workload = bandwidth_benchmark(messages, message_bytes)
    results = {}

    def run(ep):
        results[ep.rank] = yield from workload(ep)

    procs = [sim.process(run(ep)) for ep in (sender, receiver)]
    for proc in procs:
        sim.run_until_processed(proc, max_events=200_000_000)
    result: BandwidthResult = results[0]
    snapshot = None
    if telem is not None:
        from repro.telemetry.session import harvest_network
        harvest_network(telem, net)
        snapshot = telem.snapshot()
    return Figure5Point(contexts=contexts, message_bytes=message_bytes,
                        c0=c0, mbps=result.mbps, messages=messages,
                        packets_moved=packets_for_messages(config, message_bytes,
                                                           messages),
                        telemetry=snapshot)


def _point_worker(args: tuple) -> Figure5Point:
    """Picklable run_points worker: one (contexts, size) cell."""
    return _measure_point(*args)


def run_figure5(contexts: Sequence[int] = tuple(range(1, 9)),
                message_sizes: Sequence[int] = FIG5_MESSAGE_SIZES,
                target_packets: int = 1500,
                num_processors: int = 16,
                workers: int = 1,
                telemetry: bool = False) -> list[Figure5Point]:
    """The full sweep: one point per (contexts, message size)."""
    items = []
    for n in contexts:
        config = FMConfig(max_contexts=n, num_processors=num_processors)
        for size in message_sizes:
            messages = messages_for_size(config, size, target_packets)
            items.append((n, size, messages, num_processors, telemetry))
    return run_points(_point_worker, items, workers=workers)
