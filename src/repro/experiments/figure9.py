"""Figure 9: per-stage switch cost with the improved (valid-only) copy.

Same driver as Figure 7, with the :class:`ValidOnlyCopy` algorithm: the
buffer-switch stage collapses by roughly an order of magnitude and now
grows with the (occupancy-dependent) number of valid packets rather than
staying pinned at the capacity copy cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.gluefm.switch import ValidOnlyCopy
from repro.experiments.common import NODE_SWEEP
from repro.experiments.figure7 import SwitchOverheadPoint, run_switch_overheads


def run_figure9(nodes: Sequence[int] = NODE_SWEEP, **kwargs) -> list[SwitchOverheadPoint]:
    """Figure 9: the improved buffer switch."""
    return run_switch_overheads(ValidOnlyCopy(), nodes=nodes, **kwargs)
