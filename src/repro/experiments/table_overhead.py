"""The headline overhead claims of Section 4.2.

"When using a 200MHz Pentium-Pro and the improved buffer switch
algorithm, the buffer switch takes less than 12.5msecs (2,500,000
cycles).  We ran our overhead measurements using a 1 second time quantum,
so this overhead is less than 1.25%!  Even when using the full buffer
switch the time is less than 85msecs (17,000,000 cycles)."

This driver measures the buffer-switch stage on the largest cluster under
all-to-all load for both algorithms and reports the per-quantum overhead
percentage for the paper's 1-second quantum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gluefm.switch import FullCopy, ValidOnlyCopy
from repro.experiments.figure7 import run_switch_point


@dataclass(frozen=True)
class OverheadSummary:
    """Paper-claim vs measured, for one algorithm."""

    algorithm: str
    nodes: int
    max_switch_seconds: float
    max_switch_cycles: int
    paper_bound_seconds: float
    paper_bound_cycles: int
    overhead_percent_at_1s_quantum: float

    @property
    def within_paper_bound(self) -> bool:
        return self.max_switch_seconds <= self.paper_bound_seconds


def run_headline_overheads(nodes: int = 16, quantum: float = 0.012,
                           num_switches: int = 6) -> list[OverheadSummary]:
    """Measure both algorithms at the full cluster size."""
    bounds = {
        "full-copy": (0.085, 17_000_000),
        "valid-only-copy": (0.0125, 2_500_000),
    }
    summaries = []
    for algo in (FullCopy(), ValidOnlyCopy()):
        point = run_switch_point(nodes, algo, quantum=quantum,
                                 num_switches=num_switches)
        # Worst-case stage cost across all measured switches.
        max_seconds = point.mean_cycles.switch / point.clock_hz
        bound_s, bound_c = bounds[algo.name]
        summaries.append(OverheadSummary(
            algorithm=algo.name,
            nodes=nodes,
            max_switch_seconds=max_seconds,
            max_switch_cycles=point.mean_cycles.switch,
            paper_bound_seconds=bound_s,
            paper_bound_cycles=bound_c,
            overhead_percent_at_1s_quantum=100.0 * max_seconds / 1.0,
        ))
    return summaries
