"""Figure 8: valid packets in the buffers at switch time, vs cluster size.

Sampled inside the buffer-switch stage of the same all-to-all runs that
produce Figure 7.  The paper's observations, which the model reproduces:

- the send queue stays nearly empty ("the host processor cannot generate
  messages fast enough to fill the queue" — the LANai drains it faster
  than the ~80 MB/s PIO path fills it);
- the receive queue holds a modest but growing number of packets as
  nodes are added (fan-in bursts of the all-to-all exceed the host's
  extraction rate, and more peers mean more in-flight packets caught by
  the flush).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.gluefm.switch import FullCopy, SwitchAlgorithm
from repro.experiments.common import NODE_SWEEP
from repro.experiments.figure7 import run_switch_overheads


@dataclass(frozen=True)
class OccupancyPoint:
    """One x-axis position of Figure 8."""

    nodes: int
    mean_send_valid: float
    mean_recv_valid: float
    max_send_valid: int
    max_recv_valid: int
    samples: int
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None


def run_figure8(nodes: Sequence[int] = NODE_SWEEP,
                algorithm: SwitchAlgorithm | None = None,
                **kwargs) -> list[OccupancyPoint]:
    """The occupancy sweep (defaults to the Figure-7 full-copy runs).

    ``workers`` / ``root_seed`` pass through to the underlying node sweep.
    """
    algo = algorithm if algorithm is not None else FullCopy()
    points = []
    for result in run_switch_overheads(algo, nodes=nodes, **kwargs):
        occ = result.occupancy
        points.append(OccupancyPoint(
            nodes=result.nodes,
            mean_send_valid=occ.mean_send,
            mean_recv_valid=occ.mean_recv,
            max_send_valid=occ.max_send,
            max_recv_valid=occ.max_recv,
            samples=occ.samples,
            telemetry=result.telemetry,
        ))
    return points
