"""The NIC-memory sufficiency observation (Section 4.1).

"The results also indicate that about 256KB of memory on the NIC
suffices for adequate performance; hence as the available memory grows,
more contexts can be supported."

We sweep the *per-context* buffer allotment (equivalently: the NIC/DMA
memory divided by the context count) and measure p2p bandwidth.  The
knee of the curve is where adding buffer stops paying — the paper eyeballs
it at ~256 KB of card memory; the driver also reports, for a given card
size, how many full-performance contexts fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import CreditError
from repro.fm.buffers import BufferPolicy, ContextGeometry
from repro.fm.config import FMConfig
from repro.fm.harness import FMNetwork
from repro.sim.core import Simulator
from repro.experiments.common import run_points
from repro.units import KiB, mb_per_second


class ScaledBuffers(BufferPolicy):
    """A context sized to an explicit byte budget (credits sized like the
    paper's gang scheme: only the job's p processes can send here)."""

    name = "scaled-buffers"

    def __init__(self, send_bytes: int, recv_bytes: int):
        self.send_bytes = send_bytes
        self.recv_bytes = recv_bytes

    def geometry(self, config: FMConfig) -> ContextGeometry:
        recv = self.recv_bytes // config.packet_bytes
        send = max(1, self.send_bytes // config.packet_bytes)
        return ContextGeometry(
            recv_packets=recv, send_packets=send,
            initial_credits=recv // config.num_processors,
        )


@dataclass(frozen=True)
class NicMemoryPoint:
    """One x-position of the sufficiency curve."""

    send_buffer_kib: int
    recv_buffer_kib: int
    credits: int
    mbps: float
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None


def _measure_point(send_kib: int, recv_kib: int, message_bytes: int,
                   messages: int, num_processors: int,
                   telemetry: bool = False) -> NicMemoryPoint:
    """Bandwidth at one per-context buffer allotment (hermetic sim)."""
    policy = ScaledBuffers(send_kib * KiB, recv_kib * KiB)
    config = FMConfig(num_processors=num_processors)
    geometry = policy.geometry(config)

    sim = Simulator()
    telem = None
    if telemetry:
        from repro.telemetry.session import Telemetry
        telem = Telemetry(clock=lambda: sim.now)
        sim.profiler = telem.profiler
    net = FMNetwork(sim, num_nodes=2, config=config, strict_no_loss=True,
                    tracer=telem.tracer if telem is not None else None)
    sender, receiver = net.create_job(1, [0, 1], policy)
    start = {}

    def tx():
        start["t"] = sim.now
        for _ in range(messages):
            yield from sender.library.send(1, message_bytes)

    def rx():
        yield from receiver.library.extract_messages(messages)

    sim.process(tx())
    done = sim.process(rx())
    try:
        sim.run_until_processed(done, max_events=100_000_000)
        mbps = mb_per_second(messages * message_bytes, sim.now - start["t"])
    except CreditError:
        mbps = 0.0
    snapshot = None
    if telem is not None:
        from repro.telemetry.session import harvest_network
        harvest_network(telem, net)
        snapshot = telem.snapshot()
    return NicMemoryPoint(
        send_buffer_kib=send_kib, recv_buffer_kib=recv_kib,
        credits=geometry.initial_credits, mbps=mbps,
        telemetry=snapshot,
    )


def _point_worker(args: tuple) -> NicMemoryPoint:
    """Picklable run_points worker: one buffer allotment."""
    return _measure_point(*args)


def run_nic_memory_sweep(
        send_sizes_kib: Sequence[int] = (16, 32, 64, 128, 192, 256, 320, 400),
        recv_to_send_ratio: float = 2.5,   # the paper's 1 MB : 400 KB
        message_bytes: int = 16384,
        messages: int = 200,
        num_processors: int = 16,
        workers: int = 1,
        telemetry: bool = False) -> list[NicMemoryPoint]:
    """Bandwidth as a function of the per-context buffer allotment."""
    items = [(send_kib, int(send_kib * recv_to_send_ratio),
              message_bytes, messages, num_processors, telemetry)
             for send_kib in send_sizes_kib]
    return run_points(_point_worker, items, workers=workers)


def knee_of(points: Sequence[NicMemoryPoint], fraction: float = 0.95) -> NicMemoryPoint:
    """The smallest allotment reaching ``fraction`` of the best bandwidth."""
    best = max(p.mbps for p in points)
    for p in sorted(points, key=lambda p: p.send_buffer_kib):
        if p.mbps >= fraction * best:
            return p
    return points[-1]


def contexts_supported(card_kib: int, knee_send_kib: int) -> int:
    """How many adequate-performance contexts fit on a card of
    ``card_kib`` (the paper's forward-looking point)."""
    return max(1, card_kib // max(knee_send_kib, 1))
