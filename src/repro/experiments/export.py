"""CSV export of experiment results.

Every ``run_*`` driver returns lists of flat frozen dataclasses; this
module turns any such list into CSV so results can leave the Python
world (spreadsheets, gnuplot, pandas) without bespoke glue per figure.
Nested dataclass fields (e.g. the StageTimings inside a
SwitchOverheadPoint) are flattened with dotted column names.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from typing import Any, Sequence

from repro.errors import ConfigError


def _flatten(record: Any, prefix: str = "") -> dict[str, Any]:
    if not dataclasses.is_dataclass(record):
        raise ConfigError(f"not a dataclass row: {record!r}")
    out: dict[str, Any] = {}
    for field in dataclasses.fields(record):
        value = getattr(record, field.name)
        if field.name == "telemetry":
            # Snapshots are nested JSON, not tabular data; they have their
            # own exporters (repro.telemetry.export) and --telemetry flag.
            continue
        key = f"{prefix}{field.name}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out.update(_flatten(value, prefix=f"{key}."))
        elif isinstance(value, tuple):
            out[key] = ";".join(str(v) for v in value)
        else:
            out[key] = value
    return out


def to_csv(points: Sequence[Any]) -> str:
    """Render a list of result dataclasses as CSV text."""
    if not points:
        return ""
    rows = [_flatten(p) for p in points]
    header = list(rows[0])
    for row in rows[1:]:
        if list(row) != header:
            raise ConfigError("heterogeneous result rows cannot share a CSV")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=header, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(points: Sequence[Any], path) -> None:
    """Write ``to_csv`` output to ``path``."""
    with open(path, "w", newline="") as fh:
        fh.write(to_csv(points))
