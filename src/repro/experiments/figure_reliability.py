"""Reliability-strategy comparison: goodput under packet loss.

The paper's reliability argument is qualitative — Myrinet "can be
considered reliable", so FM ships no ack protocol at all.  The chaos
layer added one (:mod:`repro.faults.retransmit`); this sweep compares
its pluggable ACK/NACK strategies on one axis: delivered goodput vs
injected drop rate, with the retransmit-epoch span count showing how
much recovery work each strategy performed to get there.

Arms (see :mod:`repro.faults.strategies`):

- ``per-packet`` — positive ack per packet, fixed exponential backoff
  (the original behaviour; the regression anchor);
- ``cumulative`` — ack-every-N / max-ack-delay prefix acks, cheaper in
  reverse-path control traffic;
- ``nack`` — debounced gap NACKs drive selective retransmits long
  before the stretched safety timeout would;
- ``adaptive`` — per-packet acks with an RTT-tracking timeout
  controller (Karn-filtered EWMA, floor/ceiling rails).

Every point is a hermetic gang-scheduled all-to-all cluster under the
fault injector, seeded by :func:`point_seed`; the
:class:`~repro.faults.audit.InvariantAuditor` verdict rides along so a
strategy that "wins" by losing messages is caught in the same table.  A
``-jN`` process-pool sweep is bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.common import point_seed, run_points
from repro.faults.audit import InvariantAuditor
from repro.faults.model import FaultSpec
from repro.faults.retransmit import RetransmitPolicy
from repro.faults.strategies import STRATEGY_NAMES
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.telemetry.spans import derive_retransmit_spans
from repro.units import MB
from repro.workloads.alltoall import alltoall_benchmark

#: Sweep arms, in presentation order (the registry's order).
STRATEGY_ARMS = STRATEGY_NAMES

#: Default drop-rate axis: lossless anchor through "10% of packets die".
DEFAULT_DROPS = (0.0, 0.02, 0.05, 0.10)


@dataclass(frozen=True)
class ReliabilityPoint:
    """One cell: a strategy arm at one drop rate."""

    strategy: str
    drop: float
    goodput_mbps: float        # delivered payload bytes / wall of the run
    retransmits: int           # wire copies beyond the first
    retransmit_epochs: int     # distinct seqs that needed >= 1 retry
    epochs_recovered: int      # epochs that ended in a delivery
    acks_sent: int
    nacks_sent: int
    permanent_losses: int      # driver gave up (max_retries exhausted)
    audit_ok: bool             # no-loss/no-dup/FIFO verdict
    rounds: int
    message_bytes: int
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-stable record (telemetry snapshots stay out of benchmarks)."""
        return {
            "strategy": self.strategy,
            "drop": self.drop,
            "goodput_mbps": round(self.goodput_mbps, 6),
            "retransmits": self.retransmits,
            "retransmit_epochs": self.retransmit_epochs,
            "epochs_recovered": self.epochs_recovered,
            "acks_sent": self.acks_sent,
            "nacks_sent": self.nacks_sent,
            "permanent_losses": self.permanent_losses,
            "audit_ok": self.audit_ok,
            "rounds": self.rounds,
            "message_bytes": self.message_bytes,
        }


def _measure_point(strategy: str, drop: float, rounds: int,
                   message_bytes: int, seed: int = 0,
                   telemetry: bool = False) -> ReliabilityPoint:
    """One hermetic all-to-all run under drop faults with ``strategy``."""
    if strategy not in STRATEGY_NAMES:
        raise ConfigError(
            f"unknown reliability strategy {strategy!r}; "
            f"choose from {', '.join(STRATEGY_NAMES)}")
    config = ClusterConfig(
        num_nodes=4, time_slots=2, quantum=0.004, seed=seed,
        faults=FaultSpec(drop_rate=drop),
        retransmit=RetransmitPolicy(),
        reliability_strategy=strategy,
        # Retransmit epochs are derived from the per-packet trace stream
        # (rto-retransmit / pkt-deliver pairing) — tracing must be on.
        trace=True,
        telemetry=telemetry,
    )
    cluster = ParParCluster(config)
    auditor = InvariantAuditor()
    auditor.attach(g.firmware for g in cluster.glue)

    workload = alltoall_benchmark(rounds=rounds, message_bytes=message_bytes)
    jobs = [cluster.submit(JobSpec(f"rel-{i}", 4, workload))
            for i in range(2)]
    cluster.run_until_finished(jobs)
    cluster.masterd.pause_rotation()
    cluster.run_for(0.2)   # drain ack timers and in-flight retransmits

    delivered = 0
    started = None
    finished = None
    for job in jobs:
        for rank in range(4):
            stats = job.result_of(rank)
            delivered += stats.messages_received * message_bytes
            started = (stats.started_at if started is None
                       else min(started, stats.started_at))
            finished = (stats.finished_at if finished is None
                        else max(finished, stats.finished_at))
    elapsed = (finished - started) if jobs else 0.0
    goodput = delivered / elapsed / MB if elapsed > 0 else 0.0

    firmwares = [g.firmware for g in cluster.glue]
    epochs = derive_retransmit_spans(cluster.tracer.records,
                                     truncated=cluster.tracer.truncated)

    # drop=0.0 disables the fault spec entirely, so no injector exists.
    excused = (set(cluster.fault_injector.faulted_seqs)
               if cluster.fault_injector is not None else set())
    for fw in firmwares:
        excused |= fw.retransmitted_seqs
    job_contexts = {
        job.job_id: {
            rank: cluster.nodeds[node_id].local_job(job.job_id).context
            for rank, node_id in job.rank_to_node.items()
        }
        for job in jobs
    }
    report = auditor.report(
        excused_seqs=excused, job_contexts=job_contexts,
        retransmits=sum(fw.retransmits for fw in firmwares))

    return ReliabilityPoint(
        strategy=strategy, drop=drop, goodput_mbps=goodput,
        retransmits=sum(fw.retransmits for fw in firmwares),
        retransmit_epochs=len(epochs),
        epochs_recovered=sum(1 for s in epochs if s.args.get("recovered")),
        acks_sent=sum(fw.acks_sent for fw in firmwares),
        nacks_sent=sum(fw.nacks_sent for fw in firmwares),
        permanent_losses=sum(fw.permanent_losses for fw in firmwares),
        audit_ok=report.ok,
        rounds=rounds, message_bytes=message_bytes,
        telemetry=cluster.telemetry_snapshot() if telemetry else None,
    )


def _point_worker(args: tuple) -> ReliabilityPoint:
    """Picklable run_points worker: one (strategy, drop) cell."""
    return _measure_point(*args)


def run_figure_reliability(strategies: Sequence[str] = STRATEGY_ARMS,
                           drops: Sequence[float] = DEFAULT_DROPS,
                           rounds: int = 20,
                           message_bytes: int = 1024,
                           root_seed: int = 0,
                           workers: int = 1,
                           telemetry: bool = False) -> list[ReliabilityPoint]:
    """The full sweep: one point per (strategy, drop rate)."""
    for name in strategies:
        if name not in STRATEGY_NAMES:
            raise ConfigError(
                f"unknown reliability strategy {name!r}; "
                f"choose from {', '.join(STRATEGY_NAMES)}")
    items = []
    for name in strategies:
        for drop in drops:
            seed = point_seed(
                root_seed, f"figure_reliability:{name}:drop={drop}")
            items.append((name, drop, rounds, message_bytes, seed, telemetry))
    return run_points(_point_worker, items, workers=workers)


def points_payload(points: Sequence[ReliabilityPoint]) -> dict:
    """The JSON benchmark document (``BENCH_reliability.json`` artifact)."""
    return {
        "schema": "repro-bench-reliability/1",
        "points": [p.to_dict() for p in points],
    }
