"""Plain-text rendering of experiment results.

The benchmarks print these tables so a run of ``pytest benchmarks/``
reproduces the figures as rows/series, the way the paper reports them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.figure5 import Figure5Point
from repro.experiments.figure6 import Figure6Point
from repro.experiments.figure_policies import PolicyPoint
from repro.experiments.figure_reliability import ReliabilityPoint
from repro.experiments.figure7 import SwitchOverheadPoint
from repro.experiments.figure8 import OccupancyPoint
from repro.experiments.table_overhead import OverheadSummary


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width text table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _grid(points, value_of, row_key, col_key, row_name, col_name, fmt="{:.1f}"):
    """Pivot a list of points into a rows-by-columns text grid."""
    rows_keys = sorted({row_key(p) for p in points})
    cols_keys = sorted({col_key(p) for p in points})
    lookup = {(row_key(p), col_key(p)): value_of(p) for p in points}
    headers = [f"{row_name}\\{col_name}"] + [str(c) for c in cols_keys]
    rows = []
    for r in rows_keys:
        row = [str(r)]
        for c in cols_keys:
            value = lookup.get((r, c))
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    return format_table(headers, rows)


def render_figure5(points: Sequence[Figure5Point]) -> str:
    """Bandwidth [MB/s] grid: contexts x message size (paper Fig. 5)."""
    body = _grid(points, lambda p: p.mbps,
                 row_key=lambda p: p.contexts, col_key=lambda p: p.message_bytes,
                 row_name="ctx", col_name="msgB")
    return ("Figure 5 - bandwidth [MB/s], original FM buffer division "
            "(C0 = Br/(n^2 p))\n" + body)


def render_figure6(points: Sequence[Figure6Point]) -> str:
    """Total bandwidth [MB/s] grid: jobs x message size (paper Fig. 6)."""
    body = _grid(points, lambda p: p.aggregate_mbps,
                 row_key=lambda p: p.jobs, col_key=lambda p: p.message_bytes,
                 row_name="jobs", col_name="msgB")
    return ("Figure 6 - total bandwidth [MB/s], buffer switching scheme "
            "(C0 = Br/p)\n" + body)


def render_policies(points: Sequence[PolicyPoint]) -> str:
    """Aggregate bandwidth [MB/s] grid per policy, plus engine activity."""
    sizes = sorted({p.message_bytes for p in points})
    arms = []
    for p in points:  # preserve sweep arm order
        if p.policy not in arms:
            arms.append(p.policy)
    blocks = []
    for size in sizes:
        cell = [p for p in points if p.message_bytes == size]
        jobs = sorted({p.jobs for p in cell})
        lookup = {(p.policy, p.jobs): p for p in cell}
        headers = ["policy"] + [f"{n} jobs" for n in jobs] + ["realloc", "window"]
        rows = []
        for arm in arms:
            row = [arm]
            realloc = 0
            lo = hi = 0
            for n in jobs:
                p = lookup.get((arm, n))
                row.append("-" if p is None else f"{p.aggregate_mbps:.1f}")
                if p is not None:
                    realloc += p.reallocations
                    if p.max_window:
                        lo = min(lo or p.min_window, p.min_window)
                        hi = max(hi, p.max_window)
            row.append(str(realloc))
            row.append(f"{lo}-{hi}" if hi else "-")
            rows.append(row)
        blocks.append(f"message size {size} B, aggregate bandwidth [MB/s]\n"
                      + format_table(headers, rows))
    return ("Buffer policies - total bandwidth vs competing jobs\n"
            + "\n\n".join(blocks))


def render_reliability(points: Sequence[ReliabilityPoint]) -> str:
    """Goodput and recovery effort per strategy across the drop axis."""
    drops = sorted({p.drop for p in points})
    arms = []
    for p in points:  # preserve sweep arm order
        if p.strategy not in arms:
            arms.append(p.strategy)
    lookup = {(p.strategy, p.drop): p for p in points}
    headers = (["strategy"] + [f"drop {d:g}" for d in drops]
               + ["rexmit", "epochs", "nacks", "lost", "audit"])
    rows = []
    for arm in arms:
        row = [arm]
        rexmit = epochs = nacks = lost = 0
        audits_ok = True
        for d in drops:
            p = lookup.get((arm, d))
            row.append("-" if p is None else f"{p.goodput_mbps:.1f}")
            if p is not None:
                rexmit += p.retransmits
                epochs += p.retransmit_epochs
                nacks += p.nacks_sent
                lost += p.permanent_losses
                audits_ok &= p.audit_ok
        row.extend([str(rexmit), str(epochs), str(nacks), str(lost),
                    "ok" if audits_ok else "FAIL"])
        rows.append(row)
    return ("Reliability strategies - goodput [MB/s] vs drop rate\n"
            + format_table(headers, rows))


def render_switch_overheads(points: Sequence[SwitchOverheadPoint], figure: str) -> str:
    """Per-stage cycles vs nodes (paper Figs. 7 and 9)."""
    headers = ["nodes", "halt[cyc]", "switch[cyc]", "release[cyc]",
               "total[cyc]", "switch[ms]", "switches"]
    rows = []
    for p in points:
        cyc = p.mean_cycles
        rows.append([p.nodes, cyc.halt, cyc.switch, cyc.release, cyc.total,
                     f"{1000 * cyc.switch / p.clock_hz:.2f}", p.switches])
    algo = points[0].algorithm if points else "?"
    return (f"Figure {figure} - context switch stage costs, {algo} "
            "(mean per switch)\n" + format_table(headers, rows))


def render_figure8(points: Sequence[OccupancyPoint]) -> str:
    """Valid packets at switch time vs nodes (paper Fig. 8)."""
    headers = ["nodes", "send(mean)", "recv(mean)", "send(max)", "recv(max)",
               "samples"]
    rows = [[p.nodes, f"{p.mean_send_valid:.1f}", f"{p.mean_recv_valid:.1f}",
             p.max_send_valid, p.max_recv_valid, p.samples] for p in points]
    return ("Figure 8 - valid packets in the buffers during switching\n"
            + format_table(headers, rows))


def render_headline(summaries: Sequence[OverheadSummary]) -> str:
    """Section 4.2's headline bounds vs measured."""
    headers = ["algorithm", "switch[ms]", "switch[cyc]", "paper bound[ms]",
               "within", "overhead@1s"]
    rows = []
    for s in summaries:
        rows.append([
            s.algorithm,
            f"{1000 * s.max_switch_seconds:.2f}",
            s.max_switch_cycles,
            f"{1000 * s.paper_bound_seconds:.1f}",
            "yes" if s.within_paper_bound else "NO",
            f"{s.overhead_percent_at_1s_quantum:.3f}%",
        ])
    return ("Headline overheads (Sec. 4.2): buffer switch cost on the full "
            "cluster\n" + format_table(headers, rows))
