"""Buffer-policy comparison: total bandwidth vs number of competing jobs.

Extends the paper's Figure 5/6 storyline past its two endpoints.  The
original FM divides the NIC SRAM statically (bandwidth collapses as
C0 = Br / (n^2 p)); the paper's gang-scheduled full-buffer scheme gives
every job the whole buffer during its quantum (C0 = Br / p, flat in n).
Between them sit the *dynamic* sharing policies from the buffer-sharing
literature — threshold sharing, preemptive reclamation, delay-driven
weighting — which this sweep runs on the same benchmark so all five
strategies land on one axis: aggregate bandwidth vs competing jobs.

Arms:

- ``static-partition`` runs resident (no buffer switching), in
  ``on_zero_credit="report"`` mode so the n >= 7 collapse measures as
  0 MB/s exactly as Figure 5 does.  Zero-credit cells short-circuit —
  the simulation could never deliver a message, so running it would
  just hang the sweep at the paper's "no communication" point.
- every other arm gang-schedules with buffer switching; the dynamic
  arms additionally run the :class:`~repro.fm.policies.engine.
  PolicyEngine`, which retargets queue allocations and credit windows
  at each gang switch.

Each point is a hermetic simulation seeded by :func:`point_seed`, so a
``-jN`` process-pool sweep is bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.fm.config import FMConfig
from repro.fm.policies import StaticPartition, make_policy
from repro.metrics.bandwidth import BandwidthSample, aggregate_bandwidth
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.experiments.common import point_seed, run_points
from repro.experiments.figure6 import _messages_for_quanta
from repro.workloads.bandwidth import bandwidth_benchmark

#: Sweep arms, in presentation order (also the order points are emitted).
POLICY_ARMS = ("static-partition", "full-buffer", "dynamic-threshold",
               "occamy", "bshare")

#: Default competing-job axis; 8 jobs is the paper's collapse point.
DEFAULT_JOBS = (1, 2, 4, 8)

#: Default message size: mid-range, the knee of the Figure 5/6 curves.
DEFAULT_MESSAGE_BYTES = (1536,)


@dataclass(frozen=True)
class PolicyPoint:
    """One cell: a policy arm at one (jobs, message size) coordinate."""

    policy: str
    jobs: int
    message_bytes: int
    per_job_mbps: tuple[float, ...]
    aggregate_mbps: float      # mean per-job x number of jobs (paper stat)
    switches: int              # completed gang switches (0 for resident arm)
    reallocations: int         # PolicyEngine context reallocations applied
    min_window: int            # smallest credit window the engine published
    max_window: int            # largest credit window the engine published
    messages_per_job: int
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-stable record (telemetry snapshots stay out of benchmarks)."""
        return {
            "policy": self.policy,
            "jobs": self.jobs,
            "message_bytes": self.message_bytes,
            "per_job_mbps": [round(v, 6) for v in self.per_job_mbps],
            "aggregate_mbps": round(self.aggregate_mbps, 6),
            "switches": self.switches,
            "reallocations": self.reallocations,
            "min_window": self.min_window,
            "max_window": self.max_window,
            "messages_per_job": self.messages_per_job,
        }


def _arm_policy(name: str):
    """Policy instance + buffer_switching flag for one sweep arm."""
    if name == "static-partition":
        # Resident contexts, legacy zero-credit geometry: this arm *is*
        # the Figure 5 baseline, collapse included.
        return StaticPartition(on_zero_credit="report"), False
    return make_policy(name), True


def _measure_point(policy_name: str, jobs: int, message_bytes: int,
                   messages: int, quantum: float, num_processors: int,
                   seed: int = 0, telemetry: bool = False) -> PolicyPoint:
    if jobs < 1:
        raise ConfigError(f"need at least one job, got {jobs}")
    policy, switching = _arm_policy(policy_name)
    fm = FMConfig(max_contexts=jobs, num_processors=num_processors)
    if policy.geometry(fm).initial_credits == 0:
        # The paper's "no communication is even possible" cell: the run
        # would stall forever, so report the exact outcome directly.
        return PolicyPoint(
            policy=policy_name, jobs=jobs, message_bytes=message_bytes,
            per_job_mbps=(0.0,) * jobs, aggregate_mbps=0.0, switches=0,
            reallocations=0, min_window=0, max_window=0,
            messages_per_job=messages, telemetry=None)
    cluster = ParParCluster(ClusterConfig(
        num_nodes=2, time_slots=jobs, quantum=quantum,
        buffer_switching=switching, policy=policy, fm=fm,
        seed=seed, telemetry=telemetry,
    ))
    workload = bandwidth_benchmark(messages, message_bytes)
    submitted = [cluster.submit(JobSpec(f"bw{i}", 2, workload))
                 for i in range(jobs)]
    cluster.run_until_finished(submitted, max_events=500_000_000)

    samples = []
    for job in submitted:
        result = job.result_of(0)
        samples.append(BandwidthSample(
            job_id=job.job_id, payload_bytes=result.payload_bytes,
            started_at=result.started_at, finished_at=result.finished_at,
        ))
    engine = cluster.policy_engine
    counters = engine.counters() if engine is not None else {}
    return PolicyPoint(
        policy=policy_name, jobs=jobs, message_bytes=message_bytes,
        per_job_mbps=tuple(s.mbps for s in samples),
        aggregate_mbps=aggregate_bandwidth(samples),
        switches=cluster.masterd.switches_completed,
        reallocations=counters.get("reallocations", 0),
        min_window=counters.get("min_window", 0),
        max_window=counters.get("max_window", 0),
        messages_per_job=messages,
        telemetry=cluster.telemetry_snapshot() if telemetry else None,
    )


def _point_worker(args: tuple) -> PolicyPoint:
    """Picklable run_points worker: one (policy, jobs, size) cell."""
    return _measure_point(*args)


def run_figure_policies(policies: Sequence[str] = POLICY_ARMS,
                        jobs: Sequence[int] = DEFAULT_JOBS,
                        message_sizes: Sequence[int] = DEFAULT_MESSAGE_BYTES,
                        quanta_per_job: float = 4.5,
                        quantum: float = 0.020,
                        num_processors: int = 16,
                        root_seed: int = 0,
                        workers: int = 1,
                        telemetry: bool = False) -> list[PolicyPoint]:
    """The full sweep: one point per (policy, number of jobs, size)."""
    for name in policies:
        _arm_policy(name)  # fail fast on unknown names
    items = []
    for name in policies:
        for njobs in jobs:
            fm = FMConfig(max_contexts=njobs, num_processors=num_processors)
            for size in message_sizes:
                messages = _messages_for_quanta(fm, size, quantum,
                                                quanta_per_job)
                seed = point_seed(
                    root_seed,
                    f"figure_policies:{name}:jobs={njobs}:size={size}")
                items.append((name, njobs, size, messages, quantum,
                              num_processors, seed, telemetry))
    return run_points(_point_worker, items, workers=workers)


def points_payload(points: Sequence[PolicyPoint]) -> dict:
    """The JSON benchmark document (``BENCH_policies.json`` / CI artifact)."""
    return {
        "schema": "repro-bench-policies/1",
        "points": [p.to_dict() for p in points],
    }
