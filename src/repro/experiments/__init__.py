"""Experiment drivers: one module per paper figure, plus the headline
overhead table.  Each ``run_*`` function returns plain dataclasses that
the benchmarks print via :mod:`~repro.experiments.report`; DESIGN.md maps
every figure to its module and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.figure5 import Figure5Point, run_figure5
from repro.experiments.figure6 import Figure6Point, run_figure6
from repro.experiments.figure7 import SwitchOverheadPoint, run_switch_overheads
from repro.experiments.figure8 import OccupancyPoint, run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.table_overhead import OverheadSummary, run_headline_overheads

__all__ = [
    "Figure5Point",
    "Figure6Point",
    "OccupancyPoint",
    "OverheadSummary",
    "SwitchOverheadPoint",
    "run_figure5",
    "run_figure6",
    "run_figure8",
    "run_figure9",
    "run_headline_overheads",
    "run_switch_overheads",
]
