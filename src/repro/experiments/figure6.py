"""Figure 6: total bandwidth vs message size and number of jobs, using
the paper's buffer-switching scheme under gang scheduling.

Each job is the two-process p2p bandwidth benchmark.  The jobs span the
same node pair, so each lands in its own gang slot and the masterd
rotates between them; every job runs with the *full* buffers
(C0 = Br / p) during its quantum.  Per the paper, the reported statistic
is the average per-application bandwidth (over wall-clock time, i.e.
including descheduled periods) multiplied by the number of applications —
which stays "fairly constant" as jobs are added, the headline result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.fm.config import FMConfig
from repro.gluefm.switch import SwitchAlgorithm, ValidOnlyCopy
from repro.metrics.bandwidth import BandwidthSample, aggregate_bandwidth
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.experiments.common import FIG6_MESSAGE_SIZES, point_seed, run_points
from repro.workloads.bandwidth import bandwidth_benchmark


def _messages_for_quanta(fm: FMConfig, message_bytes: int, quantum: float,
                         quanta_per_job: float) -> int:
    """Size each job's quota so it stays active for ~quanta_per_job quanta.

    The paper's statistic (mean per-app wall-clock bandwidth x #apps) only
    recovers the system bandwidth when every app's lifetime spans several
    round-robin cycles; a job that fits inside one quantum never shares
    and would overcount.  Estimated from the sender's host-side cost per
    message.
    """
    nfrags = fm.packets_for(message_bytes)
    t_msg = (fm.host_msg_overhead + nfrags * fm.host_packet_overhead
             + message_bytes / fm.pio_rate)
    active_time = quanta_per_job * quantum
    return max(30, int(active_time / t_msg))


@dataclass(frozen=True)
class Figure6Point:
    """One cell of the figure's surface."""

    jobs: int
    message_bytes: int
    per_job_mbps: tuple[float, ...]
    aggregate_mbps: float    # mean per-job x number of jobs (paper stat)
    switches: int
    messages_per_job: int
    #: unified telemetry snapshot (None unless the sweep asked for one)
    telemetry: Optional[dict] = None


def _measure_point(jobs: int, message_bytes: int, messages: int,
                   quantum: float, num_processors: int,
                   switch_algorithm: SwitchAlgorithm,
                   seed: int = 0, telemetry: bool = False) -> Figure6Point:
    if jobs < 1:
        raise ConfigError(f"need at least one job, got {jobs}")
    # Two physical nodes; every job wants both, forcing one job per slot.
    # The FM geometry keeps the paper's 16-processor credit sizing.
    fm = FMConfig(max_contexts=max(jobs, 1), num_processors=num_processors)
    cluster = ParParCluster(ClusterConfig(
        num_nodes=2, time_slots=max(jobs, 1), quantum=quantum,
        buffer_switching=True, switch_algorithm=switch_algorithm, fm=fm,
        seed=seed, telemetry=telemetry,
    ))
    workload = bandwidth_benchmark(messages, message_bytes)
    submitted = [cluster.submit(JobSpec(f"bw{i}", 2, workload))
                 for i in range(jobs)]
    cluster.run_until_finished(submitted, max_events=500_000_000)

    samples = []
    for job in submitted:
        result = job.result_of(0)
        samples.append(BandwidthSample(
            job_id=job.job_id, payload_bytes=result.payload_bytes,
            started_at=result.started_at, finished_at=result.finished_at,
        ))
    return Figure6Point(
        jobs=jobs, message_bytes=message_bytes,
        per_job_mbps=tuple(s.mbps for s in samples),
        aggregate_mbps=aggregate_bandwidth(samples),
        switches=cluster.masterd.switches_completed,
        messages_per_job=messages,
        telemetry=cluster.telemetry_snapshot() if telemetry else None,
    )


def _point_worker(args: tuple) -> Figure6Point:
    """Picklable run_points worker: one (jobs, size) cell."""
    return _measure_point(*args)


def run_figure6(jobs: Sequence[int] = tuple(range(1, 9)),
                message_sizes: Sequence[int] = FIG6_MESSAGE_SIZES,
                quanta_per_job: float = 4.5,
                quantum: float = 0.020,
                num_processors: int = 16,
                switch_algorithm: SwitchAlgorithm | None = None,
                root_seed: int = 0,
                workers: int = 1,
                telemetry: bool = False) -> list[Figure6Point]:
    """The full sweep: one point per (number of jobs, message size)."""
    algo = switch_algorithm if switch_algorithm is not None else ValidOnlyCopy()
    items = []
    for njobs in jobs:
        fm = FMConfig(max_contexts=max(njobs, 1), num_processors=num_processors)
        for size in message_sizes:
            messages = _messages_for_quanta(fm, size, quantum, quanta_per_job)
            seed = point_seed(root_seed, f"figure6:jobs={njobs}:size={size}")
            items.append((njobs, size, messages, quantum, num_processors,
                          algo, seed, telemetry))
    return run_points(_point_worker, items, workers=workers)
