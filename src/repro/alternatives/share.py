"""SHARE-style context switching: no network flush, discard mismatches.

"The SHARE scheduler for the IBM SP2 switches communication buffers as we
do ... However ... the network is not flushed as part of a context
switch, and nodes do not know exactly when other nodes complete their
switching.  Therefore it may happen that a node receives a packet
destined for a process that is no longer running.  This is handled by
comparing an ID carried in the packet with an ID for the current process
stored on the NIC, and discarding the packet if it does not fit.  It is
assumed that higher-level software (e.g. MPI or TCP) will handle the
retransmission needed to compensate for such lost packets."

FM has no retransmission, so running this policy under FM exposes exactly
the failure the paper designs around: every discarded data packet leaks a
flow-control credit permanently ("a single packet loss can mess up the
credit counters and the entire flow control algorithm"), and the jobs'
throughput decays switch by switch.  The ablation benchmark measures that
decay against the flushed baseline.
"""

from __future__ import annotations

from repro.metrics.counters import SwitchRecord
from repro.parpar.noded import NodeDaemon


class ShareNodeDaemon(NodeDaemon):
    """A noded that swaps buffers without the three-stage protocol.

    The switch is purely local: stop the process, swap the buffers, go —
    like SHARE's synchronised-clock switches.  In-flight packets that
    arrive between a context's removal and the peer's corresponding
    switch hit a NIC with no (or the wrong) loaded context and are
    discarded (the firmware's drop path).  Requires
    ``strict_no_loss=False`` in the cluster config, since loss is the
    point.
    """

    def _switch(self, sequence: int, old_slot: int, new_slot: int):
        out_job = self._slot_jobs.get(old_slot)
        in_job = self._slot_jobs.get(new_slot)
        started = self.sim.now
        out_local = self._jobs.get(out_job) if out_job is not None else None
        in_local = self._jobs.get(in_job) if in_job is not None else None

        if out_local is not None and out_local.process is not None:
            yield self.node.cpu.busy(self.SIGNAL_TIME)
            out_local.process.suspend()

        # Local stop on a packet boundary, but no halt broadcast, no
        # collection, no synchronisation with the other nodes.
        self.node.nic.set_halt_bit()
        glue = self.glue
        out_ctx = glue.context_of(out_job) if out_job is not None else None
        in_ctx = glue.context_of(in_job) if in_job is not None else None
        t0 = self.sim.now
        if out_ctx is not None and glue.firmware.installed_context(out_job) is out_ctx:
            glue.firmware.remove_context(out_ctx)
        report = yield from glue.switch_algorithm.run(self.node, out_ctx, in_ctx,
                                                      glue.backing)
        if in_ctx is not None:
            glue.firmware.install_context(in_ctx)
        switch_s = self.sim.now - t0
        self.node.nic.clear_halt_bit()
        glue.firmware.wake()

        if in_local is not None and in_local.process is not None:
            yield self.node.cpu.busy(self.SIGNAL_TIME)
            in_local.process.resume()

        self.current_slot = new_slot
        self.recorder.add(SwitchRecord(
            node_id=self.node.node_id, sequence=sequence,
            old_slot=old_slot, new_slot=new_slot,
            halt_seconds=0.0, switch_seconds=switch_s, release_seconds=0.0,
            out_job=out_job, in_job=in_job,
            out_send_valid=report.out_send_valid,
            out_recv_valid=report.out_recv_valid,
            algorithm=f"share+{glue.switch_algorithm.name}",
            started_at=started,
        ))
        self.control_net.send(self.node.node_id, self.master_endpoint,
                              ("switch-done", sequence, self.node.node_id))

    def dropped_on_node(self) -> int:
        return len(self.glue.firmware.dropped_packets)
