"""PM/SCore-D-style transport: acks and nacks instead of credits.

"PM uses nack messages and resends when there is no space in the receive
buffer, rather than relying on credits.  Thus there is no need to send
special control messages in order to flush the network: each node simply
stops transmitting, and then waits until it receives acks or nacks for
all outstanding packets" (Section 5).

Differences from FM embodied here:

- senders never block on credits — the only back-pressure is the local
  send queue and the nack/resend loop;
- the receiving NIC acknowledges every data packet (ACK) or rejects it
  when the receive queue is full (NACK), in which case the sending NIC
  re-enqueues the packet after a backoff;
- flushing is *local*: set the halt bit and wait for the outstanding-ack
  counter to reach zero (:meth:`PMFirmware.drain`) — no halt broadcast,
  no counting peers.

The ablation benchmarks compare (a) p2p bandwidth with the always-on ack
traffic against credit-based FM and (b) flush latency against the halt
broadcast protocol as the cluster grows.

**Relation to** :mod:`repro.faults.strategies` **(deliberately separate).**
The ``nack`` reliability strategy (:class:`~repro.faults.strategies.nack.
NackSelective`) also sends NACK packets, but the two are different layers
answering different questions and must not be merged:

- *This module is a transport ablation*: it **replaces** FM's credit flow
  control.  NACK here means "receive queue full, resend later" — it is
  back-pressure, sent even on a perfect network, and flushing becomes
  local ack-drain (the Section 5 claim under test).
- *The strategy is a fault-tolerance layer*: it sits **on top of** the
  credit-based FM transport, whose credits guarantee receive space.
  NACK there means "a gap in the per-channel sequence — a packet the
  network lost"; on a lossless link it never fires at all.

``tests/faults/test_strategies.py`` pins the reconciliation: over a
lossless link, PM and FM-plus-NackSelective deliver identical payload
sequences — same messages, same per-pair order — while PM acks every
packet and the strategy sends zero NACKs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigError, ProtocolError
from repro.fm.api import FMLibrary
from repro.fm.buffers import BufferPolicy, FullBuffer
from repro.fm.config import FMConfig
from repro.fm.context import FMContext
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.hardware.link import LinkSpec
from repro.hardware.network import MyrinetFabric
from repro.hardware.node import HostNode, NodeSpec
from repro.sim.core import Event, Simulator
from repro.units import US


class PMFirmware(LanaiFirmware):
    """LANai control program speaking the ack/nack transport."""

    RESEND_BACKOFF = 50 * US

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.outstanding = 0                      # unacked data packets
        self._unacked: dict[int, Packet] = {}     # seq -> packet copy
        self._drain_waiters: list[Event] = []
        self.acks_received = 0
        self.nacks_received = 0
        self.resends = 0

    # ------------------------------------------------------------------ sending
    def _inject(self, packet: Packet, pickup_time: float = 0.0):
        if packet.ptype is PacketType.DATA:
            self.outstanding += 1
            self._unacked[packet.seq] = packet
        yield from super()._inject(packet, pickup_time)

    def drain(self) -> Event:
        """Event that fires once every outstanding packet is (n)acked.

        This *is* PM's network flush: no broadcast, purely local state.
        The caller should set the halt bit first so no new packets join.
        """
        ev = Event(self.sim)
        if self.outstanding == 0:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    def _settle(self, seq: int) -> Optional[Packet]:
        packet = self._unacked.pop(seq, None)
        if packet is None:
            raise ProtocolError(f"NIC {self.nic.node_id}: (n)ack for unknown seq {seq}")
        self.outstanding -= 1
        if self.outstanding == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed()
        return packet

    # ------------------------------------------------------------------ receiving
    def _receive_one(self, packet: Packet):
        # Per-packet processing time is slept by the base class's run
        # loop before this is called (fused with the context-switch
        # interrupt when one fires) — don't sleep it again here.
        if packet.ptype is PacketType.ACK:
            self.acks_received += 1
            self._settle(packet.ack_seq)
            return
        if packet.ptype is PacketType.NACK:
            self.nacks_received += 1
            rejected = self._settle(packet.ack_seq)
            self.sim.process(self._resend(rejected),
                             name=f"pm-resend-{self.nic.node_id}")
            return
        if packet.ptype is PacketType.DATA:
            ctx = self._contexts.get(packet.job_id)
            if ctx is None or not ctx.is_active or ctx.recv_queue.is_full:
                # No room (or no context): nack so the sender retries.
                self._reply(packet, PacketType.NACK)
                return
            yield self.nic.dma.transfer(packet.size_bytes)
            ctx.recv_queue.append(packet)
            ctx.stats.packets_received += 1
            ctx.stats.bytes_received += packet.payload_bytes
            self._reply(packet, PacketType.ACK)
            for hook in self.data_delivery_hooks:
                hook(ctx, packet)
            return
        # HALT/READY (unused by PM but harmless) and anything else.
        yield from super()._receive_one(packet)

    def _reply(self, packet: Packet, ptype: PacketType) -> None:
        self._control_outbox.append(Packet(
            ptype, src_node=self.nic.node_id, dst_node=packet.src_node,
            job_id=packet.job_id, ack_seq=packet.seq,
        ))
        self.wake()

    def _resend(self, packet: Packet):
        """Re-enqueue a nacked packet after a backoff."""
        yield self.sim.timeout(self.RESEND_BACKOFF)
        ctx = self._job_registry.get(packet.job_id)
        if ctx is None:
            raise ProtocolError(f"resend for unknown job {packet.job_id}")
        clone = Packet(
            PacketType.DATA, src_node=packet.src_node, dst_node=packet.dst_node,
            job_id=packet.job_id, src_rank=packet.src_rank,
            dst_rank=packet.dst_rank, payload_bytes=packet.payload_bytes,
            msg_id=packet.msg_id, frag_index=packet.frag_index,
            frag_count=packet.frag_count,
        )
        self.resends += 1
        while ctx.send_queue.is_full:
            yield ctx.send_queue.wait_space()
        ctx.send_queue.append(clone)
        self.wake()


class PMLibrary(FMLibrary):
    """Host library without credits: only queue space gates the sender."""

    def send(self, dst_rank: int, nbytes: int):
        ctx = self.context
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        if dst_rank == ctx.rank:
            raise ConfigError("PM does not support self-sends")
        dst_node = ctx.node_of_rank(dst_rank)
        cfg = self.config
        nfrags = cfg.packets_for(nbytes)
        msg_id = next(self._msg_ids)

        yield self.host.cpu.busy(cfg.host_msg_overhead)
        remaining = nbytes
        for index in range(nfrags):
            payload = min(remaining, cfg.payload_bytes)
            yield self.host.cpu.busy(cfg.host_packet_overhead + payload / cfg.pio_rate)
            while ctx.send_queue.is_full:
                yield ctx.send_queue.wait_space()
            ctx.send_queue.append(Packet(
                PacketType.DATA, src_node=ctx.node_id, dst_node=dst_node,
                job_id=ctx.job_id, src_rank=ctx.rank, dst_rank=dst_rank,
                payload_bytes=payload, msg_id=msg_id,
                frag_index=index, frag_count=nfrags,
            ))
            remaining -= payload
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def extract(self):
        """Consume one packet; no credit bookkeeping, no refills."""
        ctx = self.context
        cfg = self.config
        while True:
            packet = ctx.recv_queue.try_pop()
            if packet is not None:
                break
            yield ctx.recv_queue.wait_nonempty()
        yield self.host.cpu.busy(
            cfg.extract_packet_overhead + packet.payload_bytes / cfg.extract_copy_rate
        )
        key = (packet.src_rank, packet.msg_id)
        seen = self._reassembly.get(key, 0) + 1
        if seen < packet.frag_count:
            self._reassembly[key] = seen
            return None
        self._reassembly.pop(key, None)
        nbytes = (packet.frag_count - 1) * cfg.payload_bytes + packet.payload_bytes
        self.messages_received += 1
        self.bytes_received += nbytes
        from repro.fm.api import Message

        return Message(src_rank=packet.src_rank, nbytes=nbytes,
                       msg_id=packet.msg_id, completed_at=self.sim.now)


class PMEndpoint:
    """One rank under the PM transport."""

    def __init__(self, context: FMContext, library: PMLibrary,
                 firmware: PMFirmware):
        self.context = context
        self.library = library
        self.firmware = firmware

    @property
    def rank(self) -> int:
        return self.context.rank


class PMNetwork:
    """A bare network of PM-firmware nodes (mirror of fm.harness.FMNetwork)."""

    def __init__(self, sim: Simulator, num_nodes: int,
                 config: FMConfig = FMConfig(),
                 node_spec: NodeSpec = NodeSpec(), link: LinkSpec = LinkSpec()):
        if num_nodes < 1:
            raise ConfigError(f"need at least one node, got {num_nodes}")
        self.sim = sim
        self.config = config
        self.fabric = MyrinetFabric(sim, link)
        self.nodes: list[HostNode] = []
        self.firmwares: dict[int, PMFirmware] = {}
        for node_id in range(num_nodes):
            node = HostNode(sim, node_id, node_spec)
            self.nodes.append(node)
            self.fabric.register(node.nic)
            self.firmwares[node_id] = PMFirmware(sim, node.nic, self.fabric, config)

    def create_job(self, job_id: int, node_ids: Sequence[int],
                   policy: BufferPolicy = FullBuffer()) -> list[PMEndpoint]:
        rank_to_node = {rank: node for rank, node in enumerate(node_ids)}
        endpoints = []
        for rank, node_id in rank_to_node.items():
            ctx = FMContext.create(self.sim, node_id, job_id, rank, rank_to_node,
                                   self.config, policy)
            self.firmwares[node_id].install_context(ctx)
            lib = PMLibrary(self.nodes[node_id], self.firmwares[node_id], ctx)
            endpoints.append(PMEndpoint(ctx, lib, self.firmwares[node_id]))
        return endpoints

    def pm_flush(self, node_id: int):
        """PM's flush on one node: halt locally, drain outstanding acks.

        A generator returning the drain duration.
        """
        firmware = self.firmwares[node_id]
        start = self.sim.now
        firmware.nic.set_halt_bit()
        yield firmware.drain()
        return self.sim.now - start

    def pm_release(self, node_id: int) -> None:
        firmware = self.firmwares[node_id]
        firmware.nic.clear_halt_bit()
        firmware.wake()
