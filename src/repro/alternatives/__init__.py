"""Related-work ablations (paper Section 5).

The paper positions its flush-and-swap design against three contemporary
alternatives; each is implemented far enough to measure the trade-off it
embodies:

- :mod:`~repro.alternatives.share` — the SHARE scheduler's approach
  (Franke et al.): switch buffers on synchronised clocks *without*
  flushing the network, discarding packets that arrive for the wrong
  context.  The ablation quantifies what the flush protocol buys: under
  FM's credit flow control every discarded packet leaks a credit
  forever, and throughput wedges.
- :mod:`~repro.alternatives.pm_nack` — SCore-D / PM's approach (Hori et
  al.): acknowledgement/nack-based transport instead of credits, whose
  flush needs no control broadcast (just drain outstanding acks) but
  pays per-packet ack traffic at all times.
- :mod:`~repro.alternatives.coscheduling` — dynamic coscheduling
  (Sobalvarro et al.): no gang matrix at all; an arriving message
  triggers the scheduling of its destination process.
"""

from repro.alternatives.coscheduling import DemandScheduler
from repro.alternatives.pm_nack import PMEndpoint, PMFirmware, PMLibrary, PMNetwork
from repro.alternatives.share import ShareNodeDaemon

__all__ = [
    "DemandScheduler",
    "PMEndpoint",
    "PMFirmware",
    "PMLibrary",
    "PMNetwork",
    "ShareNodeDaemon",
]
