"""Dynamic coscheduling (Sobalvarro et al.), as an alternative to gangs.

"The idea here is that instead of using gang scheduling, processes will
be co-scheduled on the different nodes only if this is warranted by the
interactions between them.  This was implemented based on a modification
to FM so that incoming messages would trigger the scheduling of the
processes to which they are destined" (Section 5).

:class:`DemandScheduler` is a node-local scheduler with no global
coordination: resident (statically partitioned) contexts stay on the
NIC, one process runs at a time, and an arriving data packet for a
descheduled process requests a preemption in its favour after a
``wakeup_delay``.  A plain :class:`LocalRoundRobin` (uncoordinated
time-slicing per node) serves as the strawman baseline: without demand
wakeups, a sender's peer is usually descheduled and the credit window
stalls — which is exactly the pathology dynamic coscheduling fixes and
gang scheduling avoids by construction.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulingError
from repro.fm.firmware import LanaiFirmware
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.units import US


class LocalRoundRobin:
    """Uncoordinated per-node time-slicing of resident processes."""

    def __init__(self, sim: Simulator, quantum: float, phase: float = 0.0):
        if quantum <= 0:
            raise SchedulingError("quantum must be positive")
        self.sim = sim
        self.quantum = quantum
        self.phase = phase
        self._procs: dict[int, Process] = {}   # job_id -> process
        self._order: list[int] = []
        self._running: Optional[int] = None
        self.switches = 0
        self._driver = sim.process(self._run(), name="local-rr")

    def register(self, job_id: int, proc: Process) -> None:
        if job_id in self._procs:
            raise SchedulingError(f"job {job_id} already registered")
        self._procs[job_id] = proc
        self._order.append(job_id)
        if self._running is None:
            self._running = job_id
        else:
            proc.suspend()

    @property
    def running(self) -> Optional[int]:
        return self._running

    def _run(self):
        yield self.sim.timeout(self.phase)
        while True:
            yield self.sim.timeout(self.quantum)
            self._rotate()

    def _rotate(self) -> None:
        live = [j for j in self._order if self._procs[j].is_alive]
        if len(live) < 2:
            if live and self._running != live[0]:
                self._switch_to(live[0])
            return
        if self._running not in live:
            self._switch_to(live[0])
            return
        nxt = live[(live.index(self._running) + 1) % len(live)]
        if nxt != self._running:
            self._switch_to(nxt)

    def _switch_to(self, job_id: int) -> None:
        if self._running is not None and self._running in self._procs:
            current = self._procs[self._running]
            if current.is_alive:
                current.suspend()
        target = self._procs[job_id]
        if target.is_alive:
            target.resume()
        self._running = job_id
        self.switches += 1


class DemandScheduler(LocalRoundRobin):
    """Round-robin plus message-triggered wakeups.

    Attaching to a firmware's data-delivery hook, an arrival for a
    descheduled job schedules a preemption in its favour ``wakeup_delay``
    later (interrupt + OS scheduling cost).  Between arrivals the base
    round-robin keeps local fairness.
    """

    def __init__(self, sim: Simulator, quantum: float, phase: float = 0.0,
                 wakeup_delay: float = 100 * US):
        super().__init__(sim, quantum, phase)
        if wakeup_delay < 0:
            raise SchedulingError("wakeup_delay must be >= 0")
        self.wakeup_delay = wakeup_delay
        self.demand_wakeups = 0
        self._wakeup_pending = False

    def attach(self, firmware: LanaiFirmware) -> None:
        firmware.data_delivery_hooks.append(self._on_delivery)

    def _on_delivery(self, ctx, packet) -> None:
        job_id = ctx.job_id
        if job_id == self._running or job_id not in self._procs:
            return
        if not self._procs[job_id].is_alive:
            return
        if self._wakeup_pending:
            return
        self._wakeup_pending = True
        ev = self.sim.timeout(self.wakeup_delay)
        ev.add_callback(lambda _ev, j=job_id: self._demand_switch(j))

    def _demand_switch(self, job_id: int) -> None:
        self._wakeup_pending = False
        if job_id == self._running or job_id not in self._procs:
            return
        if not self._procs[job_id].is_alive:
            return
        self.demand_wakeups += 1
        self._switch_to(job_id)
