"""Valid-packet occupancy statistics (Figure 8).

The buffer-switch stage samples how many valid packets sit in the
outgoing context's send and receive queues; those samples already live in
:class:`~repro.metrics.counters.SwitchRecord`.  This module provides the
per-cluster-size summary the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.metrics.counters import SwitchRecord


@dataclass(frozen=True)
class OccupancySummary:
    """Mean/max occupancy over a set of switches."""

    samples: int
    mean_send: float
    mean_recv: float
    max_send: int
    max_recv: int


def summarize_occupancy(records: Sequence[SwitchRecord]) -> OccupancySummary:
    """Aggregate Figure 8's quantity over switch records with a real
    outgoing context."""
    meaningful = [r for r in records if r.out_job is not None]
    if not meaningful:
        return OccupancySummary(0, 0.0, 0.0, 0, 0)
    return OccupancySummary(
        samples=len(meaningful),
        mean_send=mean(r.out_send_valid for r in meaningful),
        mean_recv=mean(r.out_recv_valid for r in meaningful),
        max_send=max(r.out_send_valid for r in meaningful),
        max_recv=max(r.out_recv_valid for r in meaningful),
    )
