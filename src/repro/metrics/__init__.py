"""Measurement plumbing for the experiments.

- :mod:`~repro.metrics.counters` — per-stage context-switch timing
  records (the paper's Figures 7 and 9 are plots of these);
- :mod:`~repro.metrics.occupancy` — valid-packet samples at switch time
  (Figure 8);
- :mod:`~repro.metrics.bandwidth` — bandwidth aggregation following the
  paper's methodology (Figures 5 and 6).
"""

from repro.metrics.bandwidth import BandwidthSample, aggregate_bandwidth, per_job_bandwidth
from repro.metrics.counters import StageTimings, SwitchRecord, SwitchRecorder

__all__ = [
    "BandwidthSample",
    "StageTimings",
    "SwitchRecord",
    "SwitchRecorder",
    "aggregate_bandwidth",
    "per_job_bandwidth",
]
