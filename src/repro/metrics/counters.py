"""Context-switch stage timing records.

Each noded measures its three switch stages ("we measured each of the
three stages of the buffer switch algorithm") and deposits a
:class:`SwitchRecord` here.  Aggregations reproduce the paper's plots:
Figure 7/9 report per-stage cycle counts against cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Optional


@dataclass(frozen=True)
class SwitchRecord:
    """One node's measurements for one gang context switch."""

    node_id: int
    sequence: int            # global switch round number
    old_slot: int
    new_slot: int
    halt_seconds: float
    switch_seconds: float
    release_seconds: float
    out_job: Optional[int]
    in_job: Optional[int]
    out_send_valid: int      # Figure 8's send-queue occupancy sample
    out_recv_valid: int      # Figure 8's receive-queue occupancy sample
    algorithm: str
    started_at: float

    @property
    def total_seconds(self) -> float:
        return self.halt_seconds + self.switch_seconds + self.release_seconds

    def cycles(self, clock_hz: float = 200e6) -> "StageTimings":
        return StageTimings(
            halt=int(round(self.halt_seconds * clock_hz)),
            switch=int(round(self.switch_seconds * clock_hz)),
            release=int(round(self.release_seconds * clock_hz)),
        )


@dataclass(frozen=True)
class StageTimings:
    """Per-stage cycle counts, the unit of Figures 7 and 9."""

    halt: int
    switch: int
    release: int

    @property
    def total(self) -> int:
        return self.halt + self.switch + self.release


class SwitchRecorder:
    """Cluster-wide collection of switch records."""

    def __init__(self):
        self.records: list[SwitchRecord] = []

    def add(self, record: SwitchRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def for_node(self, node_id: int) -> list[SwitchRecord]:
        return [r for r in self.records if r.node_id == node_id]

    def for_sequence(self, sequence: int) -> list[SwitchRecord]:
        return [r for r in self.records if r.sequence == sequence]

    def with_outgoing_job(self) -> list[SwitchRecord]:
        """Records where a context was actually switched out (Figure 8
        samples only meaningful when a job occupied the outgoing slot)."""
        return [r for r in self.records if r.out_job is not None]

    def mean_stage_seconds(self) -> tuple[float, float, float]:
        """(halt, switch, release) means across all records."""
        if not self.records:
            return (0.0, 0.0, 0.0)
        return (
            mean(r.halt_seconds for r in self.records),
            mean(r.switch_seconds for r in self.records),
            mean(r.release_seconds for r in self.records),
        )

    def mean_stage_cycles(self, clock_hz: float = 200e6) -> StageTimings:
        halt, switch, release = self.mean_stage_seconds()
        return StageTimings(
            halt=int(round(halt * clock_hz)),
            switch=int(round(switch * clock_hz)),
            release=int(round(release * clock_hz)),
        )

    def mean_occupancy(self) -> tuple[float, float]:
        """(send, recv) mean valid packets at switch-out (Figure 8)."""
        records = self.with_outgoing_job()
        if not records:
            return (0.0, 0.0)
        return (
            mean(r.out_send_valid for r in records),
            mean(r.out_recv_valid for r in records),
        )

    def publish(self, registry, prefix: str = "switch") -> None:
        """Fold the records into a telemetry MetricsRegistry.

        Stage timings become histograms (full distributions, not just the
        means the figures report); occupancy samples only count switches
        that actually moved a context, mirroring :meth:`mean_occupancy`.
        """
        registry.counter(f"{prefix}.count").inc(len(self.records))
        halt = registry.histogram(f"{prefix}.halt_seconds")
        swap = registry.histogram(f"{prefix}.swap_seconds")
        release = registry.histogram(f"{prefix}.release_seconds")
        send_occ = registry.histogram(f"{prefix}.out_send_valid")
        recv_occ = registry.histogram(f"{prefix}.out_recv_valid")
        for rec in self.records:
            halt.observe(rec.halt_seconds)
            swap.observe(rec.switch_seconds)
            release.observe(rec.release_seconds)
            if rec.out_job is not None:
                send_occ.observe(rec.out_send_valid)
                recv_occ.observe(rec.out_recv_valid)
