"""Bandwidth accounting, following the paper's methodology.

Figure 5: a single application, point-to-point bandwidth = bytes received
over the interval between the first send and the last receive.

Figure 6: several gang-scheduled applications.  "To obtain the overall
bandwidth achievable in the system, we multiplied the average bandwidth
achieved by the benchmark applications, by the number of applications
running simultaneously.  This compensated for the fact that each
application was effectively using only a fraction of it's elapsed
runtime."
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.units import mb_per_second


@dataclass(frozen=True)
class BandwidthSample:
    """One application's measured transfer."""

    job_id: int
    payload_bytes: int
    started_at: float
    finished_at: float

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mbps(self) -> float:
        """Decimal MB/s over the application's wall-clock interval."""
        return mb_per_second(self.payload_bytes, self.elapsed)


def per_job_bandwidth(samples: Sequence[BandwidthSample]) -> list[float]:
    return [s.mbps for s in samples]


def aggregate_bandwidth(samples: Sequence[BandwidthSample]) -> float:
    """The paper's Figure 6 statistic: mean per-app MB/s x number of apps."""
    if not samples:
        return 0.0
    return mean(s.mbps for s in samples) * len(samples)
