"""repro — reproduction of Etsion & Feitelson, IPPS 2001.

"User-Level Communication in a System with Gang Scheduling": a
discrete-event simulation of the ParPar cluster, the FM user-level
messaging library over Myrinet, and the paper's contribution — swapping
the full communication buffers at each gang-scheduling context switch
instead of statically partitioning them among contexts.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

__version__ = "1.0.0"
