"""Retry/timeout/backoff reliability layer for the FM firmware.

Generalises the PM transport's nack-driven resend
(:mod:`repro.alternatives.pm_nack`) into a *pluggable* reliability
layer: :class:`ReliableFirmware` is a thin driver that owns the
protocol-safety machinery, while a
:class:`~repro.faults.strategies.base.ReliabilityStrategy` decides when
to acknowledge, what an acknowledgement means, and when to retransmit.
Four strategies ship in :mod:`repro.faults.strategies`; the default,
``per-packet``, reproduces the original hardwired behaviour — positive
acks per packet with fixed exponential backoff — bit-for-bit.

Driver-owned machinery, which no strategy can break (the paper's
protocol stack depends on it):

- **Pristine copies**: the sender keeps a host-side copy of every
  outstanding DATA packet; retransmit clones are rebuilt from it,
  CRC-clean even if the queued original was corrupted in SRAM.
- **Flow control**: a retransmitted clone carries the same
  ``piggyback_refill`` as the original, but dedup-by-seq guarantees the
  refill is applied exactly once — which is precisely why
  ``CreditState.on_refill`` can keep treating overflow as a protocol
  error (see its docstring).
- **Buffer switching**: a retransmit that falls due while the context is
  STORED is *parked* rather than appended to the stored send queue —
  appending would change the queue contents behind the backing store's
  fingerprint and trip the integrity check.  Parked packets drain when
  the context is next installed.
- **Flush protocol**: acks and nacks travel through the firmware control
  outbox (like HALT/READY they bypass the halt bit), so a halted node
  can still settle its peers' timers; retransmit clones go through the
  ordinary send queue and therefore honour the halt bit.
- **Channel sequencing**: the driver stamps each first transmission with
  a contiguous per-channel ``rel_seq`` so cumulative/selective
  strategies can reason about prefixes and gaps without trusting the
  process-global ``seq`` counter.
- **Teardown**: ``power_off`` and ``forget_job`` clear reliability and
  strategy state (timers included) so dead peers and finished jobs
  never leak timers or phantom outstanding counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ConfigError
from repro.fm.context import ContextState
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.units import MS, US


@dataclass(frozen=True)
class RetransmitPolicy:
    """Ack-timeout schedule: ``timeout * backoff**(attempt-1)``, capped.

    All durations are simulated seconds (the codebase's universal time
    unit); the defaults are expressed through the :mod:`repro.units`
    constants so the base and the cap visibly share a unit system.
    """

    timeout: float = 2000 * US     # base ack timeout (covers RTT + queueing)
    backoff: float = 2.0           # exponential growth per retry
    max_timeout: float = 50 * MS   # cap on any single wait
    max_retries: int = 10          # transmissions before declaring the peer dead

    def __post_init__(self):
        if self.timeout <= 0.0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")
        if self.max_timeout < self.timeout:
            # The historical unit bug: a cap quoted in the wrong unit
            # lands below the base and silently flattens the ladder.
            raise ConfigError(
                f"max_timeout ({self.max_timeout}) below the base timeout "
                f"({self.timeout}) — check the units (seconds everywhere)")
        if self.max_retries < 1:
            raise ConfigError(
                f"max_retries must be >= 1, got {self.max_retries}")

    def timeout_for(self, attempt: int) -> float:
        """Ack timeout after the ``attempt``-th transmission (1-based)."""
        t = self.timeout * self.backoff ** (attempt - 1)
        return t if t < self.max_timeout else self.max_timeout


class _Outstanding:
    """Sender-side record of one unacked DATA packet."""

    __slots__ = ("packet", "attempts", "rel_seq", "sent_at")

    def __init__(self, packet: Packet):
        self.packet = packet   # pristine host-side copy (never corrupted)
        self.attempts = 0      # transmissions so far
        self.rel_seq = -1      # contiguous per-channel sequence number
        self.sent_at = 0.0     # sim time of the latest transmission


class ReliableFirmware(LanaiFirmware):
    """LANai control program with strategy-driven acks and retransmission."""

    def __init__(self, *args, retransmit: Optional[RetransmitPolicy] = None,
                 strategy: Union[str, object, None] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.policy = retransmit if retransmit is not None else RetransmitPolicy()
        self.strategy = self._resolve_strategy(strategy)
        self.strategy.bind(self)
        self._unacked: dict[int, _Outstanding] = {}  # seq -> record
        self._seen: set[int] = set()                 # seqs accepted here
        self._piggybacked: set[int] = set()          # seqs whose refill applied
        self._parked: dict[int, list[Packet]] = {}   # job_id -> due retransmits
        # per-channel rel_seq machinery: (job_id, peer) keys
        self._by_channel: dict[tuple, dict[int, int]] = {}  # rel_seq -> seq
        self._next_rel: dict[tuple, int] = {}
        # strategy timers: tag -> epoch (a fired/cancelled tag goes stale)
        self._timers: dict = {}
        self._timer_serial = 0
        self._pending: list[int] = []   # retransmit requests awaiting requeue
        # statistics / audit feeds
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.nacks_sent = 0
        self.nacks_received = 0
        self.dup_discards = 0
        self.corrupt_discards = 0
        self.unreachable_discards = 0   # DATA for a non-active context
        self.permanent_losses = 0       # gave up after max_retries
        self.zombies_purged = 0         # released clones swept at job teardown
        #: seqs this node ever retransmitted — the auditor excuses FIFO
        #: reordering for exactly these (plus the injector's faulted set).
        self.retransmitted_seqs: set[int] = set()

    def _resolve_strategy(self, strategy):
        from repro.faults.strategies import make_strategy

        if strategy is None:
            from repro.faults.strategies import DEFAULT_STRATEGY
            return make_strategy(DEFAULT_STRATEGY, self.policy)
        if isinstance(strategy, str):
            return make_strategy(strategy, self.policy)
        if callable(strategy):
            return strategy(self.policy)
        # A ready-made instance: single-NIC rigs only — strategy state is
        # per-card, so sharing one instance across firmwares is a bug.
        return strategy

    # ================================================================== the
    # driver services strategies are allowed to call (see strategies/base.py)
    @property
    def node_id(self) -> int:
        return self.nic.node_id

    def now(self) -> float:
        return self.sim.now

    def start_timer(self, tag, delay: float, name: Optional[str] = None) -> None:
        """Arm (or re-arm) ``tag``: ``strategy.on_timer(tag)`` after ``delay``.

        Re-arming stales the previous timer for the same tag; stale
        timers wake and return without calling the strategy, so an
        already-scheduled kernel event is never a correctness hazard.
        """
        self._timer_serial += 1
        epoch = self._timer_serial
        self._timers[tag] = epoch
        self.sim.process(self._timer_proc(tag, epoch, delay),
                         name=name or f"reltimer-{self.nic.node_id}")

    def cancel_timer(self, tag) -> None:
        self._timers.pop(tag, None)

    def _timer_proc(self, tag, epoch: int, delay: float):
        yield self.sim.timeout(delay)
        if self._dead or self._timers.get(tag) != epoch:
            return  # cancelled, re-armed, or the card died
        del self._timers[tag]
        self.strategy.on_timer(tag)
        if self._pending:
            yield from self._drain_pending()

    def emit_ack(self, dst_node: int, job_id: int, ack_seq: int) -> None:
        """Queue an ACK through the halt-exempt control outbox."""
        self._control_outbox.append(Packet(
            PacketType.ACK, src_node=self.nic.node_id,
            dst_node=dst_node, job_id=job_id, ack_seq=ack_seq,
        ))
        self.acks_sent += 1
        self.wake()

    def emit_nack(self, dst_node: int, job_id: int, rel_seq: int) -> None:
        """Queue a NACK naming a missing ``rel_seq`` (halt-exempt)."""
        self._control_outbox.append(Packet(
            PacketType.NACK, src_node=self.nic.node_id,
            dst_node=dst_node, job_id=job_id, ack_seq=rel_seq,
        ))
        self.nacks_sent += 1
        self.wake()

    def outstanding_entry(self, seq: int) -> Optional[_Outstanding]:
        return self._unacked.get(seq)

    def seq_for(self, job_id: int, peer: int, rel_seq: int) -> Optional[int]:
        """Global seq of an outstanding (channel, rel_seq), if any."""
        channel = self._by_channel.get((job_id, peer))
        return channel.get(rel_seq) if channel is not None else None

    def channel_outstanding(self, job_id: int, peer: int) -> dict:
        """Outstanding rel_seq -> seq for one channel (read-only view)."""
        return self._by_channel.get((job_id, peer), {})

    def release(self, seq: int) -> Optional[_Outstanding]:
        """Free one acked entry (no-op for unknown/stale seqs)."""
        entry = self._unacked.pop(seq, None)
        if entry is not None:
            self._unlink(entry)
        return entry

    def release_through(self, job_id: int, peer: int, rel_seq: int) -> int:
        """Free every outstanding entry on the channel with
        ``rel_seq <= rel_seq`` (cumulative-ack semantics); returns the
        number freed."""
        channel = self._by_channel.get((job_id, peer))
        if not channel:
            return 0
        freed = [r for r in channel if r <= rel_seq]
        for rel in freed:
            self._unacked.pop(channel.pop(rel), None)
        return len(freed)

    def request_retransmit(self, seq: int) -> None:
        """Ask the driver to resend ``seq`` from the pristine copy.

        Deferred: the requeue can block on send-queue space, so it runs
        in whichever process context the driver drains from (the timer
        process, or a spawned drain after a receive-side request) —
        never inline in the firmware's main loop.
        """
        self._pending.append(seq)

    def request_give_up(self, seq: int) -> None:
        """Abandon an entry: permanent loss, peer flagged as dead-looking."""
        entry = self._unacked.pop(seq, None)
        if entry is None:
            return
        self._unlink(entry)
        self.permanent_losses += 1
        if self.tracer:
            self.tracer.record("rto-give-up", **self._trace_fields(
                seq=seq, job=entry.packet.job_id, attempts=entry.attempts))
        self.strategy.on_peer_dead(entry.packet.dst_node)

    # ================================================================== send side
    def _unlink(self, entry: _Outstanding) -> None:
        channel = self._by_channel.get(
            (entry.packet.job_id, entry.packet.dst_node))
        if channel is not None:
            channel.pop(entry.rel_seq, None)

    def _trace_fields(self, **fields) -> dict:
        # The default strategy keeps the v1 record layout byte-for-byte;
        # the others tag their records so retransmit-epoch spans carry
        # the strategy name.
        from repro.faults.strategies import DEFAULT_STRATEGY
        name = self.strategy.name
        if name != DEFAULT_STRATEGY:
            fields["strategy"] = name
        fields["node"] = self.nic.node_id
        return fields

    def _inject(self, packet: Packet, pickup_time: float = 0.0):
        if packet.ptype is PacketType.DATA:
            entry = self._unacked.get(packet.seq)
            if entry is None:
                entry = _Outstanding(packet)
                if packet.rel_seq < 0:
                    # First transmission: stamp the per-channel rel_seq
                    # (clones keep the original's, and a zombie clone of
                    # an already-released seq must not claim a fresh one).
                    key = (packet.job_id, packet.dst_node)
                    packet.rel_seq = self._next_rel.get(key, 0)
                    self._next_rel[key] = packet.rel_seq + 1
                entry.rel_seq = packet.rel_seq
                self._unacked[packet.seq] = entry
                self._by_channel.setdefault(
                    (packet.job_id, packet.dst_node), {})[packet.rel_seq] \
                    = packet.seq
            entry.attempts += 1
            entry.sent_at = self.sim.now
            self.strategy.on_data_sent(entry)
        yield from super()._inject(packet, pickup_time)

    def _drain_pending(self):
        """Execute queued retransmit requests (blocking-safe context only)."""
        while self._pending:
            seq = self._pending.pop(0)
            entry = self._unacked.get(seq)
            if entry is None:
                continue  # released while the request waited
            self.retransmits += 1
            self.retransmitted_seqs.add(seq)
            if self.tracer:
                self.tracer.record("rto-retransmit", **self._trace_fields(
                    seq=seq, job=entry.packet.job_id,
                    attempt=entry.attempts + 1))
            # A fresh clone: same seq (dedup key) and payload, CRC-clean
            # even if the queued original was corrupted in SRAM.
            # dataclasses.replace re-runs __post_init__, recomputing
            # size_bytes.
            yield from self._requeue(replace(entry.packet, corrupted=False))

    def _requeue(self, packet: Packet):
        """Put a retransmit clone back on the send path.

        Appends to the context's send queue when the context is installed
        and active; parks it otherwise (see module docstring).
        """
        ctx = self._contexts.get(packet.job_id)
        if ctx is None or ctx.state is not ContextState.ACTIVE:
            self._parked.setdefault(packet.job_id, []).append(packet)
            return
        while ctx.send_queue.is_full:
            yield ctx.send_queue.wait_space()
            ctx = self._contexts.get(packet.job_id)
            if ctx is None or ctx.state is not ContextState.ACTIVE:
                self._parked.setdefault(packet.job_id, []).append(packet)
                return
        ctx.send_queue.append(packet)
        self.wake()

    def install_context(self, ctx) -> None:
        super().install_context(ctx)
        parked = self._parked.pop(ctx.job_id, None)
        if parked:
            self.sim.process(self._drain_parked(parked),
                             name=f"rto-unpark-{self.nic.node_id}-j{ctx.job_id}")
        self.strategy.on_context_installed(ctx.job_id)

    def remove_context(self, ctx) -> None:
        super().remove_context(ctx)
        self.strategy.on_context_stored(ctx.job_id)

    def _drain_parked(self, parked: list):
        for packet in parked:
            yield from self._requeue(packet)

    def power_off(self) -> None:
        """Fail-stop: reliability state is host/SRAM resident and dies too.

        A restarted node comes back with no memory of what it had sent or
        seen — its peers' retransmit timers (running on *their* cards)
        are the only recovery state that survives.  ``retransmitted_seqs``
        is kept: it is audit metadata about history, not device state.
        Timers die with the card (``_timer_proc`` checks ``_dead`` and
        the cleared epoch table), so a dead peer never runs a strategy
        hook — the no-orphaned-timers property the recovery tests pin.
        """
        super().power_off()
        self._unacked.clear()
        self._parked.clear()
        self._seen.clear()
        self._piggybacked.clear()
        self._by_channel.clear()
        self._next_rel.clear()
        self._timers.clear()
        self._pending.clear()
        self.strategy.on_power_off()

    def forget_job(self, job_id: int) -> None:
        """Connection teardown: cancel reliability state for a dead job.

        A finished job has extracted every message it ever sent, so any
        still-unacked entry is a zombie (its ack was lost after delivery)
        — retransmitting it to peers that are also tearing down would
        leave permanently parked clones and phantom ``outstanding``
        counts at quiescence.  Real loss cannot hide here: the invariant
        auditor checks delivery from its own taps, not from this table.
        """
        ctx = self._job_registry.get(job_id)
        super().forget_job(job_id)
        stale = [seq for seq, entry in self._unacked.items()
                 if entry.packet.job_id == job_id]
        for seq in stale:
            del self._unacked[seq]
        if ctx is not None:
            # Zombie clones: retransmit copies (rel_seq stamped => already
            # transmitted once) still queued after their ack released the
            # entry.  The dead context will never drain its queue again,
            # and each clone double-counts its committed credit and its
            # piggyback refill against the conservation audit — the
            # original already delivered both.
            self.zombies_purged += ctx.send_queue.purge(
                lambda p: (p.ptype is PacketType.DATA and p.rel_seq >= 0
                           and p.seq not in self._unacked))
        self._parked.pop(job_id, None)
        for key in [k for k in self._by_channel if k[0] == job_id]:
            del self._by_channel[key]
        for key in [k for k in self._next_rel if k[0] == job_id]:
            del self._next_rel[key]
        self.strategy.on_job_forgotten(job_id)

    # ================================================================== receive side
    def _receive_one(self, packet: Packet):
        # (Per-packet processing time is slept by the caller, as in the
        # base class.)
        self.packets_received += 1
        if packet.corrupted:
            # Failed CRC: discard without acknowledgement; the sender's
            # timer recovers it from the pristine host-side copy.
            self.corrupt_discards += 1
            if self.tracer:
                self.tracer.record("pkt-crc-discard", node=self.nic.node_id,
                                   seq=packet.seq, job=packet.job_id)
            return

        ptype = packet.ptype
        if ptype is PacketType.ACK or ptype is PacketType.NACK:
            if ptype is PacketType.ACK:
                self.acks_received += 1
            else:
                self.nacks_received += 1
            self.strategy.on_ack_like_received(packet)
            if self._pending:
                # NACK-triggered resends may block on queue space: drain
                # in a fresh process, never in the receive loop (waiting
                # for send-queue space *inside* the loop that frees it
                # would deadlock the card).
                self.sim.process(self._drain_pending(),
                                 name=f"rel-resend-{self.nic.node_id}")
            return
        if ptype is not PacketType.DATA:
            self.packets_received -= 1  # super() recounts it
            yield from super()._receive_one(packet)
            return

        seq = packet.seq
        if seq in self._seen:
            # Switch-level duplicate, or a retransmit whose original made
            # it (the ack was lost).  Either way: discard, but let the
            # strategy settle the sender's timer.
            self.dup_discards += 1
            self.strategy.on_data_received(packet, duplicate=True)
            if self.tracer:
                self.tracer.record("pkt-dup-discard", node=self.nic.node_id,
                                   seq=seq, job=packet.job_id)
            return
        ctx = self._contexts.get(packet.job_id)
        if ctx is None or ctx.state is not ContextState.ACTIVE:
            # Not an error under faults: withhold the ack and let the
            # sender recover once the context is back.
            self.unreachable_discards += 1
            return
        if packet.piggyback_refill and seq not in self._piggybacked:
            # Applied at most once per seq.  The dedup-by-_seen check
            # above is NOT enough: a copy can clear it, apply the
            # refill, then get discarded during the DMA wait below
            # (context swapped out mid-transfer) without ever reaching
            # ``_seen.add`` — the retransmit copy would then refill the
            # same credits a second time and corrupt flow control.
            self._piggybacked.add(seq)
            self._delayed_credit(ctx, packet.src_node, packet.piggyback_refill)
        yield self.nic.dma.request(packet.size_bytes)
        if ctx.state is not ContextState.ACTIVE:
            self.unreachable_discards += 1
            return
        self._seen.add(seq)
        ctx.recv_queue.append(packet)
        ctx.stats.packets_received += 1
        ctx.stats.bytes_received += packet.payload_bytes
        tracer = self.tracer
        if tracer and tracer.wants("pkt-deliver"):
            tracer.record("pkt-deliver", node=self.nic.node_id,
                          src=packet.src_node, seq=seq, job=packet.job_id,
                          msg=packet.msg_id)
        self.strategy.on_data_received(packet, duplicate=False)
        for hook in self.data_delivery_hooks:
            hook(ctx, packet)

    # ================================================================== inspection
    @property
    def outstanding(self) -> int:
        """Unacked DATA packets (sender side)."""
        return len(self._unacked)

    def parked_count(self) -> int:
        return sum(len(v) for v in self._parked.values())

    def active_timers(self) -> int:
        """Strategy timers armed and not yet fired/cancelled/power-cycled."""
        return len(self._timers)

    def strategy_stats(self) -> dict:
        """The bound strategy's deterministic counters (may be empty)."""
        return self.strategy.stats()
