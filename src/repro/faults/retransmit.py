"""Retry/timeout/backoff reliability layer for the FM firmware.

Generalises the PM transport's nack-driven resend
(:mod:`repro.alternatives.pm_nack`) into the positive-ack form a lossy
network needs: the sending NIC keeps a host-side copy of every
outstanding DATA packet and an exponential-backoff ack timer; the
receiving NIC acks every accepted packet, discards corrupted ones
silently (a failed CRC), and deduplicates by sequence number so that
switch-level duplicates and spurious retransmits (a lost ack) never
reach the application twice.

Interplay with the paper's machinery, which this layer must not break:

- **Flow control**: a retransmitted clone carries the same
  ``piggyback_refill`` as the original, but dedup-by-seq guarantees the
  refill is applied exactly once — which is precisely why
  ``CreditState.on_refill`` can keep treating overflow as a protocol
  error (see its docstring).
- **Buffer switching**: a retransmit that falls due while the context is
  STORED is *parked* rather than appended to the stored send queue —
  appending would change the queue contents behind the backing store's
  fingerprint and trip the integrity check.  Parked packets drain when
  the context is next installed.
- **Flush protocol**: acks travel through the firmware control outbox
  (like HALT/READY they bypass the halt bit), so a halted node can still
  settle its peers' timers; retransmit clones go through the ordinary
  send queue and therefore honour the halt bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.fm.context import ContextState
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.units import US


@dataclass(frozen=True)
class RetransmitPolicy:
    """Ack-timeout schedule: ``timeout * backoff**(attempt-1)``, capped."""

    timeout: float = 2000 * US     # base ack timeout (covers RTT + queueing)
    backoff: float = 2.0           # exponential growth per retry
    max_timeout: float = 0.05      # cap on any single wait
    max_retries: int = 10          # transmissions before declaring the peer dead

    def timeout_for(self, attempt: int) -> float:
        """Ack timeout after the ``attempt``-th transmission (1-based)."""
        t = self.timeout * self.backoff ** (attempt - 1)
        return t if t < self.max_timeout else self.max_timeout


class _Outstanding:
    """Sender-side record of one unacked DATA packet."""

    __slots__ = ("packet", "attempts", "epoch")

    def __init__(self, packet: Packet):
        self.packet = packet   # pristine host-side copy (never corrupted)
        self.attempts = 0      # transmissions so far
        self.epoch = 0         # bumped per retransmit; stales old timers


class ReliableFirmware(LanaiFirmware):
    """LANai control program with positive acks and retransmission."""

    def __init__(self, *args, retransmit: Optional[RetransmitPolicy] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.policy = retransmit if retransmit is not None else RetransmitPolicy()
        self._unacked: dict[int, _Outstanding] = {}  # seq -> record
        self._seen: set[int] = set()                 # seqs accepted here
        self._parked: dict[int, list[Packet]] = {}   # job_id -> due retransmits
        # statistics / audit feeds
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.dup_discards = 0
        self.corrupt_discards = 0
        self.unreachable_discards = 0   # DATA for a non-active context
        self.permanent_losses = 0       # gave up after max_retries
        #: seqs this node ever retransmitted — the auditor excuses FIFO
        #: reordering for exactly these (plus the injector's faulted set).
        self.retransmitted_seqs: set[int] = set()

    # ------------------------------------------------------------------ send side
    def _inject(self, packet: Packet, pickup_time: float = 0.0):
        if packet.ptype is PacketType.DATA:
            entry = self._unacked.get(packet.seq)
            if entry is None:
                entry = _Outstanding(packet)
                self._unacked[packet.seq] = entry
            entry.attempts += 1
            self.sim.process(
                self._ack_timer(packet.seq, entry.epoch,
                                self.policy.timeout_for(entry.attempts)),
                name=f"rto-{self.nic.node_id}-s{packet.seq}")
        yield from super()._inject(packet, pickup_time)

    def _ack_timer(self, seq: int, epoch: int, timeout: float):
        yield self.sim.timeout(timeout)
        entry = self._unacked.get(seq)
        if entry is None or entry.epoch != epoch:
            return  # acked, or a newer transmission owns the timer
        if entry.attempts >= self.policy.max_retries:
            del self._unacked[seq]
            self.permanent_losses += 1
            if self.tracer:
                self.tracer.record("rto-give-up", node=self.nic.node_id,
                                   seq=seq, job=entry.packet.job_id,
                                   attempts=entry.attempts)
            return
        entry.epoch += 1
        self.retransmits += 1
        self.retransmitted_seqs.add(seq)
        if self.tracer:
            self.tracer.record("rto-retransmit", node=self.nic.node_id,
                               seq=seq, job=entry.packet.job_id,
                               attempt=entry.attempts + 1)
        # A fresh clone: same seq (dedup key) and payload, CRC-clean even
        # if the queued original was corrupted in SRAM.  dataclasses.replace
        # re-runs __post_init__, recomputing size_bytes.
        yield from self._requeue(replace(entry.packet, corrupted=False))

    def _requeue(self, packet: Packet):
        """Put a retransmit clone back on the send path.

        Appends to the context's send queue when the context is installed
        and active; parks it otherwise (see module docstring).
        """
        ctx = self._contexts.get(packet.job_id)
        if ctx is None or ctx.state is not ContextState.ACTIVE:
            self._parked.setdefault(packet.job_id, []).append(packet)
            return
        while ctx.send_queue.is_full:
            yield ctx.send_queue.wait_space()
            ctx = self._contexts.get(packet.job_id)
            if ctx is None or ctx.state is not ContextState.ACTIVE:
                self._parked.setdefault(packet.job_id, []).append(packet)
                return
        ctx.send_queue.append(packet)
        self.wake()

    def install_context(self, ctx) -> None:
        super().install_context(ctx)
        parked = self._parked.pop(ctx.job_id, None)
        if parked:
            self.sim.process(self._drain_parked(parked),
                             name=f"rto-unpark-{self.nic.node_id}-j{ctx.job_id}")

    def _drain_parked(self, parked: list):
        for packet in parked:
            yield from self._requeue(packet)

    def power_off(self) -> None:
        """Fail-stop: reliability state is host/SRAM resident and dies too.

        A restarted node comes back with no memory of what it had sent or
        seen — its peers' retransmit timers (running on *their* cards)
        are the only recovery state that survives.  ``retransmitted_seqs``
        is kept: it is audit metadata about history, not device state.
        """
        super().power_off()
        self._unacked.clear()
        self._parked.clear()
        self._seen.clear()

    def forget_job(self, job_id: int) -> None:
        """Connection teardown: cancel reliability state for a dead job.

        A finished job has extracted every message it ever sent, so any
        still-unacked entry is a zombie (its ack was lost after delivery)
        — retransmitting it to peers that are also tearing down would
        leave permanently parked clones and phantom ``outstanding``
        counts at quiescence.  Real loss cannot hide here: the invariant
        auditor checks delivery from its own taps, not from this table.
        """
        super().forget_job(job_id)
        stale = [seq for seq, entry in self._unacked.items()
                 if entry.packet.job_id == job_id]
        for seq in stale:
            del self._unacked[seq]
        self._parked.pop(job_id, None)

    # ------------------------------------------------------------------ receive side
    def _receive_one(self, packet: Packet):
        # (Per-packet processing time is slept by the caller, as in the
        # base class.)
        self.packets_received += 1
        if packet.corrupted:
            # Failed CRC: discard without acknowledgement; the sender's
            # timer recovers it from the pristine host-side copy.
            self.corrupt_discards += 1
            if self.tracer:
                self.tracer.record("pkt-crc-discard", node=self.nic.node_id,
                                   seq=packet.seq, job=packet.job_id)
            return

        ptype = packet.ptype
        if ptype is PacketType.ACK:
            self.acks_received += 1
            # Duplicated or stale acks are no-ops, not protocol errors.
            self._unacked.pop(packet.ack_seq, None)
            return
        if ptype is not PacketType.DATA:
            self.packets_received -= 1  # super() recounts it
            yield from super()._receive_one(packet)
            return

        seq = packet.seq
        if seq in self._seen:
            # Switch-level duplicate, or a retransmit whose original made
            # it (the ack was lost).  Either way: discard, but re-ack so
            # the sender's timer settles.
            self.dup_discards += 1
            self._send_ack(packet)
            if self.tracer:
                self.tracer.record("pkt-dup-discard", node=self.nic.node_id,
                                   seq=seq, job=packet.job_id)
            return
        ctx = self._contexts.get(packet.job_id)
        if ctx is None or ctx.state is not ContextState.ACTIVE:
            # Not an error under faults: withhold the ack and let the
            # sender retransmit once the context is back.
            self.unreachable_discards += 1
            return
        if packet.piggyback_refill:
            # Applied at most once per seq — dedup above makes the strict
            # overflow check in CreditState.on_refill safe.
            self._delayed_credit(ctx, packet.src_node, packet.piggyback_refill)
        yield self.nic.dma.request(packet.size_bytes)
        if ctx.state is not ContextState.ACTIVE:
            self.unreachable_discards += 1
            return
        self._seen.add(seq)
        ctx.recv_queue.append(packet)
        ctx.stats.packets_received += 1
        ctx.stats.bytes_received += packet.payload_bytes
        tracer = self.tracer
        if tracer and tracer.wants("pkt-deliver"):
            tracer.record("pkt-deliver", node=self.nic.node_id,
                          src=packet.src_node, seq=seq, job=packet.job_id,
                          msg=packet.msg_id)
        self._send_ack(packet)
        for hook in self.data_delivery_hooks:
            hook(ctx, packet)

    def _send_ack(self, packet: Packet) -> None:
        self._control_outbox.append(Packet(
            PacketType.ACK, src_node=self.nic.node_id,
            dst_node=packet.src_node, job_id=packet.job_id,
            ack_seq=packet.seq,
        ))
        self.acks_sent += 1
        self.wake()

    # ------------------------------------------------------------------ inspection
    @property
    def outstanding(self) -> int:
        """Unacked DATA packets (sender side)."""
        return len(self._unacked)

    def parked_count(self) -> int:
        return sum(len(v) for v in self._parked.values())
