"""Chaos campaigns: gang-scheduled all-to-all under injected faults.

One :func:`run_chaos_point` stands up a full ParPar cluster with the
fault injector and the reliability layer enabled, runs gang-scheduled
all-to-all jobs to completion, lets the retransmit timers settle, and
returns a JSON-ready report: injected-fault counters, reliability-layer
statistics, and the :class:`~repro.faults.audit.InvariantAuditor`'s
verdict on the paper's no-loss/no-duplication/FIFO claim.

Every point is hermetic (fresh Simulator, seed-derived RNG streams) and
the report carries counts only, so a campaign fanned out with
:func:`~repro.experiments.common.run_points` is bit-identical to a
serial run — the property ``tests/test_determinism.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError, SimulationError
from repro.experiments.common import point_seed, run_points
from repro.faults.audit import InvariantAuditor
from repro.faults.model import FailStop, FaultSpec
from repro.faults.retransmit import RetransmitPolicy
from repro.faults.strategies import DEFAULT_STRATEGY
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec, JobState
from repro.sim.rand import RandomStreams
from repro.units import US
from repro.workloads.alltoall import alltoall_benchmark


@dataclass(frozen=True)
class ChaosPoint:
    """One chaos run's full parameterisation (plain data, picklable)."""

    seed: int = 0
    nodes: int = 4
    time_slots: int = 2
    jobs: int = 2
    quantum: float = 0.004
    rounds: int = 30
    message_bytes: int = 1024
    # fault model
    drop: float = 0.0
    dup: float = 0.0
    corrupt: float = 0.0
    jitter: float = 0.0
    jitter_max: float = 20 * US
    sram: float = 0.0          # SRAM flips per second per node
    stall: float = 0.0         # per-switch daemon stall probability
    crash: float = 0.0         # per-switch daemon crash probability
    #: fail-stop node deaths.  Jobs shrink to ``nodes // 2`` ranks and
    #: the corpses are drawn from the upper half of the node range, so
    #: lower-half jobs survive and keep rotating through the recovery.
    #: Kill times are seed-drawn from [3, 8] quanta; with ``rejoin`` each
    #: corpse restarts 5 quanta after its death and reintegrates.
    failstops: int = 0
    rejoin: bool = False
    #: failure policy for every job: requeue on a fresh allocation
    #: instead of killing (falls back to kill when allocation fails).
    requeue: bool = False
    audit: bool = True
    #: ACK/NACK strategy name (see ``repro.faults.strategies``).  The
    #: default keeps the report byte-identical to the pre-strategy
    #: layout; any other name adds ``"strategy"`` and NACK/strategy
    #: counters to the report.
    strategy: str = DEFAULT_STRATEGY
    #: post-completion drain time for ack timers and zombie retransmits
    settle: float = 0.2
    #: attach the unified telemetry layer; the report gains a
    #: ``"telemetry"`` snapshot (audit verdict included via
    #: AuditReport.publish) without disturbing the existing keys.
    telemetry: bool = False

    def fault_spec(self) -> FaultSpec:
        return FaultSpec(drop_rate=self.drop, dup_rate=self.dup,
                         corrupt_rate=self.corrupt, jitter_rate=self.jitter,
                         jitter_max=self.jitter_max, sram_flip_rate=self.sram,
                         daemon_stall_rate=self.stall,
                         daemon_crash_rate=self.crash,
                         failstop=self.failstop_schedule())

    def job_width(self) -> int:
        """Ranks per job — halved under fail-stops so some jobs survive."""
        return self.nodes // 2 if self.failstops else self.nodes

    def failstop_schedule(self) -> tuple:
        """Seed-drawn fail-stop entries (hermetic per point, sorted)."""
        if not self.failstops:
            return ()
        pool = list(range(self.job_width(), self.nodes))
        if self.failstops > len(pool):
            raise ConfigError(
                f"failstops={self.failstops} exceeds the expendable upper "
                f"half of a {self.nodes}-node cluster ({len(pool)} nodes)")
        rng = RandomStreams(self.seed).stream("chaos-failstop")
        picks = sorted(int(i) for i in
                       rng.choice(len(pool), size=self.failstops,
                                  replace=False))
        entries = []
        for idx in picks:
            fail_at = float(rng.uniform(3 * self.quantum, 8 * self.quantum))
            rejoin_at = fail_at + 5 * self.quantum if self.rejoin else None
            entries.append(FailStop(pool[idx], fail_at, rejoin_at))
        return tuple(entries)


def run_chaos_point(point: ChaosPoint) -> dict:
    """Run one seeded chaos simulation and report (deterministically)."""
    faults = point.fault_spec()
    config = ClusterConfig(
        num_nodes=point.nodes,
        time_slots=point.time_slots,
        quantum=point.quantum,
        seed=point.seed,
        faults=faults,
        retransmit=RetransmitPolicy(),
        reliability_strategy=point.strategy,
        telemetry=point.telemetry,
    )
    cluster = ParParCluster(config)

    auditor = None
    if point.audit:
        auditor = InvariantAuditor()
        auditor.attach(g.firmware for g in cluster.glue)

    workload = alltoall_benchmark(rounds=point.rounds,
                                  message_bytes=point.message_bytes)
    width = point.job_width()
    capacity = point.time_slots * (point.nodes // width)
    njobs = min(point.jobs, capacity)
    policy = "requeue" if point.requeue else "kill"
    jobs = [cluster.submit(JobSpec(f"chaos-{i}", width, workload,
                                   on_failure=policy))
            for i in range(njobs)]

    error = None
    try:
        cluster.run_until_finished(jobs)
    except SimulationError as exc:
        # An invariant tripped mid-run (e.g. strict no-loss) — report the
        # falsification instead of dying; the audit still runs on
        # whatever state remains.
        error = str(exc)
    cluster.masterd.pause_rotation()
    cluster.run_for(point.settle)

    firmwares = [g.firmware for g in cluster.glue]
    reliability = {
        "retransmits": sum(fw.retransmits for fw in firmwares),
        "acks_sent": sum(fw.acks_sent for fw in firmwares),
        "acks_received": sum(fw.acks_received for fw in firmwares),
        "dup_discards": sum(fw.dup_discards for fw in firmwares),
        "corrupt_discards": sum(fw.corrupt_discards for fw in firmwares),
        "unreachable_discards": sum(fw.unreachable_discards for fw in firmwares),
        "permanent_losses": sum(fw.permanent_losses for fw in firmwares),
        "outstanding_unacked": sum(fw.outstanding for fw in firmwares),
        "parked": sum(fw.parked_count() for fw in firmwares),
        "sram_descriptor_hits": sum(g.firmware.nic.sram_faults
                                    for g in cluster.glue),
    }
    if point.strategy != DEFAULT_STRATEGY:
        # Strategy-specific keys only when a non-default strategy runs,
        # so the default report stays byte-identical to the v1 layout.
        reliability["nacks_sent"] = sum(fw.nacks_sent for fw in firmwares)
        reliability["nacks_received"] = sum(fw.nacks_received
                                            for fw in firmwares)
        strategy_stats: dict = {}
        for fw in firmwares:
            for key, value in fw.strategy_stats().items():
                strategy_stats[key] = strategy_stats.get(key, 0) + value
        reliability["strategy_stats"] = strategy_stats

    failed_ids = set(cluster.masterd.failed_jobs)
    # Requeued jobs that finished as a fresh incarnation get the full
    # audit under their new job_id; the failed originals are excused.
    audited_jobs = [j for j in jobs if j.job_id not in failed_ids]
    for job in jobs:
        if job.job_id not in failed_ids:
            continue
        final = cluster.masterd.resolve_job(job.job_id)
        if final.job_id not in failed_ids and final.state is JobState.FINISHED:
            audited_jobs.append(final)

    result = {
        "seed": point.seed,
        "nodes": point.nodes,
        "jobs": njobs,
        "rounds": point.rounds,
        "message_bytes": point.message_bytes,
        "injected": cluster.fault_injector.counters()
        if cluster.fault_injector is not None else {},
        "reliability": reliability,
        "recovery": (cluster.recovery_stats.counters()
                     if cluster.recovery_stats is not None else {}),
        "failed_jobs": len(failed_ids),
        "switches": len(cluster.recorder.records),
        "sim_seconds": cluster.sim.now,
        "events": cluster.sim.processed_events,
        "error": error,
    }
    if point.strategy != DEFAULT_STRATEGY:
        result["strategy"] = point.strategy

    if auditor is not None:
        excused = set()
        if cluster.fault_injector is not None:
            excused |= cluster.fault_injector.faulted_seqs
        for fw in firmwares:
            excused |= fw.retransmitted_seqs
        job_contexts = {}
        for job in audited_jobs:
            job_contexts[job.job_id] = {
                rank: cluster.nodeds[node_id].local_job(job.job_id).context
                for rank, node_id in job.rank_to_node.items()
            }
        fresh = [j for j in audited_jobs if j not in jobs]
        report = _audit_with_backings(
            auditor, cluster, jobs + fresh, excused, job_contexts,
            reliability["retransmits"], excused_jobs=failed_ids)
        result["audit"] = report.to_dict()
        if cluster.telemetry is not None:
            report.publish(cluster.telemetry.registry)

    if cluster.telemetry is not None:
        result["telemetry"] = cluster.telemetry_snapshot()
    return result


def _audit_with_backings(auditor, cluster, jobs, excused, job_contexts,
                         retransmits, excused_jobs=None):
    """Run the audit once per backing store with node-local contexts."""
    # The audit report's channel checks are global; only the backing
    # residual check needs per-node context maps.  Aggregate by running
    # the channel/credit checks once with all backings and a combined
    # job_id -> context map per node.
    violations = 0
    for node_id, glue in enumerate(cluster.glue):
        local = {}
        for job in jobs:
            for rank, jnode in job.rank_to_node.items():
                if jnode != node_id:
                    continue
                try:   # a job can die mid-load: no record on the corpse
                    local[job.job_id] = (
                        cluster.nodeds[node_id].local_job(job.job_id).context)
                except KeyError:
                    pass
        report = auditor.report(excused_seqs=excused,
                                backings=[glue.backing],
                                stored_contexts=local,
                                excused_jobs=excused_jobs)
        violations += report.backing_violations
    report = auditor.report(excused_seqs=excused, job_contexts=job_contexts,
                            retransmits=retransmits,
                            excused_jobs=excused_jobs)
    return replace(report, backing_violations=violations)


# ---------------------------------------------------------------------- campaign
def _chaos_worker(point: ChaosPoint) -> dict:
    """Module-level for pickling into the process pool."""
    return run_chaos_point(point)


def run_chaos_campaign(base: ChaosPoint, runs: int = 1,
                       workers: int = 1) -> list:
    """``runs`` independent chaos points, seeds derived hermetically.

    Each point's seed comes from :func:`point_seed` on the base seed and
    the run index, so adding/removing/parallelising runs never changes
    any other run's stream.
    """
    points = [replace(base, seed=point_seed(base.seed, f"chaos:run={i}"))
              for i in range(runs)]
    return run_points(_chaos_worker, points, workers=workers)
