"""Deterministic fault injection.

One :class:`FaultInjector` serves a whole cluster.  It plugs into three
layers:

- **fabric** (``MyrinetFabric.fault_injector``): :meth:`on_transmit` is
  consulted once per packet and decides drop / duplicate / corrupt /
  jitter from a single named RNG stream;
- **NIC** (:meth:`sram_flip_process`): a per-node Poisson process flips a
  bit in a queued send descriptor (``MyrinetNIC.corrupt_descriptor``);
- **noded** (:meth:`daemon_disruption`): per-switch stall or
  crash-restart decisions.

Every draw comes from a named substream of one
:class:`~repro.sim.rand.RandomStreams`, and draws happen in simulation
event order, so a campaign is bit-reproducible from its seed — the
foundation of the ``-j1`` vs ``-jN`` determinism guarantee.
Every injected fault is recorded through :mod:`repro.sim.trace`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.faults.model import FaultSpec
from repro.fm.packet import Packet, PacketType
from repro.hardware.link import LinkSpec
from repro.sim.rand import RandomStreams
from repro.sim.trace import NullTracer, Tracer


class FaultInjector:
    """The cluster's single source of injected misbehaviour."""

    def __init__(self, spec: FaultSpec, rng: RandomStreams,
                 tracer: Optional[Tracer] = None,
                 link: Optional[LinkSpec] = None):
        self.spec = spec
        self.rng = rng
        self.tracer = tracer if tracer is not None else NullTracer()
        self.link = link
        self._link_rng = rng.stream("faults:link")
        self._daemon_rng = rng.stream("faults:daemon")
        self._ber_active = link is not None and link.bit_error_rate > 0.0
        # counters (the "did the faults actually happen" evidence)
        self.drops = 0
        self.dups = 0
        self.corruptions = 0
        self.jitters = 0
        self.sram_flips = 0
        self.daemon_stalls = 0
        self.daemon_crashes = 0
        #: seqs whose first wire copy was destroyed (dropped or corrupted)
        #: — the auditor excuses FIFO reordering for exactly these plus the
        #: retransmitted set.
        self.faulted_seqs: set = set()

    # ------------------------------------------------------------------ link
    def on_transmit(self, packet: Packet, src: int,
                    dst: int) -> Tuple[int, Packet, float]:
        """Per-packet fault decision for the fabric.

        Returns ``(copies, packet, extra_delay)``: 0 copies = dropped, 2 =
        duplicated; the returned packet may be a corrupted-marked clone;
        ``extra_delay`` is the jitter added to the fall-through latency.
        """
        spec = self.spec
        rng = self._link_rng
        extra = 0.0
        if spec.jitter_rate and rng.random() < spec.jitter_rate:
            extra = rng.random() * spec.jitter_max
            self.jitters += 1
            if self.tracer:
                self.tracer.record("fault-jitter", src=src, dst=dst,
                                   ptype=packet.ptype.value, delay=extra)

        ptype = packet.ptype
        if ptype is not PacketType.DATA and ptype is not PacketType.ACK:
            # Flush/refill control traffic is exempt (see faults.model).
            return 1, packet, extra

        corrupt_p = spec.corrupt_rate
        if self._ber_active:
            wire_p = self.link.corruption_probability(packet.size_bytes)
            corrupt_p = 1.0 - (1.0 - corrupt_p) * (1.0 - wire_p)
        u = rng.random()
        if u < spec.drop_rate:
            self.drops += 1
            self.faulted_seqs.add(packet.seq)
            if self.tracer:
                self.tracer.record("fault-drop", src=src, dst=dst,
                                   ptype=ptype.value, seq=packet.seq,
                                   job=packet.job_id)
            return 0, packet, extra
        u -= spec.drop_rate
        if u < spec.dup_rate:
            self.dups += 1
            if self.tracer:
                self.tracer.record("fault-dup", src=src, dst=dst,
                                   ptype=ptype.value, seq=packet.seq,
                                   job=packet.job_id)
            return 2, packet, extra
        u -= spec.dup_rate
        if u < corrupt_p:
            self.corruptions += 1
            self.faulted_seqs.add(packet.seq)
            if self.tracer:
                self.tracer.record("fault-corrupt", src=src, dst=dst,
                                   ptype=ptype.value, seq=packet.seq,
                                   job=packet.job_id)
            return 1, replace(packet, corrupted=True), extra
        return 1, packet, extra

    # ------------------------------------------------------------------ NIC
    def sram_flip_process(self, firmware):
        """Generator: Poisson SRAM bit flips on one card.

        Each flip targets a random queued send descriptor of a random
        installed context; the descriptor stays structurally valid but
        its packet goes out corrupted (fails the receiver's CRC).  Flips
        that land in unoccupied SRAM are harmless and not modelled.
        """
        rate = self.spec.sram_flip_rate
        if rate <= 0:
            return
        nic = firmware.nic
        rng = self.rng.stream(f"faults:sram:{nic.node_id}")
        while True:
            yield firmware.sim.timeout(rng.exponential(1.0 / rate))
            jobs = firmware.installed_jobs
            if not jobs:
                continue
            ctx = firmware.installed_context(
                jobs[int(rng.integers(len(jobs)))])
            queued = ctx.send_queue.snapshot()
            if not queued:
                continue
            packet = queued[int(rng.integers(len(queued)))]
            if packet.corrupted:
                continue  # already hit; one descriptor can't get worse
            nic.corrupt_descriptor(packet)
            self.sram_flips += 1
            self.faulted_seqs.add(packet.seq)
            if self.tracer:
                self.tracer.record("fault-sram", node=nic.node_id,
                                   job=ctx.job_id, seq=packet.seq)

    # ------------------------------------------------------------------ noded
    def daemon_disruption(self, node_id: int) -> Tuple[Optional[str], float]:
        """Per-switch daemon fault decision for one noded.

        Returns ``(kind, stall_seconds)`` where kind is ``"stall"``,
        ``"crash"`` or None.  A crash additionally costs the daemon its
        restart time (billed by the caller as CPU busy time).
        """
        spec = self.spec
        if not spec.daemon_faults:
            return None, 0.0
        u = self._daemon_rng.random()
        if u < spec.daemon_crash_rate:
            delay = self._daemon_rng.random() * spec.daemon_stall_max
            self.daemon_crashes += 1
            if self.tracer:
                self.tracer.record("fault-daemon-crash", node=node_id,
                                   stall=delay)
            return "crash", delay
        if u < spec.daemon_crash_rate + spec.daemon_stall_rate:
            delay = self._daemon_rng.random() * spec.daemon_stall_max
            self.daemon_stalls += 1
            if self.tracer:
                self.tracer.record("fault-daemon-stall", node=node_id,
                                   stall=delay)
            return "stall", delay
        return None, 0.0

    # ------------------------------------------------------------------ reporting
    def counters(self) -> dict:
        """Injected-fault totals (JSON-ready)."""
        return {
            "drops": self.drops,
            "dups": self.dups,
            "corruptions": self.corruptions,
            "jitters": self.jitters,
            "sram_flips": self.sram_flips,
            "daemon_stalls": self.daemon_stalls,
            "daemon_crashes": self.daemon_crashes,
        }
