"""End-to-end invariant auditor.

Turns the paper's asserted safety properties into falsifiable checks.
The auditor taps every firmware's send and delivery hooks while the
simulation runs, then — once the cluster has quiesced — verifies, per
channel (job, source node, destination node):

- **no loss**: every DATA seq that left a send queue was delivered;
- **no duplication**: no seq was delivered to an application twice;
- **FIFO order**: deliveries happen in send order, excusing exactly the
  seqs that were retransmitted or destroyed on first transmission (a
  recovered packet legitimately arrives late);

plus two cluster-wide ledgers:

- **credit conservation**: for every directed rank pair, C0 equals
  available + committed-in-send-queue + sitting-in-recv-queue +
  consumed-unreported + returning-in-queued-refills (the quantitative
  form of "a single packet loss can mess up the credit counters");
- **backing-store integrity**: any residual saved image still matches
  the stored context's actual queue contents.

The report contains **counts only, never raw sequence numbers**: seqs
come from a process-global counter, so their absolute values differ
between a serial sweep and a process-pool sweep — counts are what make
``-j1`` vs ``-jN`` reports bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Set

from repro.fm.context import FMContext
from repro.fm.packet import PacketType


@dataclass(frozen=True)
class AuditReport:
    """Quiescence-time verdict (counts only — see module docstring)."""

    packets_sent: int          # unique DATA seqs that left a send queue
    packets_delivered: int     # deliveries into application receive queues
    lost: int                  # sent but never delivered
    duplicated: int            # delivered more than once
    fifo_violations: int       # channels whose in-order deliveries misordered
    reordered_by_retransmit: int  # deliveries excused from the FIFO check
    credit_violations: int     # directed rank pairs with a non-zero leak
    backing_violations: int    # residual images not matching queue contents
    channels: int
    retransmits: int
    excused_channels: int = 0  # channels of failed jobs, skipped entirely

    @property
    def ok(self) -> bool:
        return (self.lost == 0 and self.duplicated == 0
                and self.fifo_violations == 0
                and self.credit_violations == 0
                and self.backing_violations == 0)

    def to_dict(self) -> dict:
        return {
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "fifo_violations": self.fifo_violations,
            "reordered_by_retransmit": self.reordered_by_retransmit,
            "credit_violations": self.credit_violations,
            "backing_violations": self.backing_violations,
            "channels": self.channels,
            "retransmits": self.retransmits,
            "excused_channels": self.excused_channels,
            "ok": self.ok,
        }

    def publish(self, registry, prefix: str = "audit") -> None:
        """Fold this report into a telemetry MetricsRegistry.

        Counts become counters; the boolean verdict becomes a 0/1 gauge
        (``audit.ok``).  Gauges merge by addition, so in a merged
        snapshot ``audit.ok`` counts the *passing* reports — all clean
        iff it equals ``audit.reports``.
        """
        for name, value in self.to_dict().items():
            if name == "ok":
                continue
            registry.counter(f"{prefix}.{name}").inc(value)
        registry.counter(f"{prefix}.reports").inc(1)
        registry.gauge(f"{prefix}.ok").add(1 if self.ok else 0)


def _credits_in_queue(queue, toward_node: int) -> tuple:
    committed = 0
    returning = 0
    for pkt in queue.snapshot():
        if pkt.dst_node != toward_node:
            continue
        if pkt.ptype is PacketType.DATA:
            committed += 1
            returning += pkt.piggyback_refill
        elif pkt.ptype is PacketType.REFILL:
            returning += pkt.refill_credits
    return committed, returning


def credit_leaks(contexts: Mapping[int, FMContext]) -> dict:
    """Per directed (sender_rank, receiver_rank) credit shortfall.

    ``contexts`` maps rank -> context for one quiesced job.  Returns only
    non-zero leaks; empty means perfect conservation.  (The production
    twin of the test suite's ``audit_credit_leaks`` helper.)
    """
    leaks: dict = {}
    for src_rank, src_ctx in contexts.items():
        for dst_rank, dst_ctx in contexts.items():
            if src_rank == dst_rank:
                continue
            src_node = src_ctx.node_id
            dst_node = dst_ctx.node_id
            # The live window, not the creation-time geometry: dynamic
            # buffer policies retarget C0 at gang switches, and the
            # conservation identity holds against whatever the window is
            # *now* (set_window moves C0 and the available term in
            # lockstep).  For static policies the two are identical.
            c0 = src_ctx.credits.c0
            available = src_ctx.credits.available(dst_node)
            committed, _ = _credits_in_queue(src_ctx.send_queue, dst_node)
            in_recv = sum(1 for p in dst_ctx.recv_queue.snapshot()
                          if p.src_node == src_node
                          and p.ptype is PacketType.DATA)
            unreported = dst_ctx.credits.consumed_unreported(src_node)
            _, returning = _credits_in_queue(dst_ctx.send_queue, src_node)
            leak = c0 - (available + committed + in_recv + unreported + returning)
            if leak != 0:
                leaks[(src_rank, dst_rank)] = leak
    return leaks


class InvariantAuditor:
    """Observes a cluster's firmwares and issues an :class:`AuditReport`."""

    def __init__(self):
        # channel key -> seqs in first-transmission order
        self._sent: dict = {}
        self._sent_seen: Set[int] = set()
        # channel key -> seqs in delivery order (duplicates included)
        self._delivered: dict = {}

    # ------------------------------------------------------------------ taps
    def attach(self, firmwares: Iterable) -> None:
        """Register send/delivery taps on every firmware (before traffic)."""
        for fw in firmwares:
            fw.data_send_hooks.append(self._on_send)
            fw.data_delivery_hooks.append(self._on_delivery)

    def _on_send(self, ctx, packet) -> None:
        seq = packet.seq
        if seq in self._sent_seen:
            return  # a retransmission, not a new packet
        self._sent_seen.add(seq)
        key = (packet.job_id, packet.src_node, packet.dst_node)
        self._sent.setdefault(key, []).append(seq)

    def _on_delivery(self, ctx, packet) -> None:
        key = (packet.job_id, packet.src_node, packet.dst_node)
        self._delivered.setdefault(key, []).append(packet.seq)

    # ------------------------------------------------------------------ verdict
    def report(self, excused_seqs: Optional[Set[int]] = None,
               job_contexts: Optional[Mapping[int, Mapping[int, FMContext]]] = None,
               backings: Optional[Iterable] = None,
               stored_contexts: Optional[Mapping[int, FMContext]] = None,
               retransmits: int = 0,
               excused_jobs: Optional[Set[int]] = None) -> AuditReport:
        """Run every check against the quiesced state.

        ``excused_seqs`` are seqs whose first wire copy was destroyed or
        that were retransmitted — late delivery of exactly these is the
        reliability layer working, not a FIFO violation.
        ``job_contexts`` maps job_id -> (rank -> context) for the credit
        ledger; ``backings``/``stored_contexts`` (job_id -> context) feed
        the residual-image integrity check.  ``excused_jobs`` are jobs
        that lost a rank to an evicted node: their channels legitimately
        show loss (packets addressed to the corpse), so the per-channel
        checks skip them entirely and report them as ``excused_channels``
        — surviving jobs still get the full no-loss/no-dup/FIFO verdict.
        """
        excused = excused_seqs if excused_seqs is not None else set()
        dead_jobs = excused_jobs if excused_jobs is not None else set()
        lost = duplicated = fifo_violations = reordered = 0
        delivered_total = 0
        excused_channels = 0
        for key, sent in self._sent.items():
            if key[0] in dead_jobs:
                excused_channels += 1
                continue
            delivered = self._delivered.get(key, [])
            delivered_total += len(delivered)
            delivered_set = set(delivered)
            lost += sum(1 for s in sent if s not in delivered_set)
            duplicated += len(delivered) - len(delivered_set)
            in_order = [s for s in delivered if s not in excused]
            reordered += len(delivered) - len(in_order)
            expected = [s for s in sent
                        if s in delivered_set and s not in excused]
            if in_order != expected:
                fifo_violations += 1
        # Deliveries on channels with no recorded send = phantom packets.
        for key, delivered in self._delivered.items():
            if key not in self._sent and key[0] not in dead_jobs:
                delivered_total += len(delivered)
                duplicated += len(delivered)

        credit_violations = 0
        if job_contexts:
            for contexts in job_contexts.values():
                credit_violations += len(credit_leaks(contexts))

        backing_violations = 0
        if backings is not None:
            ctx_of = stored_contexts or {}
            for backing in backings:
                for job_id in list(getattr(backing, "_images", {})):
                    image = backing.image_of(job_id)
                    ctx = ctx_of.get(job_id)
                    if ctx is None:
                        backing_violations += 1  # orphaned image
                        continue
                    send_now = tuple(p.seq for p in ctx.send_queue.snapshot())
                    recv_now = tuple(p.seq for p in ctx.recv_queue.snapshot())
                    if (send_now != image.send_seqs
                            or recv_now != image.recv_seqs):
                        backing_violations += 1

        return AuditReport(
            packets_sent=len(self._sent_seen),
            packets_delivered=delivered_total,
            lost=lost,
            duplicated=duplicated,
            fifo_violations=fifo_violations,
            reordered_by_retransmit=reordered,
            credit_violations=credit_violations,
            backing_violations=backing_violations,
            channels=len(self._sent) - excused_channels,
            retransmits=retransmits,
            excused_channels=excused_channels,
        )
