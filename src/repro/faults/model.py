"""Fault model parameters.

The paper's safety claim — the three-stage switch protocol "withstood
thorough testing without packet loss" — is only meaningful against an
adversary.  :class:`FaultSpec` is that adversary's configuration: a
frozen, validated bundle of per-packet fault probabilities (link layer),
an SRAM bit-flip rate (NIC layer), per-switch daemon disruption
probabilities (parpar layer), and a schedule of *fail-stop* node deaths
(cluster layer).  All randomness is drawn from named
:class:`~repro.sim.rand.RandomStreams`, so a campaign is exactly
reproducible from its seed.

Only DATA and ACK packets are *faultable* at the link layer.  The
HALT/READY packets of the flush protocol and explicit REFILL packets are
exempt — but the reason is narrower than it used to be.  The real
protocols this models run them over mechanisms the per-packet fault
campaign does not attack (the paper's flush counts halts over a lossless
control path), so dropping an *individual* HALT would falsify a claim
the paper never makes.  Whole-node failure is a different adversary and
**is** in scope: a :attr:`FaultSpec.failstop` entry silences a node
entirely — every future HALT, READY, heartbeat, ack and data packet from
it — and the recovery protocol in :mod:`repro.parpar.recovery` (lease
failure detector, barrier timeout + eviction, backing-store
reintegration) is what keeps the cluster live through it.  The control
path is exempt from packet-level lotteries, not from failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import US


@dataclass(frozen=True)
class FailStop:
    """One scheduled fail-stop node death (and optional rebirth).

    At ``fail_at`` the node goes genuinely silent: the noded ignores all
    control traffic, hosted processes die, the NIC powers off mid-stream
    (installed contexts are paged out to the backing store first — the
    store survives, modelling state on the node's disk).  If ``rejoin_at``
    is set, a fresh noded re-registers with the masterd at that time and
    the reintegration protocol restores and reconciles the stored
    contexts.
    """

    node_id: int
    fail_at: float
    rejoin_at: float | None = None

    def __post_init__(self):
        if self.node_id < 0:
            raise ConfigError(f"failstop node_id must be >= 0, got {self.node_id}")
        if self.fail_at < 0:
            raise ConfigError(f"fail_at must be >= 0, got {self.fail_at}")
        if self.rejoin_at is not None and self.rejoin_at <= self.fail_at:
            raise ConfigError(
                f"rejoin_at ({self.rejoin_at}) must be after fail_at "
                f"({self.fail_at})")


@dataclass(frozen=True)
class FaultSpec:
    """Seed-driven fault rates for one chaos campaign."""

    #: Per-transmission probability a faultable packet vanishes in the
    #: switch (arrives nowhere, consumes no receive-side wire time).
    drop_rate: float = 0.0
    #: Per-transmission probability a faultable packet is delivered twice
    #: (a switch-level retransmission artefact).
    dup_rate: float = 0.0
    #: Per-transmission probability the delivered bytes are corrupted
    #: (fails the receiver's CRC check).  Combined with any nonzero
    #: ``LinkSpec.bit_error_rate`` into a per-packet probability.
    corrupt_rate: float = 0.0
    #: Per-transmission probability of an extra fall-through delay
    #: (applies to *all* packet types; never reorders — see
    #: ``MyrinetFabric._transmit_faulty``).
    jitter_rate: float = 0.0
    #: Maximum extra delay when jitter fires (uniform in [0, max)).
    jitter_max: float = 20 * US
    #: SRAM bit flips per second per node; each flip corrupts one queued
    #: send descriptor on the card.
    sram_flip_rate: float = 0.0
    #: Per-switch probability the node daemon stalls (scheduling glitch)
    #: before running the three-stage protocol.
    daemon_stall_rate: float = 0.0
    #: Per-switch probability the daemon crashes and is restarted before
    #: the switch proceeds.
    daemon_crash_rate: float = 0.0
    #: Maximum stall when one fires (uniform in [0, max)).
    daemon_stall_max: float = 0.004
    #: Fixed cost of restarting a crashed daemon (CPU busy time).
    daemon_restart_time: float = 500 * US
    #: Scheduled whole-node deaths (see :class:`FailStop`); seed-driven
    #: schedules are built by the chaos layer before the spec is frozen.
    failstop: tuple = field(default=())

    def __post_init__(self):
        for name in ("drop_rate", "dup_rate", "corrupt_rate", "jitter_rate",
                     "daemon_stall_rate", "daemon_crash_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {value}")
        if self.drop_rate + self.dup_rate + self.corrupt_rate > 1.0:
            raise ConfigError("drop+dup+corrupt rates must not exceed 1")
        if self.daemon_stall_rate + self.daemon_crash_rate > 1.0:
            raise ConfigError("stall+crash rates must not exceed 1")
        for name in ("jitter_max", "sram_flip_rate", "daemon_stall_max",
                     "daemon_restart_time"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        for entry in self.failstop:
            if not isinstance(entry, FailStop):
                raise ConfigError(
                    f"failstop entries must be FailStop, got {entry!r}")
        killed = [e.node_id for e in self.failstop]
        if len(killed) != len(set(killed)):
            raise ConfigError("failstop schedules one death per node at most")

    @property
    def link_faults(self) -> bool:
        """Any per-packet fault enabled at the fabric?"""
        return (self.drop_rate > 0 or self.dup_rate > 0
                or self.corrupt_rate > 0 or self.jitter_rate > 0)

    @property
    def daemon_faults(self) -> bool:
        return self.daemon_stall_rate > 0 or self.daemon_crash_rate > 0

    @property
    def node_faults(self) -> bool:
        """Any whole-node fail-stop scheduled?"""
        return len(self.failstop) > 0

    @property
    def enabled(self) -> bool:
        """Any fault model active at all?"""
        return (self.link_faults or self.sram_flip_rate > 0
                or self.daemon_faults or self.node_faults)
