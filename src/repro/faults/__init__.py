"""Fault injection, reliability, and invariant auditing.

The subsystem that stresses the paper's safety claim: seed-driven fault
models (:mod:`~repro.faults.model`, :mod:`~repro.faults.injector`), a
retry/timeout/backoff reliability layer for the FM firmware
(:mod:`~repro.faults.retransmit`), an end-to-end invariant auditor
(:mod:`~repro.faults.audit`), and the chaos-campaign driver behind
``python -m repro chaos`` (:mod:`~repro.faults.chaos`).
"""

from repro.faults.audit import AuditReport, InvariantAuditor, credit_leaks
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSpec
from repro.faults.retransmit import ReliableFirmware, RetransmitPolicy

_LAZY = {"ChaosPoint", "run_chaos_campaign", "run_chaos_point"}


def __getattr__(name):
    # chaos imports parpar.cluster, which imports this package — resolve
    # the campaign entry points lazily to keep the import graph acyclic.
    if name in _LAZY:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AuditReport",
    "ChaosPoint",
    "FaultInjector",
    "FaultSpec",
    "InvariantAuditor",
    "ReliableFirmware",
    "RetransmitPolicy",
    "credit_leaks",
    "run_chaos_campaign",
    "run_chaos_point",
]
