"""Per-packet positive acks with exponential backoff — the regression anchor.

A bit-identical re-implementation, on the strategy interface, of the
behaviour :class:`~repro.faults.retransmit.ReliableFirmware` hardwired
before the strategies existed: the receiver acks every accepted DATA
packet by its global ``seq`` (re-acking duplicates so a lost ack settles
the sender), and the sender arms one timer per transmission on the
``timeout * backoff**(attempt-1)`` schedule, retransmitting until
``max_retries`` and then declaring the packet permanently lost.

Every event this strategy schedules — timer processes, their names, the
ack packets, the trace records — matches the pre-strategy layer exactly,
which is what lets ``tests/faults/test_chaos_golden.py`` pin whole chaos
campaigns against pre-refactor output byte-for-byte.
"""

from __future__ import annotations

from repro.faults.strategies.base import ReliabilityStrategy


class PerPacketAck(ReliabilityStrategy):
    """ACK every packet; retransmit on exponential-backoff timeout."""

    name = "per-packet"

    # ------------------------------------------------------------- send side
    def on_data_sent(self, entry) -> None:
        seq = entry.packet.seq
        driver = self.driver
        driver.start_timer(
            ("rto", seq), self.policy.timeout_for(entry.attempts),
            name=f"rto-{driver.node_id}-s{seq}")

    def on_ack_like_received(self, packet) -> None:
        # Duplicated or stale acks are no-ops, not protocol errors; NACKs
        # are never emitted by this strategy, so an arriving one (from a
        # mixed-strategy misconfiguration) is ignored the same way.
        self.driver.release(packet.ack_seq)

    def on_timer(self, tag) -> None:
        _, seq = tag
        driver = self.driver
        entry = driver.outstanding_entry(seq)
        if entry is None:
            return  # acked while the timer was in flight
        if entry.attempts >= self.policy.max_retries:
            driver.request_give_up(seq)
        else:
            driver.request_retransmit(seq)

    # ---------------------------------------------------------- receive side
    def on_data_received(self, packet, duplicate: bool) -> None:
        # Same ack for fresh deliveries and duplicates: the dup case is
        # precisely the lost-ack recovery path.
        self.driver.emit_ack(packet.src_node, packet.job_id, packet.seq)
