"""Strategy interface for the pluggable ACK/NACK reliability layer.

:class:`~repro.faults.retransmit.ReliableFirmware` is a thin *driver*:
it owns every piece of protocol-safety machinery that no strategy may
break — dedup-by-seq before piggyback credits are applied, parking of
retransmit clones while the context is STORED, halt-exempt control
traffic through the firmware control outbox, per-channel ``rel_seq``
stamping, the pristine host-side copy of every outstanding DATA packet,
and the ``power_off``/``forget_job`` teardown of all of it.  A
:class:`ReliabilityStrategy` decides only *when to acknowledge, what an
acknowledgement means, and when to retransmit*:

- the receive side reacts to deliveries/duplicates (``on_data_received``)
  by emitting ACK/NACK control packets through the driver;
- the send side reacts to ACK/NACK arrivals (``on_ack_like_received``)
  and its own timers (``on_timer``) by releasing or retransmitting
  outstanding entries through the driver.

The split mirrors the ``AckNackMethod`` hierarchy of the Meshtastic
WIFI bridge: the stream/window bookkeeping lives in one place, the
ack/nack policy is swappable.

**Driver services available to strategies** (the full allowed surface —
strategies must not touch other driver internals):

================================================= =======================
``driver.now()``                                  current simulated time
``driver.start_timer(tag, delay, name=...)``      schedule ``on_timer(tag)``
``driver.cancel_timer(tag)``                      forget a pending timer
``driver.emit_ack(dst, job, ack_seq)``            queue an ACK (halt-exempt)
``driver.emit_nack(dst, job, rel_seq)``           queue a NACK (halt-exempt)
``driver.release(seq)``                           free one unacked entry
``driver.release_through(job, peer, rel_seq)``    free a channel prefix
``driver.request_retransmit(seq)``                ask for a clone resend
``driver.request_give_up(seq)``                   abandon an entry
``driver.outstanding_entry(seq)``                 sender-side record or None
``driver.seq_for(job, peer, rel_seq)``            channel lookup or None
``driver.channel_outstanding(job, peer)``         rel_seq -> seq mapping
``driver.policy``                                 the RetransmitPolicy
================================================= =======================

**Determinism contract**: strategies run inside the simulation and must
be bit-reproducible — no wall-clock reads (simlint SIM001 applies to
``on_timer`` and every other hook), no unseeded randomness, no iteration
over unordered sets.  All timing decisions derive from ``driver.now()``
and the :class:`~repro.faults.retransmit.RetransmitPolicy` schedule.

**Sequence-number vocabulary.**  Every packet carries two numbers: the
process-global ``seq`` (unique per wire packet, the dedup key) and the
driver-stamped ``rel_seq`` (contiguous 0, 1, 2, ... per directed channel
``(job_id, src_node -> dst_node)``).  Per-packet strategies acknowledge
``seq``; cumulative/selective strategies reason about channel prefixes
and gaps in ``rel_seq`` space, which survives retransmission (a clone
keeps its original ``rel_seq``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.retransmit import RetransmitPolicy, _Outstanding
    from repro.fm.packet import Packet


class ReliabilityStrategy:
    """Base class: every hook is a safe no-op except the three core ones.

    One instance serves one NIC (the driver binds itself at
    construction); per-channel state lives on the instance and dies with
    ``on_power_off``.
    """

    #: registry key; subclasses must override with a unique name
    name = "abstract"

    def __init__(self, policy: "RetransmitPolicy"):
        self.policy = policy
        self.driver = None  # bound by ReliableFirmware

    def bind(self, driver) -> None:
        """Driver handshake — called once before any traffic."""
        self.driver = driver

    # ------------------------------------------------------------- send side
    def on_data_sent(self, entry: "_Outstanding") -> None:
        """A DATA packet (attempt ``entry.attempts``) just hit the wire.

        The canonical move is to arm a retransmit timer for
        ``entry.packet.seq``; the schedule is the strategy's to choose.
        """
        raise NotImplementedError

    def on_ack_like_received(self, packet: "Packet") -> None:
        """An ACK or NACK control packet arrived (CRC-clean, any state)."""
        raise NotImplementedError

    def on_timer(self, tag) -> None:
        """A timer armed with ``start_timer(tag, ...)`` fired (not stale)."""

    # ---------------------------------------------------------- receive side
    def on_data_received(self, packet: "Packet", duplicate: bool) -> None:
        """A CRC-clean DATA packet arrived for an installed context.

        ``duplicate=True`` means dedup-by-seq already discarded it (the
        driver never re-delivers); the strategy should still settle the
        sender — a duplicate usually means the original's ack was lost.
        ``duplicate=False`` means the packet was just delivered into the
        application receive queue.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ lifecycle
    def on_context_installed(self, job_id: int) -> None:
        """A context came (back) onto the card; parked clones are draining."""

    def on_context_stored(self, job_id: int) -> None:
        """A context was paged off the card (gang switch, not teardown)."""

    def on_job_forgotten(self, job_id: int) -> None:
        """COMM_end_job teardown: drop any per-channel state for the job."""

    def on_peer_dead(self, peer: int) -> None:
        """The driver gave up on a packet to ``peer`` — it looks dead."""

    def on_power_off(self) -> None:
        """Fail-stop: strategy state is device state and dies with the NIC."""

    # ------------------------------------------------------------ reporting
    def stats(self) -> dict:
        """Deterministic, JSON-ready strategy-specific counters."""
        return {}
