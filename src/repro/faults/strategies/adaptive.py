"""Adaptive retransmit controller: the timeout schedule tracks ack RTT.

Per-packet acks as in :class:`PerPacketAck`, but the sender's timeout
schedule is not a fixed ``timeout * backoff**k`` ladder: its *base* is a
smoothed estimate of the observed ack round-trip time, in the spirit of
delay-signal-driven adaptation (BShare steers buffer sharing from
queueing delay; this controller steers the retransmit clock from ack
delay).  The estimator is the classic deterministic EWMA pair

    srtt   <- 7/8 srtt + 1/8 sample
    rttvar <- 3/4 rttvar + 1/4 |srtt - sample|
    base   =  srtt + 4 rttvar        (clamped to [floor, ceiling])

with Karn's rule: only never-retransmitted packets contribute samples,
so a retransmission ambiguity can never poison the estimate.  On top of
the adaptive base the per-attempt exponential backoff still applies —
congestion-style widening under repeated loss — and two hard rails keep
the controller honest under chaos:

- **floor/ceiling**: the schedule can never drop below ``policy.timeout
  / floor_div`` (spurious-retransmit storms) nor exceed
  ``policy.max_timeout`` (unbounded stalls);
- **graceful degradation**: when the driver gives up on a packet the
  peer *looks dead* — every later packet to that peer waits the full
  ceiling instead of flapping through the whole ladder again, until an
  ack from the peer proves it alive and restores the adaptive schedule.

All state is plain floats updated by simulated-time arithmetic — no
wall clock, no randomness — so runs stay bit-reproducible.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.strategies.per_packet import PerPacketAck


class AdaptiveBackoff(PerPacketAck):
    """RTT-tracking timeout schedule with dead-peer degradation."""

    name = "adaptive"

    def __init__(self, policy, floor_div: float = 4.0):
        super().__init__(policy)
        if floor_div < 1.0:
            raise ConfigError(
                f"floor_div must be >= 1 (the floor cannot exceed the "
                f"configured base timeout), got {floor_div}")
        self.floor = policy.timeout / floor_div
        self.ceiling = policy.max_timeout
        self.srtt: float = 0.0       # 0.0 = no samples yet
        self.rttvar: float = 0.0
        self.rtt_samples = 0
        self._suspect: dict = {}     # peer -> True while it looks dead
        self.degraded_sends = 0      # transmissions timed at the ceiling

    # ------------------------------------------------------------ controller
    def current_base(self) -> float:
        """The adaptive base timeout (pre-backoff, clamped)."""
        if self.rtt_samples == 0:
            return self.policy.timeout
        base = self.srtt + 4.0 * self.rttvar
        if base < self.floor:
            return self.floor
        if base > self.ceiling:
            return self.ceiling
        return base

    def _observe(self, sample: float) -> None:
        if self.rtt_samples == 0:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            delta = self.srtt - sample
            if delta < 0.0:
                delta = -delta
            self.rttvar = 0.75 * self.rttvar + 0.25 * delta
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rtt_samples += 1

    # ------------------------------------------------------------- send side
    def on_data_sent(self, entry) -> None:
        driver = self.driver
        peer = entry.packet.dst_node
        seq = entry.packet.seq
        if peer in self._suspect:
            self.degraded_sends += 1
            delay = self.ceiling
        else:
            delay = self.current_base() \
                * self.policy.backoff ** (entry.attempts - 1)
            if delay > self.ceiling:
                delay = self.ceiling
        driver.start_timer(("rto", seq), delay,
                           name=f"rto-{driver.node_id}-s{seq}")

    def on_ack_like_received(self, packet) -> None:
        entry = self.driver.outstanding_entry(packet.ack_seq)
        if entry is not None and entry.attempts == 1:
            # Karn's rule: unambiguous samples only.
            self._observe(self.driver.now() - entry.sent_at)
        # Any ack proves the peer alive again.
        self._suspect.pop(packet.src_node, None)
        super().on_ack_like_received(packet)

    # ------------------------------------------------------------ lifecycle
    def on_peer_dead(self, peer: int) -> None:
        self._suspect[peer] = True

    def on_power_off(self) -> None:
        self.srtt = 0.0
        self.rttvar = 0.0
        self.rtt_samples = 0
        self._suspect.clear()

    # ------------------------------------------------------------ reporting
    def stats(self) -> dict:
        return {
            "rtt_samples": self.rtt_samples,
            "srtt_ns": int(round(self.srtt * 1e9)),
            "rttvar_ns": int(round(self.rttvar * 1e9)),
            "degraded_sends": self.degraded_sends,
            "suspected_peers": len(self._suspect),
        }
