"""Cumulative acknowledgements: ack-every-N with a max-ack-delay timer.

The receiver tracks, per directed channel, the highest *contiguous*
``rel_seq`` delivered (the frontier) and acknowledges that frontier —
one ACK covers a whole prefix, so the sender frees every outstanding
entry with ``rel_seq <= ack_seq`` at once.  Acks are throttled: one is
emitted after every ``ack_every_n`` deliveries, or when the
``max_ack_delay`` timer fires with deliveries still unacknowledged,
whichever comes first — the SmartAckNack idiom ("ACK every N frames or
after a time interval") transplanted onto the FM credit transport.

The sender side keeps the per-packet exponential-backoff safety timers:
with acks delayed up to ``max_ack_delay``, the base timeout must exceed
the delay or every packet would spuriously retransmit — the default
schedule (2 ms base vs 0.5 ms max delay) leaves 4x headroom.

Two protocol-safety details the strategy must handle itself (the driver
cannot):

- a **duplicate** usually means the original's ack was lost *or*
  swallowed by throttling — re-emit the current frontier immediately so
  the sender settles instead of retransmitting a third time;
- a **gang switch** parks the context while acks may still be pending —
  ``on_context_stored`` flushes them (acks are halt-exempt), so a stored
  context never strands a sender at one-below-the-frontier.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.strategies.per_packet import PerPacketAck
from repro.units import US


class _ChannelRx:
    """Receiver-side cumulative state for one (job, src_node) channel."""

    __slots__ = ("frontier", "out_of_order", "pending", "armed")

    def __init__(self):
        self.frontier = -1          # highest contiguous rel_seq delivered
        self.out_of_order = set()   # delivered rel_seqs above the frontier
        self.pending = 0            # deliveries since the last ack went out
        self.armed = False          # a max-ack-delay timer is running


class CumulativeAck(PerPacketAck):
    """Throttled prefix acks; sender frees channel prefixes."""

    name = "cumulative"

    def __init__(self, policy, ack_every_n: int = 4,
                 max_ack_delay: float = 500 * US):
        super().__init__(policy)
        if ack_every_n < 1:
            raise ConfigError(f"ack_every_n must be >= 1, got {ack_every_n}")
        if max_ack_delay <= 0:
            raise ConfigError(
                f"max_ack_delay must be positive, got {max_ack_delay}")
        if max_ack_delay >= policy.timeout:
            raise ConfigError(
                f"max_ack_delay ({max_ack_delay}) must stay below the "
                f"retransmit timeout ({policy.timeout}) or every packet "
                "would spuriously retransmit")
        self.ack_every_n = ack_every_n
        self.max_ack_delay = max_ack_delay
        self._rx: dict = {}         # (job_id, src_node) -> _ChannelRx
        self.cum_acks = 0           # frontier acks emitted (batch-triggered)
        self.delayed_acks = 0       # frontier acks emitted by the timer

    # ---------------------------------------------------------- receive side
    def on_data_received(self, packet, duplicate: bool) -> None:
        channel = (packet.job_id, packet.src_node)
        state = self._rx.get(channel)
        if duplicate:
            # Lost or throttled ack: restate the frontier right away.
            frontier = state.frontier if state is not None else -1
            self._emit(channel, frontier)
            return
        if state is None:
            state = self._rx[channel] = _ChannelRx()
        rel = packet.rel_seq
        if rel == state.frontier + 1:
            state.frontier = rel
            oo = state.out_of_order
            while state.frontier + 1 in oo:
                state.frontier += 1
                oo.discard(state.frontier)
        else:
            state.out_of_order.add(rel)
        state.pending += 1
        if state.pending >= self.ack_every_n:
            self.cum_acks += 1
            self._emit(channel, state.frontier)
            state.pending = 0
        elif not state.armed:
            state.armed = True
            self.driver.start_timer(
                ("cum",) + channel, self.max_ack_delay,
                name=f"cumack-{self.driver.node_id}-j{channel[0]}")

    def on_timer(self, tag) -> None:
        if tag[0] != "cum":
            super().on_timer(tag)   # the sender-side retransmit timers
            return
        channel = tag[1:]
        state = self._rx.get(channel)
        if state is None:
            return
        state.armed = False
        if state.pending:
            self.delayed_acks += 1
            self._emit(channel, state.frontier)
            state.pending = 0

    def _emit(self, channel, frontier: int) -> None:
        job_id, src_node = channel
        self.driver.emit_ack(src_node, job_id, frontier)

    # ------------------------------------------------------------- send side
    def on_ack_like_received(self, packet) -> None:
        # ack_seq is a rel_seq frontier: free the whole channel prefix.
        self.driver.release_through(packet.job_id, packet.src_node,
                                    packet.ack_seq)

    # ------------------------------------------------------------ lifecycle
    def on_context_stored(self, job_id: int) -> None:
        self._flush_job(job_id)

    def on_job_forgotten(self, job_id: int) -> None:
        for channel in [c for c in self._rx if c[0] == job_id]:
            self.driver.cancel_timer(("cum",) + channel)
            del self._rx[channel]

    def on_power_off(self) -> None:
        self._rx.clear()

    def _flush_job(self, job_id: int) -> None:
        for channel, state in self._rx.items():
            if channel[0] == job_id and state.pending:
                self.delayed_acks += 1
                self._emit(channel, state.frontier)
                state.pending = 0

    # ------------------------------------------------------------ reporting
    def stats(self) -> dict:
        return {"cum_acks": self.cum_acks, "delayed_acks": self.delayed_acks}
