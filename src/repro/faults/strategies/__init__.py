"""Pluggable ACK/NACK reliability strategies for the FM firmware.

The registry maps stable names (the ``--strategy`` CLI vocabulary, the
``FMConfig.reliability_strategy`` field) to strategy classes:

- ``per-packet`` — positive ack per packet, fixed exponential backoff
  (the original hardwired behaviour; the regression anchor);
- ``cumulative`` — ack-every-N / max-ack-delay prefix acks;
- ``nack`` — selective retransmit driven by debounced gap NACKs;
- ``adaptive`` — per-packet acks with an RTT-tracking timeout
  controller and dead-peer degradation.

See :mod:`repro.faults.strategies.base` for the driver/strategy split
and the determinism contract.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.strategies.adaptive import AdaptiveBackoff
from repro.faults.strategies.base import ReliabilityStrategy
from repro.faults.strategies.cumulative import CumulativeAck
from repro.faults.strategies.nack import NackSelective
from repro.faults.strategies.per_packet import PerPacketAck

STRATEGIES = {cls.name: cls for cls in
              (PerPacketAck, CumulativeAck, NackSelective, AdaptiveBackoff)}

#: the pre-strategy behaviour; everything defaults to it
DEFAULT_STRATEGY = PerPacketAck.name

#: CLI / config vocabulary, in presentation order
STRATEGY_NAMES = tuple(STRATEGIES)


def make_strategy(name: str, policy, **kwargs) -> ReliabilityStrategy:
    """One fresh strategy instance (per-NIC state included) by name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown reliability strategy {name!r}; "
            f"choose from {', '.join(STRATEGY_NAMES)}") from None
    return cls(policy, **kwargs)


__all__ = [
    "AdaptiveBackoff", "CumulativeAck", "DEFAULT_STRATEGY", "NackSelective",
    "PerPacketAck", "ReliabilityStrategy", "STRATEGIES", "STRATEGY_NAMES",
    "make_strategy",
]
