"""Selective retransmit: receiver NACKs rel_seq gaps, with debounce.

Built on the cumulative-ack machinery (the sender still needs prefix
acks to free buffers — a pure-NACK scheme never frees anything on a
clean link), this strategy adds *negative* acknowledgements: when a
delivery lands above the channel frontier, every missing ``rel_seq`` in
the gap is NACKed, and the sender retransmits exactly the named entries
immediately instead of waiting out a timeout.  A debounce interval
keeps a burst of out-of-order deliveries from NACKing the same gap once
per packet — the BasicAckNack/SmartAckNack "NACK with debounce" idiom.

Because a *tail* loss (the last packet of a burst, with nothing after
it to expose the gap) produces no NACK, the sender keeps safety timers
— stretched by ``stall_factor`` over the base schedule, so on a lossy
link recovery is almost always NACK-driven (fast) and the timers fire
only for tail losses and lost NACKs (slow but safe).  Ack throttling is
inherited: ``ack_every_n`` defaults higher than CumulativeAck's since
NACKs carry the urgent signal.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.strategies.cumulative import CumulativeAck
from repro.units import US


class NackSelective(CumulativeAck):
    """NACK-driven selective retransmit over throttled cumulative acks."""

    name = "nack"

    def __init__(self, policy, ack_every_n: int = 8,
                 max_ack_delay: float = 1000 * US,
                 nack_debounce: float = 300 * US,
                 stall_factor: float = 8.0):
        super().__init__(policy, ack_every_n=ack_every_n,
                         max_ack_delay=max_ack_delay)
        if nack_debounce < 0:
            raise ConfigError(
                f"nack_debounce must be >= 0, got {nack_debounce}")
        if stall_factor < 1.0:
            raise ConfigError(
                f"stall_factor must be >= 1 (the safety timers back off, "
                f"never lead), got {stall_factor}")
        self.nack_debounce = nack_debounce
        self.stall_factor = stall_factor
        #: (job, src_node) -> {missing rel_seq -> last nack time}
        self._nacked: dict = {}
        self.nacks_emitted = 0
        self.nack_retransmits = 0

    # ---------------------------------------------------------- receive side
    def on_data_received(self, packet, duplicate: bool) -> None:
        super().on_data_received(packet, duplicate)
        if duplicate:
            return
        channel = (packet.job_id, packet.src_node)
        state = self._rx[channel]
        history = self._nacked.get(channel)
        if state.frontier >= packet.rel_seq and history:
            # The gap (or part of it) closed; drop settled bookkeeping.
            for rel in [r for r in history if r <= state.frontier]:
                del history[rel]
        if not state.out_of_order:
            return
        # Gap detected: NACK every missing rel_seq between the frontier
        # and the highest delivery, debounced per entry.
        now = self.driver.now()
        if history is None:
            history = self._nacked[channel] = {}
        top = max(state.out_of_order)
        for rel in range(state.frontier + 1, top):
            if rel in state.out_of_order:
                continue
            last = history.get(rel)
            if last is not None and now - last < self.nack_debounce:
                continue
            history[rel] = now
            self.nacks_emitted += 1
            self.driver.emit_nack(packet.src_node, packet.job_id, rel)

    # ------------------------------------------------------------- send side
    def on_ack_like_received(self, packet) -> None:
        from repro.fm.packet import PacketType

        if packet.ptype is PacketType.NACK:
            seq = self.driver.seq_for(packet.job_id, packet.src_node,
                                      packet.ack_seq)
            if seq is not None:
                self.nack_retransmits += 1
                self.driver.request_retransmit(seq)
            return
        super().on_ack_like_received(packet)

    def on_data_sent(self, entry) -> None:
        # Stretched safety schedule: NACKs do the fast recovery, the
        # timer only catches tail losses and lost NACKs.
        seq = entry.packet.seq
        driver = self.driver
        delay = min(self.policy.timeout_for(entry.attempts)
                    * self.stall_factor, self.policy.max_timeout)
        driver.start_timer(("rto", seq), delay,
                           name=f"rto-{driver.node_id}-s{seq}")

    # ------------------------------------------------------------ lifecycle
    def on_job_forgotten(self, job_id: int) -> None:
        super().on_job_forgotten(job_id)
        for channel in [c for c in self._nacked if c[0] == job_id]:
            del self._nacked[channel]

    def on_power_off(self) -> None:
        super().on_power_off()
        self._nacked.clear()

    # ------------------------------------------------------------ reporting
    def stats(self) -> dict:
        stats = super().stats()
        stats["nacks_emitted"] = self.nacks_emitted
        stats["nack_retransmits"] = self.nack_retransmits
        return stats
