"""Buffer-switch algorithms — the second stage of the context switch.

FM's send queue is a fixed region of NIC SRAM and its receive queue a
pinned DMA buffer, so "the buffer switch cannot be accomplished using
simple pointer swapping.  Instead, it is necessary to copy the running
queues into a backing store, and copy the new context's queues from its
backing store" (Section 3.2).

Two algorithms, matching the paper's Figures 7 and 9:

- :class:`FullCopy` copies the *entire* buffer regions, occupancy be
  damned.  Cost is constant per switch and dominated by reading the
  ~400 KB send queue off the card at the ~14 MB/s write-combining read
  rate (< 85 ms, ~17 M cycles on the 200 MHz host).
- :class:`ValidOnlyCopy` — the paper's improvement — walks the ring
  descriptors and copies only the valid packets.  Since the queues are
  "generally quite empty", the cost collapses by roughly an order of
  magnitude (< 12.5 ms, 2.5 M cycles) and scales with occupancy rather
  than capacity.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.fm.context import FMContext
from repro.gluefm.backing import BackingStore
from repro.hardware.memory import MemoryKind, MemoryModel
from repro.hardware.node import HostNode


@dataclass(frozen=True)
class SwitchReport:
    """What one buffer switch did and what it cost (for Figs. 7-9)."""

    algorithm: str
    node_id: int
    out_job: Optional[int]
    in_job: Optional[int]
    duration: float               # host-busy seconds for the whole stage
    bytes_copied: int
    # Occupancy of the *outgoing* context at switch time (Figure 8):
    out_send_valid: int = 0
    out_recv_valid: int = 0

    def cycles(self, clock_hz: float = 200e6) -> int:
        return int(round(self.duration * clock_hz))


class SwitchAlgorithm(abc.ABC):
    """Strategy interface for COMM_context_switch's copy stage."""

    name: str = "abstract"

    @abc.abstractmethod
    def save_cost(self, ctx: FMContext, memory: MemoryModel, clock_hz: float) -> tuple[float, int]:
        """(seconds, bytes) to copy ``ctx``'s queues out to backing store."""

    @abc.abstractmethod
    def restore_cost(self, ctx: FMContext, memory: MemoryModel, clock_hz: float) -> tuple[float, int]:
        """(seconds, bytes) to copy ``ctx``'s queues back from backing store."""

    def run(self, node: HostNode, out_ctx: Optional[FMContext],
            in_ctx: Optional[FMContext], backing: BackingStore):
        """Perform the switch on ``node``; a generator returning a report.

        The firmware-level install/remove is the caller's (GlueFM's)
        responsibility; this stage only accounts for the copies and the
        backing-store integrity bookkeeping.
        """
        memory = node.memory
        clock = node.cpu.spec.clock_hz
        total_time = 0.0
        total_bytes = 0
        out_send = out_recv = 0

        if out_ctx is not None:
            out_send = out_ctx.send_queue.valid_packets
            out_recv = out_ctx.recv_queue.valid_packets
            seconds, nbytes = self.save_cost(out_ctx, memory, clock)
            backing.save(out_ctx)
            yield node.cpu.busy(seconds)
            total_time += seconds
            total_bytes += nbytes

        if in_ctx is not None and backing.has_image(in_ctx.job_id):
            # A context switched in for the *first* time has no saved
            # image — there is nothing to copy back, so nothing may be
            # billed.  (Billing the nonexistent copy was a real bug: under
            # ValidOnlyCopy the phantom charge even scaled with whatever
            # the fresh context's queues happened to hold.)
            seconds, nbytes = self.restore_cost(in_ctx, memory, clock)
            backing.restore(in_ctx)
            yield node.cpu.busy(seconds)
            total_time += seconds
            total_bytes += nbytes

        return SwitchReport(
            algorithm=self.name,
            node_id=node.node_id,
            out_job=out_ctx.job_id if out_ctx is not None else None,
            in_job=in_ctx.job_id if in_ctx is not None else None,
            duration=total_time,
            bytes_copied=total_bytes,
            out_send_valid=out_send,
            out_recv_valid=out_recv,
        )


class FullCopy(SwitchAlgorithm):
    """Copy entire buffer regions regardless of occupancy."""

    name = "full-copy"

    def _region_bytes(self, ctx: FMContext) -> tuple[int, int]:
        packet = ctx.config.packet_bytes
        return (ctx.geometry.send_packets * packet,
                ctx.geometry.recv_packets * packet)

    def save_cost(self, ctx, memory, clock_hz):
        send_bytes, recv_bytes = self._region_bytes(ctx)
        seconds = (
            memory.copy_time(send_bytes, MemoryKind.NIC_SRAM, MemoryKind.HOST_RAM)
            + memory.copy_time(recv_bytes, MemoryKind.PINNED_RAM, MemoryKind.HOST_RAM)
        )
        return seconds, send_bytes + recv_bytes

    def restore_cost(self, ctx, memory, clock_hz):
        send_bytes, recv_bytes = self._region_bytes(ctx)
        seconds = (
            memory.copy_time(send_bytes, MemoryKind.HOST_RAM, MemoryKind.NIC_SRAM)
            + memory.copy_time(recv_bytes, MemoryKind.HOST_RAM, MemoryKind.PINNED_RAM)
        )
        return seconds, send_bytes + recv_bytes


class ValidOnlyCopy(SwitchAlgorithm):
    """The improved algorithm: scan descriptors, copy only valid packets."""

    name = "valid-only-copy"

    def save_cost(self, ctx, memory, clock_hz):
        send_bytes = ctx.send_queue.valid_bytes
        recv_bytes = ctx.recv_queue.valid_bytes
        scan = (memory.scan_time(ctx.geometry.send_packets, clock_hz)
                + memory.scan_time(ctx.geometry.recv_packets, clock_hz))
        seconds = (
            scan
            + memory.copy_time(send_bytes, MemoryKind.NIC_SRAM, MemoryKind.HOST_RAM)
            + memory.copy_time(recv_bytes, MemoryKind.PINNED_RAM, MemoryKind.HOST_RAM)
        )
        return seconds, send_bytes + recv_bytes

    def restore_cost(self, ctx, memory, clock_hz):
        # Restoring writes back only what was saved: the queue contents.
        send_bytes = ctx.send_queue.valid_bytes
        recv_bytes = ctx.recv_queue.valid_bytes
        seconds = (
            memory.copy_time(send_bytes, MemoryKind.HOST_RAM, MemoryKind.NIC_SRAM)
            + memory.copy_time(recv_bytes, MemoryKind.HOST_RAM, MemoryKind.PINNED_RAM)
        )
        return seconds, send_bytes + recv_bytes
