"""glueFM — the network management library of the paper's Section 3.

The abstract interface of Table 1, "linked with the noded", providing
what FM's CM daemon used to do plus the new context-switch machinery:

- :mod:`~repro.gluefm.api` — the eight ``COMM_*`` entry points;
- :mod:`~repro.gluefm.flush` — the network flush protocol (Figure 3);
- :mod:`~repro.gluefm.switch` — the buffer-switch algorithms: the full
  copy and the improved valid-packets-only copy (Figures 7 and 9);
- :mod:`~repro.gluefm.backing` — per-process pageable backing store;
- :mod:`~repro.gluefm.env` — the environment-variable hand-off that
  replaces the GRM/CM round trips at process start (Figure 2).
"""

from repro.gluefm.api import GlueFM
from repro.gluefm.backing import BackingStore
from repro.gluefm.flush import FlushProtocol
from repro.gluefm.switch import FullCopy, SwitchAlgorithm, SwitchReport, ValidOnlyCopy

__all__ = [
    "BackingStore",
    "FlushProtocol",
    "FullCopy",
    "GlueFM",
    "SwitchAlgorithm",
    "SwitchReport",
    "ValidOnlyCopy",
]
