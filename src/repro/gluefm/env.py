"""Environment-variable hand-off from noded to the forked process.

"We modified FM_initialize to obtain the data it needs (such as its rank
in the job and its context on the LANai) from special environment
variables that are set up in advance by the noded, instead of trying to
get them from the GRM and CM.  The actual format of these environment
variables is set by the COMM_init_job function" (Section 3.2).

This module defines that format.  It is deliberately string-typed: the
real mechanism is ``environ``, and round-tripping through strings keeps
the simulation honest about what information actually crosses the
fork boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigError

_PREFIX = "FM_"


@dataclass(frozen=True)
class ProcessEnvironment:
    """Decoded view of the FM_* variables a forked process receives."""

    job_id: int
    rank: int
    rank_to_node: dict[int, int]
    sync_fd: int

    @property
    def num_procs(self) -> int:
        return len(self.rank_to_node)


def build_environment(job_id: int, rank: int, rank_to_node: Mapping[int, int],
                      sync_fd: int) -> dict[str, str]:
    """Encode job identity into FM_* environment variables."""
    if rank not in rank_to_node:
        raise ConfigError(f"rank {rank} absent from rank_to_node")
    nodes = ",".join(f"{r}:{n}" for r, n in sorted(rank_to_node.items()))
    return {
        f"{_PREFIX}JOB_ID": str(job_id),
        f"{_PREFIX}RANK": str(rank),
        f"{_PREFIX}NODES": nodes,
        f"{_PREFIX}SYNC_FD": str(sync_fd),
    }


def parse_environment(env: Mapping[str, str]) -> ProcessEnvironment:
    """Decode what FM_initialize reads (raises ConfigError on bad env)."""
    try:
        job_id = int(env[f"{_PREFIX}JOB_ID"])
        rank = int(env[f"{_PREFIX}RANK"])
        sync_fd = int(env[f"{_PREFIX}SYNC_FD"])
        nodes_raw = env[f"{_PREFIX}NODES"]
    except KeyError as missing:
        raise ConfigError(f"FM environment variable missing: {missing}") from None
    except ValueError as bad:
        raise ConfigError(f"malformed FM environment: {bad}") from None
    rank_to_node: dict[int, int] = {}
    for part in nodes_raw.split(","):
        r_str, _, n_str = part.partition(":")
        try:
            rank_to_node[int(r_str)] = int(n_str)
        except ValueError:
            raise ConfigError(f"malformed FM_NODES entry {part!r}") from None
    if rank not in rank_to_node:
        raise ConfigError(f"FM_RANK {rank} not present in FM_NODES")
    return ProcessEnvironment(job_id=job_id, rank=rank,
                              rank_to_node=rank_to_node, sync_fd=sync_fd)
