"""The glueFM API — Table 1 of the paper.

One ``GlueFM`` instance is linked into each noded.  The eight entry
points split into three groups:

===================  =====================================================
Initialisation       ``COMM_init_node``, ``COMM_add_node``,
                     ``COMM_remove_node``
Process control      ``COMM_init_job``, ``COMM_end_job``
Context switching    ``COMM_halt_network``, ``COMM_context_switch``,
                     ``COMM_release_network``
===================  =====================================================

The context-switch trio implements the paper's three-stage switch: flush
the network (Fig. 3), swap the buffers (Figs. 7/9), release the network.
Functions with simulated cost are generators to be driven with ``yield
from`` inside a noded process; each returns a small report the caller can
time and aggregate.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ProtocolError
from repro.fm.buffers import BufferPolicy
from repro.fm.config import FMConfig
from repro.fm.context import FMContext
from repro.fm.firmware import LanaiFirmware
from repro.gluefm.backing import BackingStore
from repro.gluefm.env import build_environment
from repro.gluefm.flush import FlushProtocol
from repro.gluefm.switch import SwitchAlgorithm, SwitchReport, ValidOnlyCopy
from repro.hardware.network import MyrinetFabric
from repro.hardware.node import HostNode
from repro.sim.core import Simulator
from repro.sim.trace import NullTracer, Tracer
from repro.units import US


class GlueFM:
    """Network-management library instance for one node."""

    #: host cost of allocating a context and preparing the environment
    INIT_JOB_TIME = 60 * US
    #: host cost of tearing a context down
    END_JOB_TIME = 40 * US

    def __init__(self, sim: Simulator, node: HostNode, fabric: MyrinetFabric,
                 config: FMConfig, switch_algorithm: Optional[SwitchAlgorithm] = None,
                 tracer: Optional[Tracer] = None, strict_no_loss: bool = False,
                 firmware_class: Optional[type] = None,
                 firmware_kwargs: Optional[dict] = None,
                 policy_engine=None):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.config = config
        self.switch_algorithm = (switch_algorithm if switch_algorithm is not None
                                 else ValidOnlyCopy())
        self.tracer = tracer if tracer is not None else NullTracer()
        self.strict_no_loss = strict_no_loss
        #: Control-program variant to load at COMM_init_node (the
        #: reliability layer substitutes ReliableFirmware here).
        self.firmware_class = (firmware_class if firmware_class is not None
                               else LanaiFirmware)
        self.firmware_kwargs = dict(firmware_kwargs) if firmware_kwargs else {}
        #: shared PolicyEngine when the buffer policy is dynamic (one per
        #: cluster — reallocation plans span all nodes); None otherwise
        self.policy_engine = policy_engine
        self.firmware: Optional[LanaiFirmware] = None
        self.flush: Optional[FlushProtocol] = None
        self.backing = BackingStore(now=lambda: sim.now)
        self._contexts: dict[int, FMContext] = {}  # job_id -> context on this node

    # ------------------------------------------------------------------ init
    def COMM_init_node(self, participants: Sequence[int]) -> None:
        """Load the LANai control program; set topology and routing.

        Called once when the noded starts.  ``participants`` is the set
        of worker nodes taking part in the flush protocol (all nodes of
        the cluster partition, this node included).
        """
        if self.firmware is not None:
            raise ProtocolError(f"node {self.node.node_id}: COMM_init_node called twice")
        self.firmware = self.firmware_class(
            self.sim, self.node.nic, self.fabric, self.config,
            tracer=self.tracer, strict_no_loss=self.strict_no_loss,
            **self.firmware_kwargs)
        self.flush = FlushProtocol(self.sim, self.firmware, participants,
                                   tracer=self.tracer)

    def COMM_add_node(self, node_id: int) -> None:
        """Topology update: a node joined the partition."""
        self._require_init()
        self.flush.add_node(node_id)

    def COMM_remove_node(self, node_id: int) -> None:
        """Topology update: a node left the partition."""
        self._require_init()
        self.flush.remove_node(node_id)

    def _require_init(self) -> None:
        if self.firmware is None or self.flush is None:
            raise ProtocolError(
                f"node {self.node.node_id}: COMM_init_node has not been called"
            )

    # ------------------------------------------------------------------ process control
    def COMM_init_job(self, job_id: int, rank: int, rank_to_node: Mapping[int, int],
                      policy: BufferPolicy, sync_fd: int = 3, install: bool = True):
        """Allocate a context and prepare the FM_* environment (a generator).

        Called by the noded *before forking* the process, so that packets
        arriving early can already be received into the (physical) queue.
        ``install=False`` creates the context stored — used for jobs whose
        gang slot is not the active one; their context is installed by the
        buffer switch when the slot first runs.

        Returns ``(context, env)`` where env is the environment-variable
        dict the noded transfers to the forked process.
        """
        self._require_init()
        if job_id in self._contexts:
            raise ProtocolError(f"job {job_id} already initialised on node "
                                f"{self.node.node_id}")
        yield self.node.cpu.busy(self.INIT_JOB_TIME)
        ctx = FMContext.create(self.sim, self.node.node_id, job_id, rank,
                               rank_to_node, self.config, policy)
        if self.policy_engine is not None:
            self.policy_engine.register(ctx)
        if install:
            self.firmware.install_context(ctx)
        self._contexts[job_id] = ctx
        env = build_environment(job_id, rank, rank_to_node, sync_fd)
        self.tracer.record("init-job", node=self.node.node_id, job=job_id,
                           rank=rank, installed=install)
        return ctx, env

    def COMM_end_job(self, job_id: int):
        """Tear down a finished job's context (a generator)."""
        self._require_init()
        ctx = self._contexts.pop(job_id, None)
        if ctx is None:
            raise ProtocolError(f"job {job_id} not initialised on node "
                                f"{self.node.node_id}")
        yield self.node.cpu.busy(self.END_JOB_TIME)
        if self.firmware.installed_context(job_id) is ctx:
            self.firmware.remove_context(ctx)
        if self.policy_engine is not None:
            self.policy_engine.forget(job_id, self.node.node_id)
        self.firmware.forget_job(job_id)
        self.backing.discard(job_id)   # stored-at-death jobs leave an image
        self.tracer.record("end-job", node=self.node.node_id, job=job_id)

    def has_job(self, job_id: int) -> bool:
        """Is a context initialised (installed or stored) for this job?"""
        return job_id in self._contexts

    def page_out_installed(self) -> list[int]:
        """Crash path: save every installed context to the backing store.

        Called by the noded at fail-stop, *before* the NIC powers off,
        so the stored images fingerprint the queues exactly as they were
        at the moment of death; reintegration restore-verifies against
        these (contexts already stored have images from their last
        switch-out).  Synchronous — death does not pay copy costs.
        Returns the paged-out job ids.
        """
        self._require_init()
        saved = []
        for job_id in sorted(self._contexts):
            ctx = self._contexts[job_id]
            if self.firmware.installed_context(job_id) is ctx:
                self.firmware.remove_context(ctx)
                self.backing.save(ctx)
                saved.append(job_id)
        if saved:
            self.tracer.record("page-out", node=self.node.node_id, jobs=saved)
        return saved

    def context_of(self, job_id: int) -> FMContext:
        try:
            return self._contexts[job_id]
        except KeyError:
            raise ProtocolError(f"job {job_id} not initialised on node "
                                f"{self.node.node_id}") from None

    # ------------------------------------------------------------------ context switch
    def COMM_halt_network(self):
        """Stage 1: stop sending and run the global flush protocol.

        A generator; returns the stage duration in seconds.  The caller
        must already have SIGSTOPped the running user process.
        """
        self._require_init()
        start = self.sim.now
        self.node.nic.set_halt_bit()
        self.tracer.record("nic-halt", node=self.node.node_id)
        yield self.flush.begin_flush()
        return self.sim.now - start

    def COMM_context_switch(self, out_job: Optional[int], in_job: Optional[int],
                            sequence: Optional[int] = None):
        """Stage 2: swap buffer contents (a generator returning SwitchReport).

        ``out_job``/``in_job`` may be None for idle slots.  The network
        must be flushed (stage 1) before this is called.  ``sequence`` is
        the masterd switch sequence number; under a dynamic buffer policy
        it keys the cluster-wide reallocation plan (computed once per
        sequence, applied by every node between its copy-out and
        install — the only point a context's buffer footprint may change).
        """
        self._require_init()
        if self.flush is not None and not self.flush.is_flushed:
            raise ProtocolError("COMM_context_switch before the network was flushed")
        out_ctx = self._contexts[out_job] if out_job is not None else None
        in_ctx = self._contexts[in_job] if in_job is not None else None
        if out_ctx is not None and self.firmware.installed_context(out_job) is not out_ctx:
            raise ProtocolError(f"outgoing job {out_job} is not the installed context")

        if out_ctx is not None:
            self.firmware.remove_context(out_ctx)
        report = yield from self.switch_algorithm.run(self.node, out_ctx, in_ctx,
                                                      self.backing)
        if self.policy_engine is not None:
            self.policy_engine.on_context_switch(self.node.node_id, sequence,
                                                 out_job, in_job)
        if in_ctx is not None:
            self.firmware.install_context(in_ctx)
        self.tracer.record("buffer-switch", node=self.node.node_id,
                           out_job=out_job, in_job=in_job,
                           duration=report.duration,
                           out_send_valid=report.out_send_valid,
                           out_recv_valid=report.out_recv_valid)
        return report

    def COMM_release_network(self):
        """Stage 3: synchronise with all nodes and restart sending.

        A generator; returns the stage duration in seconds.  Only after
        every node reports READY is the halt bit cleared.
        """
        self._require_init()
        start = self.sim.now
        yield self.flush.begin_release()
        self.node.nic.clear_halt_bit()
        self.tracer.record("nic-release", node=self.node.node_id)
        self.firmware.wake()
        return self.sim.now - start
