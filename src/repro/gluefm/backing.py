"""Pageable backing store for switched-out communication state.

"The communication state of other processes is stored temporarily in
pageable buffers residing in each process's virtual memory" (Section 1).

In the simulation the packets themselves stay inside the context's queue
objects while the context is STORED (the firmware only serves installed
contexts, so they are unreachable — exactly like bytes parked in a
process's virtual memory).  What the backing store adds is *integrity
accounting*: at save time it fingerprints the queue contents, and at
restore time verifies that exactly the saved packets come back.  Any
packet lost or invented across a switch trips
:class:`~repro.errors.ContextSwitchError` — the no-loss guarantee the
paper claims ("withstood thorough testing without packet loss") becomes a
checked invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ContextSwitchError
from repro.fm.context import FMContext


@dataclass(frozen=True)
class SavedImage:
    """Fingerprint of one context's buffers at save time."""

    job_id: int
    send_seqs: tuple
    recv_seqs: tuple
    send_bytes: int
    recv_bytes: int
    saved_at: float

    @property
    def send_packets(self) -> int:
        return len(self.send_seqs)

    @property
    def recv_packets(self) -> int:
        return len(self.recv_seqs)

    @property
    def total_packets(self) -> int:
        return len(self.send_seqs) + len(self.recv_seqs)

    @property
    def total_bytes(self) -> int:
        return self.send_bytes + self.recv_bytes


class BackingStore:
    """Per-node registry of saved context images."""

    def __init__(self, now):
        self._now = now  # clock callable
        self._images: dict[int, SavedImage] = {}
        self.saves = 0
        self.restores = 0

    def save(self, ctx: FMContext) -> SavedImage:
        """Record the context's buffer contents at switch-out."""
        if ctx.job_id in self._images:
            raise ContextSwitchError(
                f"job {ctx.job_id} saved twice without an intervening restore"
            )
        image = SavedImage(
            job_id=ctx.job_id,
            send_seqs=tuple(p.seq for p in ctx.send_queue.snapshot()),
            recv_seqs=tuple(p.seq for p in ctx.recv_queue.snapshot()),
            send_bytes=ctx.send_queue.valid_bytes,
            recv_bytes=ctx.recv_queue.valid_bytes,
            saved_at=self._now(),
        )
        self._images[ctx.job_id] = image
        self.saves += 1
        ctx.stats.store_count += 1
        return image

    def restore(self, ctx: FMContext) -> SavedImage:
        """Verify and consume the saved image at switch-in."""
        image = self._images.pop(ctx.job_id, None)
        if image is None:
            raise ContextSwitchError(f"no saved image for job {ctx.job_id}")
        send_now = tuple(p.seq for p in ctx.send_queue.snapshot())
        recv_now = tuple(p.seq for p in ctx.recv_queue.snapshot())
        if send_now != image.send_seqs or recv_now != image.recv_seqs:
            raise ContextSwitchError(
                f"job {ctx.job_id}: buffer contents changed while stored "
                f"(send {len(image.send_seqs)}->{len(send_now)} pkts, "
                f"recv {len(image.recv_seqs)}->{len(recv_now)} pkts)"
            )
        self.restores += 1
        ctx.stats.restore_count += 1
        return image

    def discard(self, job_id: int) -> bool:
        """Drop a residual image without restoring it.

        Teardown path for jobs that die while stored (a rank's node was
        evicted): the image describes buffers that will never be switched
        back in.  Returns whether anything was dropped.
        """
        return self._images.pop(job_id, None) is not None

    def has_image(self, job_id: int) -> bool:
        return job_id in self._images

    def image_of(self, job_id: int) -> SavedImage:
        try:
            return self._images[job_id]
        except KeyError:
            raise ContextSwitchError(f"no saved image for job {job_id}") from None
