"""The network flush protocol — Figure 3's state machine.

Before buffers can be swapped the network must be empty: no packet may be
in flight toward a context that is about to be switched out.  Each NIC

1. stops transmitting on a packet boundary (the noded sets the halt bit),
2. broadcasts a HALT control packet to every other participant ("I will
   send no more"), via a serial loop since Myrinet has no broadcast, and
3. collects HALT packets from all p-1 peers.

Because FM uses one fixed route per pair and Myrinet is FIFO, a HALT
arrives after every data packet its sender emitted — so once all HALTs
are in, nothing more can arrive.  The *local* halt and the *arriving*
halts interleave arbitrarily (nodes are not synchronised); the state is
(S|H, k): S/H = still-sending / locally-halted, k = halted nodes known
of, counting ourselves — exactly the paper's Figure 3.

Releasing after the switch uses the identical protocol with READY
packets: broadcast readiness, collect p-1 READYs, only then re-open the
send gate.

Rounds repeat every gang quantum.  Counters are cumulative: a fast
neighbour's HALT for round r+1 may land before this node even begins
round r+1 (an "ah" edge from an S,0-equivalent state), and must be
banked, never lost.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ProtocolError
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.sim.core import Event, Simulator
from repro.sim.trace import NullTracer, Tracer


class FlushProtocol:
    """Halt/release coordination for one NIC."""

    def __init__(self, sim: Simulator, firmware: LanaiFirmware,
                 participants: Iterable[int], tracer: Optional[Tracer] = None):
        self.sim = sim
        self.firmware = firmware
        self.tracer = tracer if tracer is not None else NullTracer()
        self._participants: set[int] = set(participants)
        me = firmware.nic.node_id
        if me not in self._participants:
            raise ProtocolError(f"node {me} must be among the flush participants")
        # Cumulative counters (see module docstring).
        self._halts_received = 0
        self._readys_received = 0
        self._halt_round = 0
        self._ready_round = 0
        self._flush_event: Optional[Event] = None
        self._release_event: Optional[Event] = None
        firmware.register_control_handler(PacketType.HALT, self._on_halt)
        firmware.register_control_handler(PacketType.READY, self._on_ready)

    # ------------------------------------------------------------------ topology
    @property
    def participants(self) -> list[int]:
        return sorted(self._participants)

    @property
    def peers(self) -> int:
        return len(self._participants) - 1

    def add_node(self, node_id: int) -> None:
        if self._flush_event is not None or self._release_event is not None:
            raise ProtocolError("cannot change topology mid-flush")
        self._participants.add(node_id)

    def remove_node(self, node_id: int) -> None:
        if self._flush_event is not None or self._release_event is not None:
            raise ProtocolError("cannot change topology mid-flush")
        if node_id == self.firmware.nic.node_id:
            raise ProtocolError("a node cannot remove itself from the flush set")
        self._participants.discard(node_id)

    # ------------------------------------------------------------------ state (Fig. 3)
    @property
    def state(self) -> tuple[str, int]:
        """Current (S|H, k) state of the in-progress round.

        ``k`` counts halted nodes we know of, including ourselves once we
        halted locally.

        Audited arithmetic (the "ah-before-lh" edge): ``_halts_received``
        is cumulative, so the in-round count subtracts the ``peers *
        (round-1)`` halts that completed earlier rounds — deliberately
        *not* ``peers * round``, which ``_check_flush`` compares against:
        that is the completion threshold of the round in progress, not
        the floor of halts already consumed.  The ``min(..., peers)`` cap
        is load-bearing, not cosmetic: a fast neighbour's round-r+1 HALT
        can land while our round r is still releasing (``_flush_event``
        remains set until release completes), pushing the cumulative
        count past this round's quota; the excess is *banked* for the
        next round, and must not be reported as part of this one — the
        paper's Figure 3 has no state beyond (H, p).  Symmetrically the
        S-state bank below cannot go negative: round r only completes
        once ``_halts_received >= peers * r``, so after completion the
        difference is the (non-negative) early-arrival surplus.  The
        property test in tests/property/test_flush_properties.py replays
        this edge across rounds and asserts 0 <= k <= p throughout.
        """
        in_round_halts = self._halts_received - self.peers * max(0, self._halt_round - 1)
        if self._flush_event is not None:
            return ("H", min(in_round_halts, self.peers) + 1)
        # Not yet locally halted for the next round: banked halts only.
        banked = self._halts_received - self.peers * self._halt_round
        return ("S", max(0, banked))

    @property
    def is_flushed(self) -> bool:
        return self._flush_event is not None and self._flush_event.triggered

    # ------------------------------------------------------------------ flush
    def begin_flush(self) -> Event:
        """Local halt ('lh' transition): the halt bit is already set.

        Broadcasts HALT to all peers and returns an event that triggers
        when every peer's HALT has been collected — the network is then
        guaranteed silent toward this node.
        """
        if self._flush_event is not None:
            raise ProtocolError("flush already in progress")
        if self._halt_round != self._ready_round:
            raise ProtocolError("previous round's release never completed")
        if not self.firmware.nic.halted:
            raise ProtocolError("begin_flush before the halt bit was set")
        self._halt_round += 1
        self._flush_event = Event(self.sim)
        self.tracer.record("flush-local-halt", node=self.firmware.nic.node_id,
                           round=self._halt_round, state=self.state)
        self.firmware.broadcast_control(PacketType.HALT, self._participants)
        self._check_flush()
        return self._flush_event

    def _on_halt(self, packet: Packet) -> None:
        if packet.src_node not in self._participants:
            raise ProtocolError(f"HALT from non-participant {packet.src_node}")
        self._halts_received += 1
        self.tracer.record("flush-halt-arrived", node=self.firmware.nic.node_id,
                           src=packet.src_node, state=self.state)
        self._check_flush()

    def _check_flush(self) -> None:
        ev = self._flush_event
        if ev is None or ev.triggered:
            return
        if self._halts_received >= self.peers * self._halt_round:
            # State (H, p): everyone halted; the network is flushed.
            self.tracer.record("flush-complete", node=self.firmware.nic.node_id,
                               round=self._halt_round)
            ev.succeed()

    # ------------------------------------------------------------------ release
    def begin_release(self) -> Event:
        """Broadcast READY; the event triggers when all peers are ready.

        The caller re-opens the halt gate only after this event — sending
        into a node that has not finished its buffer switch would deliver
        packets to the wrong context.
        """
        if self._flush_event is None or not self._flush_event.triggered:
            raise ProtocolError("release before flush completed")
        if self._release_event is not None:
            raise ProtocolError("release already in progress")
        self._ready_round += 1
        event = self._release_event = Event(self.sim)
        self.firmware.broadcast_control(PacketType.READY, self._participants)
        self._check_release()
        return event

    def _on_ready(self, packet: Packet) -> None:
        if packet.src_node not in self._participants:
            raise ProtocolError(f"READY from non-participant {packet.src_node}")
        self._readys_received += 1
        self._check_release()

    def _check_release(self) -> None:
        ev = self._release_event
        if ev is None or ev.triggered:
            return
        if self._readys_received >= self.peers * self._ready_round:
            self.tracer.record("release-complete", node=self.firmware.nic.node_id,
                               round=self._ready_round)
            ev.succeed()
            # Round fully over; allow the next begin_flush.
            self._flush_event = None
            self._release_event = None
