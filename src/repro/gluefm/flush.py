"""The network flush protocol — Figure 3's state machine.

Before buffers can be swapped the network must be empty: no packet may be
in flight toward a context that is about to be switched out.  Each NIC

1. stops transmitting on a packet boundary (the noded sets the halt bit),
2. broadcasts a HALT control packet to every other participant ("I will
   send no more"), via a serial loop since Myrinet has no broadcast, and
3. collects HALT packets from all p-1 peers.

Because FM uses one fixed route per pair and Myrinet is FIFO, a HALT
arrives after every data packet its sender emitted — so once all HALTs
are in, nothing more can arrive.  The *local* halt and the *arriving*
halts interleave arbitrarily (nodes are not synchronised); the state is
(S|H, k): S/H = still-sending / locally-halted, k = halted nodes known
of, counting ourselves — exactly the paper's Figure 3.

Releasing after the switch uses the identical protocol with READY
packets: broadcast readiness, collect p-1 READYs, only then re-open the
send gate.

Rounds repeat every gang quantum.  Counters are cumulative **per
sender**: a fast neighbour's HALT for round r+1 may land before this
node even begins round r+1 (an "ah" edge from an S,0-equivalent state),
and must be banked, never lost.  Per-sender accounting (rather than one
aggregate counter) is what makes the recovery path sound: when the
masterd evicts a fail-stopped node mid-flush, :meth:`force_remove_node`
discards exactly that sender's column and re-evaluates completion over
the survivors — an aggregate count could not tell whose halts it was
still waiting for.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ProtocolError
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.sim.core import Event, Simulator
from repro.sim.trace import NullTracer, Tracer


class FlushProtocol:
    """Halt/release coordination for one NIC."""

    def __init__(self, sim: Simulator, firmware: LanaiFirmware,
                 participants: Iterable[int], tracer: Optional[Tracer] = None):
        self.sim = sim
        self.firmware = firmware
        self.tracer = tracer if tracer is not None else NullTracer()
        self._participants: set[int] = set(participants)
        me = firmware.nic.node_id
        if me not in self._participants:
            raise ProtocolError(f"node {me} must be among the flush participants")
        # Cumulative per-sender counters (see module docstring).
        self._halts_from: dict[int, int] = {}
        self._readys_from: dict[int, int] = {}
        self._halt_round = 0
        self._ready_round = 0
        self._flush_event: Optional[Event] = None
        self._release_event: Optional[Event] = None
        #: HALT/READY packets from nodes outside the participant set —
        #: in-flight control from an evicted node, tolerated and counted
        #: rather than raised (the sender is dead; nobody can apologise).
        self.stale_control = 0
        #: participants discarded by :meth:`force_remove_node` while a
        #: round was in progress (recovery-epoch diagnostics).
        self.forced_removals = 0
        firmware.register_control_handler(PacketType.HALT, self._on_halt)
        firmware.register_control_handler(PacketType.READY, self._on_ready)

    # ------------------------------------------------------------------ topology
    @property
    def participants(self) -> list[int]:
        return sorted(self._participants)

    @property
    def peers(self) -> int:
        return len(self._participants) - 1

    def add_node(self, node_id: int) -> None:
        if self._flush_event is not None or self._release_event is not None:
            raise ProtocolError("cannot change topology mid-flush")
        self._participants.add(node_id)

    def remove_node(self, node_id: int) -> None:
        if self._flush_event is not None or self._release_event is not None:
            raise ProtocolError("cannot change topology mid-flush")
        if node_id == self.firmware.nic.node_id:
            raise ProtocolError("a node cannot remove itself from the flush set")
        self._participants.discard(node_id)
        self._halts_from.pop(node_id, None)
        self._readys_from.pop(node_id, None)

    def force_remove_node(self, node_id: int) -> None:
        """Evict a fail-stopped participant, even mid-flush.

        The cooperative :meth:`remove_node` refuses topology changes while
        a round is in progress because a live node's HALTs may already be
        counted.  Eviction is different: the masterd has declared the node
        dead, its HALT will never come, and every survivor would otherwise
        wait forever.  Dropping the dead sender's columns and re-checking
        completion over the survivors is exactly correct under per-sender
        accounting — the survivors' own counts are untouched.
        """
        if node_id == self.firmware.nic.node_id:
            raise ProtocolError("a node cannot evict itself from the flush set")
        if node_id not in self._participants:
            return  # already gone (duplicate eviction notice)
        self._participants.discard(node_id)
        self._halts_from.pop(node_id, None)
        self._readys_from.pop(node_id, None)
        self.forced_removals += 1
        self.tracer.record("flush-force-remove", node=self.firmware.nic.node_id,
                           removed=node_id, round=self._halt_round,
                           mid_flush=self._flush_event is not None)
        # The dead node may have been the only missing sender.
        self._check_flush()
        self._check_release()

    def abandon_round(self) -> None:
        """Fail-stop path: this node's daemon died mid-round.

        Discards any in-progress flush/release events without completing
        them — the interrupted switch process will never look at them —
        so that the recovery-epoch :meth:`reset` at reintegration finds
        an idle protocol.  Counters are left alone; only ``reset`` may
        reconcile ``_halt_round`` with ``_ready_round``.
        """
        self._flush_event = None
        self._release_event = None

    def reset(self, participants: Iterable[int]) -> None:
        """Recovery-epoch reset: new participant set, all counters zeroed.

        Used at node reintegration: a rejoined node's round counters are
        arbitrarily far behind its peers' (it was dead), so the masterd
        resets *every* participant to round zero while no flush is in
        flight — masterd op serialisation guarantees that window.
        """
        if self._flush_event is not None or self._release_event is not None:
            raise ProtocolError("cannot reset the flush protocol mid-round")
        new = set(participants)
        if self.firmware.nic.node_id not in new:
            raise ProtocolError(
                f"node {self.firmware.nic.node_id} must be among the flush "
                "participants")
        self._participants = new
        self._halts_from.clear()
        self._readys_from.clear()
        self._halt_round = 0
        self._ready_round = 0
        self.tracer.record("flush-reset", node=self.firmware.nic.node_id,
                           participants=sorted(new))

    # ------------------------------------------------------------------ state (Fig. 3)
    @property
    def _halts_received(self) -> int:
        """Aggregate cumulative HALT count (diagnostic view)."""
        return sum(self._halts_from.values())

    @property
    def _readys_received(self) -> int:
        return sum(self._readys_from.values())

    @property
    def state(self) -> tuple[str, int]:
        """Current (S|H, k) state of the in-progress round.

        ``k`` counts halted nodes we know of, including ourselves once we
        halted locally.

        Audited arithmetic (the "ah-before-lh" edge): counts are
        cumulative per sender, so a peer is "halted this round" exactly
        when its count has reached ``_halt_round`` — a fast neighbour's
        round-r+1 HALT raises its count *past* the current round without
        being reported twice, which is the banking the aggregate-counter
        formulation needed a ``min(..., peers)`` cap for.  In the S state
        the bank is the surplus above completed rounds, summed over
        senders; it cannot go negative because round r only completes
        once every sender reached r.  The paper's Figure 3 has no state
        beyond (H, p), and the property test in
        tests/property/test_flush_properties.py replays the edge across
        rounds asserting 0 <= k <= p throughout.
        """
        if self._flush_event is not None:
            round_ = self._halt_round
            halted_peers = sum(1 for n in self._participants
                               if n != self.firmware.nic.node_id
                               and self._halts_from.get(n, 0) >= round_)
            return ("H", halted_peers + 1)
        # Not yet locally halted for the next round: banked halts only.
        banked = sum(max(0, count - self._halt_round)
                     for count in self._halts_from.values())
        return ("S", banked)

    @property
    def is_flushed(self) -> bool:
        return self._flush_event is not None and self._flush_event.triggered

    # ------------------------------------------------------------------ flush
    def begin_flush(self) -> Event:
        """Local halt ('lh' transition): the halt bit is already set.

        Broadcasts HALT to all peers and returns an event that triggers
        when every peer's HALT has been collected — the network is then
        guaranteed silent toward this node.
        """
        if self._flush_event is not None:
            raise ProtocolError("flush already in progress")
        if self._halt_round != self._ready_round:
            raise ProtocolError("previous round's release never completed")
        if not self.firmware.nic.halted:
            raise ProtocolError("begin_flush before the halt bit was set")
        self._halt_round += 1
        self._flush_event = Event(self.sim)
        self.tracer.record("flush-local-halt", node=self.firmware.nic.node_id,
                           round=self._halt_round, state=self.state)
        self.firmware.broadcast_control(PacketType.HALT, self._participants)
        self._check_flush()
        return self._flush_event

    def _on_halt(self, packet: Packet) -> None:
        if packet.src_node not in self._participants:
            # In-flight HALT from a node evicted out from under us (or
            # one we never knew): count it, never wedge on it.
            self.stale_control += 1
            self.tracer.record("flush-stale-halt",
                               node=self.firmware.nic.node_id,
                               src=packet.src_node)
            return
        self._halts_from[packet.src_node] = \
            self._halts_from.get(packet.src_node, 0) + 1
        self.tracer.record("flush-halt-arrived", node=self.firmware.nic.node_id,
                           src=packet.src_node, state=self.state)
        self._check_flush()

    def _check_flush(self) -> None:
        ev = self._flush_event
        if ev is None or ev.triggered:
            return
        me = self.firmware.nic.node_id
        round_ = self._halt_round
        if all(self._halts_from.get(n, 0) >= round_
               for n in self._participants if n != me):
            # State (H, p): everyone halted; the network is flushed.
            self.tracer.record("flush-complete", node=self.firmware.nic.node_id,
                               round=round_)
            ev.succeed()

    # ------------------------------------------------------------------ release
    def begin_release(self) -> Event:
        """Broadcast READY; the event triggers when all peers are ready.

        The caller re-opens the halt gate only after this event — sending
        into a node that has not finished its buffer switch would deliver
        packets to the wrong context.
        """
        if self._flush_event is None or not self._flush_event.triggered:
            raise ProtocolError("release before flush completed")
        if self._release_event is not None:
            raise ProtocolError("release already in progress")
        self._ready_round += 1
        event = self._release_event = Event(self.sim)
        self.firmware.broadcast_control(PacketType.READY, self._participants)
        self._check_release()
        return event

    def _on_ready(self, packet: Packet) -> None:
        if packet.src_node not in self._participants:
            self.stale_control += 1
            self.tracer.record("flush-stale-ready",
                               node=self.firmware.nic.node_id,
                               src=packet.src_node)
            return
        self._readys_from[packet.src_node] = \
            self._readys_from.get(packet.src_node, 0) + 1
        self._check_release()

    def _check_release(self) -> None:
        ev = self._release_event
        if ev is None or ev.triggered:
            return
        me = self.firmware.nic.node_id
        round_ = self._ready_round
        if all(self._readys_from.get(n, 0) >= round_
               for n in self._participants if n != me):
            self.tracer.record("release-complete", node=self.firmware.nic.node_id,
                               round=round_)
            ev.succeed()
            # Round fully over; allow the next begin_flush.
            self._flush_event = None
            self._release_event = None
