"""Unit constants and conversion helpers.

Simulated time is a ``float`` number of seconds.  All hardware models in
:mod:`repro.hardware` express costs in seconds internally, but the paper
reports context-switch costs in *CPU cycles* of the 200 MHz Pentium-Pro
hosts, so helpers to convert between cycles and seconds live here as well.

Throughput units follow the paper: it quotes "MB/s" for decimal megabytes
(10**6 bytes) per second, and buffer sizes in binary KB/MB.
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

MS = MILLISECOND
US = MICROSECOND
NS = NANOSECOND

# --- sizes (binary, as used for buffer/memory sizes) ---------------------
KiB = 1024
MiB = 1024 * 1024

# --- sizes (decimal, as used for link/memory bandwidth) ------------------
KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count at ``clock_hz`` into seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> int:
    """Convert a duration in seconds into a whole number of cycles.

    Rounds to nearest so that converting a cost model's float duration
    back into cycles reproduces the intended count.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return int(round(seconds * clock_hz))


def bytes_per_second(nbytes: float, seconds: float) -> float:
    """Throughput in bytes/second; 0.0 for a zero-length interval."""
    if seconds <= 0:
        return 0.0
    return nbytes / seconds


def mb_per_second(nbytes: float, seconds: float) -> float:
    """Throughput in decimal MB/s, the unit used in the paper's figures."""
    return bytes_per_second(nbytes, seconds) / MB


def transfer_time(nbytes: float, rate_bytes_per_s: float) -> float:
    """Time to move ``nbytes`` at ``rate_bytes_per_s`` (seconds)."""
    if rate_bytes_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return nbytes / rate_bytes_per_s
