"""A minimal MPI-style layer over FM.

The paper notes that applications typically sit above FM: "if the process
uses a higher level communication system, such as MPI, it calls
MPI_initialize, and MPI_initialize calls FM_initialize" (Section 3.2).
This package provides that higher level — tagged point-to-point
operations with MPI's unexpected-message semantics and a set of
tree-based collectives — entirely on top of :class:`repro.fm.api.FMLibrary`,
so MPI-shaped workloads can run under the gang scheduler and exercise the
buffer-switching machinery exactly as real applications would have.
"""

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator"]
