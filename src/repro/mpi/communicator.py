"""Tagged point-to-point and collectives over FM.

Semantics follow MPI where it matters for correctness studies:

- ``recv`` matches on (source, tag), either of which may be the ANY_*
  wildcard; non-matching arrivals are buffered in an *unexpected-message
  queue* and matched by later receives, preserving per-(source, tag)
  order;
- collectives are deterministic algorithms over point-to-point messages
  (dissemination barrier, binomial-tree broadcast/reduce), each using a
  reserved tag space so they never interfere with application traffic;
- payloads are opaque Python objects riding the simulated bytes —
  ``reduce`` applies a user-supplied operator to them, defaulting to
  ``operator.add``.

All operations are generators to be driven with ``yield from`` inside a
simulated process, like the FM calls they wrap.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from repro.errors import ConfigError
from repro.fm.api import FMLibrary, Message
from repro.fm.harness import Endpoint

ANY_SOURCE = -1
ANY_TAG = -1

#: Tags at or above this value are reserved for collective internals.
_COLLECTIVE_TAG_BASE = 1 << 20


class Communicator:
    """MPI-flavoured operations for one rank of one job."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self.library: FMLibrary = endpoint.library
        self._unexpected: list[Message] = []
        self._collective_seq = 0

    # ------------------------------------------------------------------ identity
    @property
    def rank(self) -> int:
        return self.endpoint.rank

    @property
    def size(self) -> int:
        return self.endpoint.context.num_procs

    # ------------------------------------------------------------------ point-to-point
    def send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Blocking tagged send (a generator)."""
        if not 0 <= tag < _COLLECTIVE_TAG_BASE:
            raise ConfigError(f"application tags must be in [0, {_COLLECTIVE_TAG_BASE})")
        yield from self._send_raw(dst, nbytes, tag, payload)

    def _send_raw(self, dst: int, nbytes: int, tag: int, payload: Any):
        yield from self.library.send(dst, nbytes, tag=tag, payload=payload)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking tagged receive (a generator returning a Message).

        Checks the unexpected queue first, then extracts from FM until a
        matching message arrives; everything else is buffered.
        """
        matched = self._match(source, tag)
        if matched is not None:
            return matched
        while True:
            msg = yield from self.library.extract()
            if msg is None:
                continue
            if self._matches(msg, source, tag):
                return msg
            self._unexpected.append(msg)

    def _matches(self, msg: Message, source: int, tag: int) -> bool:
        return ((source == ANY_SOURCE or msg.src_rank == source)
                and (tag == ANY_TAG or msg.tag == tag))

    def _match(self, source: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._unexpected):
            if self._matches(msg, source, tag):
                return self._unexpected.pop(i)
        return None

    @property
    def unexpected_messages(self) -> int:
        return len(self._unexpected)

    def sendrecv(self, dst: int, src: int, nbytes: int, tag: int = 0,
                 payload: Any = None):
        """Combined send+receive (deadlock-free for exchange patterns)."""
        yield from self.send(dst, nbytes, tag, payload)
        msg = yield from self.recv(src, tag)
        return msg

    # ------------------------------------------------------------------ collectives
    def _ctag(self, op_index: int) -> int:
        """A fresh tag for one collective invocation's messages."""
        return _COLLECTIVE_TAG_BASE + self._collective_seq * 8 + op_index

    def _advance(self) -> None:
        self._collective_seq += 1

    def barrier(self):
        """Dissemination barrier: ceil(log2 p) rounds of exchanges.

        No rank returns before every rank has entered.
        """
        p = self.size
        if p == 1:
            self._advance()
            return
        tag = self._ctag(0)
        distance = 1
        while distance < p:
            dst = (self.rank + distance) % p
            src = (self.rank - distance) % p
            yield from self._send_raw(dst, 1, tag + 0, None)
            yield from self.recv(src, tag + 0)
            distance *= 2
        self._advance()

    def bcast(self, value: Any, root: int, nbytes: int = 64):
        """Binomial-tree broadcast; returns the root's value everywhere."""
        p = self.size
        self._check_root(root)
        tag = self._ctag(1)
        vrank = (self.rank - root) % p  # virtual rank with root at 0
        if vrank != 0:
            # Receive from the parent in the binomial tree.
            mask = 1
            while not vrank & mask:
                mask <<= 1
            parent = ((vrank & ~mask) + root) % p
            msg = yield from self.recv(parent, tag)
            value = msg.payload
            start_mask = mask >> 1
        else:
            start_mask = (1 << ((p - 1).bit_length() - 1)) if p > 1 else 0
        # Forward to children: descending masks below our receive mask.
        mask = start_mask
        while mask:
            child_v = vrank | mask
            if child_v < p and child_v != vrank:
                child = (child_v + root) % p
                yield from self._send_raw(child, nbytes, tag, value)
            mask >>= 1
        self._advance()
        return value

    def reduce(self, value: Any, root: int, nbytes: int = 64,
               op: Callable[[Any, Any], Any] = operator.add):
        """Binomial-tree reduction toward ``root``; root gets the result."""
        p = self.size
        self._check_root(root)
        tag = self._ctag(2)
        vrank = (self.rank - root) % p
        acc = value
        mask = 1
        while mask < p:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % p
                yield from self._send_raw(parent, nbytes, tag, acc)
                break
            child_v = vrank | mask
            if child_v < p:
                child = (child_v + root) % p
                msg = yield from self.recv(child, tag)
                acc = op(acc, msg.payload)
            mask <<= 1
        self._advance()
        return acc if self.rank == root else None

    def allreduce(self, value: Any, nbytes: int = 64,
                  op: Callable[[Any, Any], Any] = operator.add):
        """reduce to rank 0 + bcast (keeps collective tags aligned)."""
        reduced = yield from self.reduce(value, root=0, nbytes=nbytes, op=op)
        result = yield from self.bcast(reduced, root=0, nbytes=nbytes)
        return result

    def gather(self, value: Any, root: int, nbytes: int = 64):
        """Everyone's value at the root, indexed by rank."""
        self._check_root(root)
        tag = self._ctag(3)
        if self.rank == root:
            values: dict[int, Any] = {root: value}
            for _ in range(self.size - 1):
                msg = yield from self.recv(ANY_SOURCE, tag)
                values[msg.src_rank] = msg.payload
            self._advance()
            return [values[r] for r in range(self.size)]
        yield from self._send_raw(root, nbytes, tag, value)
        self._advance()
        return None

    def scatter(self, values: Optional[list], root: int, nbytes: int = 64):
        """Root distributes values[r] to each rank r."""
        self._check_root(root)
        tag = self._ctag(4)
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ConfigError("scatter root needs one value per rank")
            for r in range(self.size):
                if r != root:
                    yield from self._send_raw(r, nbytes, tag, values[r])
            self._advance()
            return values[root]
        msg = yield from self.recv(root, tag)
        self._advance()
        return msg.payload

    def alltoall(self, values: list, nbytes: int = 64):
        """values[r] goes to rank r; returns the incoming list by rank."""
        if len(values) != self.size:
            raise ConfigError("alltoall needs one value per rank")
        tag = self._ctag(5)
        incoming: dict[int, Any] = {self.rank: values[self.rank]}
        for offset in range(1, self.size):
            dst = (self.rank + offset) % self.size
            src = (self.rank - offset) % self.size
            yield from self._send_raw(dst, nbytes, tag, values[dst])
            msg = yield from self.recv(src, tag)
            incoming[src] = msg.payload
        self._advance()
        return [incoming[r] for r in range(self.size)]

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ConfigError(f"root {root} out of range for {self.size} ranks")
