"""Simulation clock, event queue, and event types.

The kernel is deterministic: events scheduled for the same instant are
processed in scheduling order (FIFO), using a monotonically increasing
sequence number as the tie-breaker in the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_UNSET = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it and schedules it for processing at the current instant;
    when the kernel processes it, all registered callbacks run and the
    event becomes *processed*.  Yielding an event from a process generator
    suspends the process until the event is processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._post(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._post(self, delay)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Triggers when all constituent events have been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._processed_count: int = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for diagnostics)."""
        return self._processed_count

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self._processed_count += 1
        event._run_callbacks()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget.

        ``until`` is an absolute simulated time; on return ``now`` equals
        ``until`` if the horizon was hit, else the time of the last event.
        ``max_events`` guards against runaway simulations.
        """
        budget = max_events if max_events is not None else float("inf")
        count = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            if count >= budget:
                raise SimulationError(f"run() exceeded max_events={max_events}")
            self.step()
            count += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until_processed(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; returns its value (raises on fail)."""
        budget = max_events if max_events is not None else float("inf")
        count = 0
        while not event.processed:
            if not self._queue:
                raise SimulationError("event queue drained before event triggered (deadlock?)")
            if count >= budget:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            count += 1
        if event._ok is False:
            raise event._value
        return event._value
