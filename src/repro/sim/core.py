"""Simulation clock, indexed event calendar, and event types.

The kernel is deterministic: events scheduled for the same instant are
processed in scheduling order (FIFO), using a monotonically increasing
sequence number as the tie-breaker.  The total dispatch order is always
``(time, seq)``; everything below is an optimisation of that contract,
with :meth:`Simulator.step` kept as the hand-written reference
implementation the fast loops are generated to mirror (and the
step-vs-run oracle in ``tests/property/test_kernel_oracle.py`` pins).

Event-set layout — a three-tier indexed calendar replacing the old
single binary heap:

- **Tier 0, the instant bucket** (``_bucket``/``_bucket_time``/
  ``_bucket_pos``): while the kernel dispatches the batch of events at
  instant *T*, any event scheduled *for T* is appended to a plain list
  and drained by index in the same batch — no heap push, no heap pop,
  no re-comparison.  Same-instant cascades (zero-delay hand-offs,
  immediate-fire events, interrupt pokes) are the dominant pattern in
  the firmware models, and a bucket append+scan is ~4x cheaper than a
  heap round trip.  FIFO within the bucket is free: the global ``_seq``
  counter is monotonic, so append order *is* seq order, and every heap
  entry at *T* predates the bucket (lower seq) and is drained first.
  Because order is positional, bucket entries are stored *bare* — no
  ``(seq, event)`` tuple per entry — except exact-``Process`` entries,
  which keep their push seq for sleep-token/termination matching (see
  :meth:`Simulator._push`).
- **Tier 1, the head slot** (``_head_when``/``_head_seq``/``_head_ev``):
  a one-entry cache holding an entry no later than everything in the
  heap.  A push into an empty calendar — the steady state of the
  single-process benchmarks and of ping-pong protocol phases — fills
  three slots instead of allocating a tuple and sifting a heap; the
  matching pop is three loads.  The invariant (slot ≤ heap minimum in
  ``(when, seq)`` order) is maintained by routing in :meth:`_push`.
- **Tier 2, the overflow heap** (``_queue``): classic ``(when, seq,
  event)`` binary heap for everything scheduled past the head slot.
  Far-future events land here and cost O(log n), exactly as before.

The buckets are plain Python lists, so the calendar "self-resizes" by
construction; there is no bucket-width parameter to tune and therefore
no resize policy that could perturb event order (the determinism
argument is spelled out in EXPERIMENTS.md, "Performance & scaling").

Dispatch machinery:

- The run-loop body used to be hand-copied four times (``run``,
  ``run_until_processed``, and their profiled variants) and kept in
  sync by comment discipline.  It is now a single code template,
  exec-compiled at first use into four specialised loops
  (:func:`_compile_loops`): watch/no-watch x profiled/plain.  A change
  to the dispatch semantics lands once, in the template.
- The overwhelmingly common waiter — a single simulated process parked
  on the event — is stored in a dedicated ``_waiter`` slot and its
  generator is resumed *inline* by the run loop.  Dispatch order is
  preserved: the waiter slot is only used when the callback list is
  empty at wait time, so "waiter first, then list" equals registration
  order.
- Profiled runs use the same generated fast loop with a stride-sampled
  :class:`~repro.telemetry.profiler.KernelProfiler` hook compiled in,
  instead of falling back to per-event generic dispatch; exact event
  counts and wall clock are accounted at loop boundaries.  Profiled and
  unprofiled runs stay bit-identical (the telemetry determinism tests
  pin this).
- :class:`Timeout` *and* plain :class:`Event` objects are recycled
  through free lists: an object that nothing else references once its
  callbacks have run is reset and reused by the next
  :meth:`Simulator.timeout` / :meth:`Simulator.event` call, cutting
  allocation churn on per-packet paths.  Recycling is guarded by
  CPython's reference counts, so an object is only ever reused when no
  caller can observe it.

The run loops are not re-entrant: a callback must not call
:meth:`Simulator.run`/:meth:`Simulator.step` on the same simulator (the
old kernel shared the restriction — its cached ``processed`` counter
and popped-entry locals went stale across nested loops the same way).
"""

from __future__ import annotations

import platform
import sys
import textwrap
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_UNSET = object()
_INF = float("inf")

# Timeout/Event recycling needs exact reference counts; only CPython has them.
_IS_CPYTHON = platform.python_implementation() == "CPython"
_getrefcount = sys.getrefcount if _IS_CPYTHON else None
# Sized so bursts of a few thousand in-flight transient events (the
# 1000-node gang-scheduling scale) recycle fully; worst case both free
# lists pin ~8k small objects (~2 MB) — bounded, never scanned.
_FREE_LIST_CAP = 8192

# Consumed bucket entries are overwritten with None and reclaimed in
# bulk; compact the dead prefix past this length so a long-lived instant
# (a watch-return mid-drain, a months-long t=0 cascade) stays bounded.
_BUCKET_COMPACT = 65536


class _SleepWake:
    """Stand-in 'event' delivered to a process woken from a bare-number
    sleep (``yield delay``): always successful, carries no value.  Lets the
    suspend/defer/resume machinery treat sleep wake-ups like event
    wake-ups without materialising a real Event."""

    __slots__ = ()
    _ok = True
    _value = None


_SLEEP_WAKE = _SleepWake()

# Bound to the Process class by repro.sim.process at import time (the
# import is circular the other way).  Calendar-bucket entries are bare
# events EXCEPT exact-Process entries, which are wrapped as
# ``(seq, process)`` tuples: they are the only entries whose dispatch
# reads the push seq (sleep-token / termination-seq matching).  Until
# process.py is imported no Process objects can exist, so the ``is``
# check against None simply never matches.
_PROC_CLS: Optional[type] = None


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it and schedules it for processing at the current instant;
    when the kernel processes it, all registered callbacks run and the
    event becomes *processed*.  Yielding an event from a process generator
    suspends the process until the event is processed.

    ``_waiter`` is the kernel-internal fast slot: it holds at most one
    :class:`~repro.sim.process.Process` parked on this event (set by the
    process itself, and only while the callback list is empty, which
    keeps dispatch order identical to plain ``add_callback`` use).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_waiter")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._waiter = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Scheduling is inlined (rather than calling
        :meth:`Simulator._push`) because triggering is one of the two
        hottest push sites; keep the routing in sync with ``_push``,
        which is the canonical form.
        """
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        when = sim._now
        if when == sim._bucket_time:
            sim._bucket.append(self)
            return self
        q = sim._queue
        if q and when >= q[0][0]:
            # At or past the heap minimum: cannot displace the slot or
            # tie-open the bucket (see _push) — straight to the heap.
            heappush(q, (when, seq, self))
            return self
        he = sim._head_ev
        if he is None:
            sim._head_when = when
            sim._head_seq = seq
            sim._head_ev = self
        elif when < sim._head_when:
            heappush(sim._queue, (sim._head_when, sim._head_seq, he))
            sim._head_when = when
            sim._head_seq = seq
            sim._head_ev = self
        elif when == sim._head_when and sim._bucket_pos >= len(sim._bucket):
            sim._bucket_time = when
            sim._bucket.append(self)
        else:
            heappush(sim._queue, (when, seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._push(self.sim._now, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        w = self._waiter
        if w is not None and (fn is w or getattr(fn, "__self__", None) is w):
            # The waiter parks either itself or its bound _step here.
            self._waiter = None
            return
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _run_callbacks(self) -> None:
        """Generic (non-inlined) dispatch; kept for external callers."""
        callbacks, self.callbacks = self.callbacks, None
        waiter, self._waiter = self._waiter, None
        if waiter is not None:
            waiter._step(self)
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles processed instances
    through a free list instead of allocating a fresh object per call.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._waiter = None
        self.delay = delay
        sim._push(sim._now + delay, self)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Triggers when all constituent events have been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)


class Simulator:
    """The event loop: a clock plus a three-tier indexed event calendar."""

    __slots__ = ("_now", "_queue", "_seq", "_processed_count",
                 "_free_timeouts", "_free_events", "_profiler",
                 "_bucket", "_bucket_time", "_bucket_pos",
                 "_head_when", "_head_seq", "_head_ev")

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []          # tier 2: overflow heap
        self._seq: int = 0
        self._processed_count: int = 0
        self._free_timeouts: list = []
        self._free_events: list = []
        self._profiler = None
        self._bucket: list = []         # tier 0: events at _bucket_time (exact-Process entries as (seq, proc))
        self._bucket_time: Optional[float] = None
        self._bucket_pos: int = 0       # consumed prefix of _bucket
        self._head_when: float = 0.0    # tier 1: head slot (valid iff _head_ev)
        self._head_seq: int = 0
        self._head_ev = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- profiling --------------------------------------------------------
    @property
    def profiler(self):
        """The attached :class:`~repro.telemetry.profiler.KernelProfiler`.

        The guard is checked once per ``run()`` call (not per event):
        with no profiler attached — or a falsy/disabled one — the plain
        generated loops run untouched, so an unprofiled simulation pays
        nothing.  With a profiler the kernel runs the *profiled*
        specialisation of the same loop template — identical dispatch
        semantics with a sampled ``observe`` hook compiled in — so
        results stay bit-identical (the telemetry determinism tests pin
        this).
        """
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler if profiler else None

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for diagnostics).

        Inside the batched run loops this is refreshed when the loop
        exits, not per event — read it between runs, not from callbacks.
        """
        return self._processed_count

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event.

        Reuses a recycled :class:`Event` when one is available; recycled
        objects are reset at recycle time, so this is a bare pop.
        """
        free = self._free_events
        if free:
            return free.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Reuses a recycled :class:`Timeout` when one is available; the
        recycled object is indistinguishable from a fresh one (recycling
        only happens when no other reference to it exists).  The
        calendar push is inlined — this is the hottest push site; keep
        the routing in sync with :meth:`_push`, the canonical form.
        """
        free = self._free_timeouts
        if not free:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        t = free.pop()
        t.delay = delay
        # _ok is True from construction and can never change on a Timeout
        # (fail() refuses already-valued events), so recycling skips it.
        t._value = value
        seq = self._seq
        self._seq = seq + 1
        when = self._now + delay
        if when == self._bucket_time:
            self._bucket.append(t)
            return t
        q = self._queue
        if q and when >= q[0][0]:
            # At or past the heap minimum: cannot displace the slot or
            # tie-open the bucket (see _push) — straight to the heap.
            heappush(q, (when, seq, t))
            return t
        he = self._head_ev
        if he is None:
            self._head_when = when
            self._head_seq = seq
            self._head_ev = t
        elif when < self._head_when:
            heappush(self._queue, (self._head_when, self._head_seq, he))
            self._head_when = when
            self._head_seq = seq
            self._head_ev = t
        elif when == self._head_when and self._bucket_pos >= len(self._bucket):
            self._bucket_time = when
            self._bucket.append(t)
        else:
            heappush(self._queue, (when, seq, t))
        return t

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _push(self, when: float, event: Event) -> int:
        """Insert ``event`` into the calendar at ``when``; returns its seq.

        The canonical routing: instant bucket if ``when`` is the batch
        instant currently (or most recently) being drained, else the
        head slot when it can hold the calendar minimum, else the
        overflow heap.  Ties on ``when`` go to the heap so the slot
        invariant (slot ≤ heap minimum in ``(when, seq)``) is kept with
        a single float comparison.  :meth:`Event.succeed`,
        :meth:`Simulator.timeout`, and the generated run loops inline
        this routing for speed — keep them in sync.

        Bucket representation: bare events, except exact-``Process``
        entries which are stored as ``(seq, process)`` — dispatch needs
        their push seq for sleep-token / termination matching, and they
        are the only entries that do.  FIFO within the bucket is
        positional (append order), so dropping the seq loses nothing.
        """
        seq = self._seq
        self._seq = seq + 1
        if when == self._bucket_time:
            if event.__class__ is _PROC_CLS:
                self._bucket.append((seq, event))
            else:
                self._bucket.append(event)
            return seq
        q = self._queue
        if q and when >= q[0][0]:
            # At or past the heap minimum: the entry cannot displace the
            # slot (slot <= heap min) and cannot tie-open the bucket out
            # of order (bucket entries at `when` imply ``bucket_time ==
            # when``, handled above).  A tie with the heap minimum stays
            # in seq order among the ties, so dispatch order is the same
            # as the tie-open route — straight to the heap, skipping the
            # slot checks.
            heappush(q, (when, seq, event))
            return seq
        he = self._head_ev
        if he is None:
            # Heap empty or `when` below its minimum (the fast path
            # above took the rest): the slot can hold the minimum.
            self._head_when = when
            self._head_seq = seq
            self._head_ev = event
        elif when < self._head_when:
            heappush(self._queue, (self._head_when, self._head_seq, he))
            self._head_when = when
            self._head_seq = seq
            self._head_ev = event
        elif (when == self._head_when
                and self._bucket_pos >= len(self._bucket)):
            # A push tying the calendar minimum re-keys the bucket at
            # that instant (even a future one, and even mid-drain once
            # every pending entry is consumed): bursts of same-instant
            # events accumulate here in seq order instead of churning
            # the heap.  Safe because every slot/heap entry at `when`
            # predates the open (strictly lower seq) and is drained
            # first, and the drain loop re-checks the key per entry.
            self._bucket_time = when
            if event.__class__ is _PROC_CLS:
                self._bucket.append((seq, event))
            else:
                self._bucket.append(event)
        else:
            heappush(self._queue, (when, seq, event))
        return seq

    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the calendar ``delay`` from now.

        ``delay`` must be non-negative: scheduling into the past would
        silently break clock monotonicity (and the calendar's routing
        invariants, which assume no pending entry precedes ``now``).
        """
        if delay < 0:
            raise SimulationError(f"negative _post delay {delay}")
        self._push(self._now + delay, event)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the calendar is empty."""
        he = self._head_ev
        if he is not None:
            hw = self._head_when
        elif self._queue:
            hw = self._queue[0][0]
        else:
            hw = _INF
        if self._bucket_pos < len(self._bucket):
            bt = self._bucket_time
            return bt if bt < hw else hw
        return hw

    def step(self) -> None:
        """Process exactly one event (or sleeping-process wake-up).

        This is the hand-written reference implementation of dispatch;
        the generated fast loops mirror it exactly (the kernel-oracle
        property test replays random workloads through both paths).
        """
        from repro.sim.process import Process

        queue = self._queue
        bucket = self._bucket
        he = self._head_ev
        if he is not None:
            hw = self._head_when
        elif queue:
            hw = queue[0][0]
        else:
            hw = _INF
        bpos = self._bucket_pos
        bpend = bpos < len(bucket)
        if bpend and self._bucket_time < hw:
            # Bucket front is strictly earliest; on a tie the slot/heap
            # entry predates the bucket (lower seq) and must go first.
            when = self._bucket_time
            entry = bucket[bpos]
            if entry.__class__ is tuple:
                seq, event = entry    # exact-Process entry: seq matters
            else:
                seq, event = -1, entry  # seq never read for bare entries
            entry = None  # drop the alias so the recycle refcount check can pass
            bucket[bpos] = None
            bpos += 1
            if bpos == len(bucket):
                bucket.clear()
                self._bucket_pos = 0
            else:
                self._bucket_pos = bpos
        elif he is not None:
            when = hw
            seq = self._head_seq
            event = he
            he = None  # drop the alias so the recycle refcount check can pass
            self._head_ev = None
            if not bpend:
                self._bucket_time = when   # open the instant for same-time pushes
        elif queue:
            when, seq, event = heappop(queue)
            if not bpend:
                self._bucket_time = when
        else:
            raise SimulationError("step() on an empty event queue")
        self._now = when
        self._processed_count += 1
        if event.__class__ is Process:
            # A Process in the calendar is either a bare-number sleep entry
            # (valid iff its token matches this entry's seq), the
            # process's own termination event, or a stale sleep left by
            # an interrupt (skipped; seed semantics popped the orphaned
            # timeout the same way).
            if event._sleep_token == seq:
                event._step(_SLEEP_WAKE)
                return
            if event._event_seq != seq:
                return
        callbacks = event.callbacks
        event.callbacks = None
        waiter, event._waiter = event._waiter, None
        if waiter is not None:
            waiter._step(event)
        if callbacks:
            for fn in callbacks:
                fn(event)
        cls = event.__class__
        if cls is Timeout:
            if (_getrefcount is not None and _getrefcount(event) == 2
                    and len(self._free_timeouts) < _FREE_LIST_CAP):
                event._value = None
                callbacks.clear()
                event.callbacks = callbacks
                self._free_timeouts.append(event)
        elif cls is Event:
            if (_getrefcount is not None and _getrefcount(event) == 2
                    and len(self._free_events) < _FREE_LIST_CAP):
                event._value = _UNSET
                event._ok = None
                callbacks.clear()
                event.callbacks = callbacks
                self._free_events.append(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the calendar drains, ``until`` is reached, or event budget.

        ``until`` is an absolute simulated time; on return ``now`` equals
        ``until`` if the horizon was hit, else the time of the last event.
        ``max_events`` guards against runaway simulations.

        Dispatch happens in the generated batched loop (see
        :func:`_compile_loops`): all events sharing a timestamp drain in
        one bucket pass, and the single-process-waiter case resumes the
        waiting generator without leaving the loop frame — see
        ``Process._step``, whose semantics the generated path mirrors
        exactly (and falls back to for every non-trivial case).
        """
        if _LOOP_RUN is None:
            _compile_loops()
        if self._profiler is not None:
            return _LOOP_RUN_PROF(self, until, max_events)
        return _LOOP_RUN(self, until, max_events)

    def run_until_processed(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; returns its value (raises on fail).

        Same generated dispatch core as :meth:`run`, specialised to
        check the watched event after every dispatched entry.
        """
        if _LOOP_RUN is None:
            _compile_loops()
        if self._profiler is not None:
            return _LOOP_WATCH_PROF(self, event, max_events)
        return _LOOP_WATCH(self, event, max_events)


# ---------------------------------------------------------------------------
# Generated dispatch core.
#
# One template, four specialisations: {run, run_until_processed} x
# {plain, profiled}.  The template is assembled from the snippets below
# by token substitution (no str.format, so literal braces are safe) and
# exec-compiled on first use, once Process is importable.  step() above
# is the reference semantics; the oracle property test replays random
# workloads through both paths and asserts identical traces.
# ---------------------------------------------------------------------------

# Routed calendar push for a process re-parked by a bare-number sleep.
# __PV__ is the process variable; mirrors Simulator._push.
_PARK_SRC = """\
if nxt < 0:
    raise SimulationError(
        "process %r yielded a negative sleep %s" % (__PV__.name, nxt))
sseq = self._seq
self._seq = sseq + 1
nwhen = when + nxt
__PV__._sleep_token = sseq
if nwhen == self._bucket_time:
    bucket.append((sseq, __PV__))
elif queue and nwhen >= queue[0][0]:
    # At or past the heap minimum: the entry cannot displace the slot
    # (slot <= heap min) and cannot tie-open the bucket out of order
    # (any bucket entries at nwhen imply bucket_time == nwhen, handled
    # above), so it belongs in the heap — skip the slot checks.
    push(queue, (nwhen, sseq, __PV__))
else:
    he2 = self._head_ev
    if he2 is None:
        # Heap empty or nwhen below its minimum (the fast path above
        # took the rest): the slot can hold the calendar minimum.
        self._head_when = nwhen
        self._head_seq = sseq
        self._head_ev = __PV__
    elif nwhen < self._head_when:
        push(queue, (self._head_when, self._head_seq, he2))
        self._head_when = nwhen
        self._head_seq = sseq
        self._head_ev = __PV__
    elif nwhen == self._head_when and self._bucket_pos >= len(bucket):
        self._bucket_time = nwhen
        bucket.append((sseq, __PV__))
    else:
        push(queue, (nwhen, sseq, __PV__))\
"""

# The per-entry dispatch body.  Entry in (seq, ev) at instant `when`.
# Mirrors step() exactly; `continue` targets the enclosing drain loop.
_DISPATCH_SRC = """\
if ecls is proc_cls:
    # A Process entry: a bare-number sleep (valid iff token matches),
    # the process's own termination event, or a stale sleep left by an
    # interrupt (skipped, but counted — seed popped the orphaned
    # timeout the same way).
    if ev._sleep_token == seq:
        if ev._suspended:
            ev._step(wake)  # defers until resume()
            continue
        try:
            nxt = ev._gen.send(None)
        except StopIteration as stop:
            ev.succeed(stop.value)
            continue
        except BaseException as exc:
            if ev.callbacks or ev._waiter is not None:
                ev.fail(exc)
                continue
            raise
        ncls = nxt.__class__
        if ncls is float or ncls is int:
__PARK_EV__
        elif (ncls is event_cls or isinstance(nxt, event_cls)) and nxt.sim is self:
            ev._target = nxt
            ncbs = nxt.callbacks
            if ncbs is None:
                ev._step(nxt)
            elif nxt._waiter is None and not ncbs:
                nxt._waiter = ev
            else:
                ncbs.append(ev._step_cb)
        else:
            ev._wait_on(nxt)
        continue
    if ev._event_seq != seq:
        continue
callbacks = ev.callbacks
ev.callbacks = None
waiter = ev._waiter
if waiter is not None:
    ev._waiter = None
    # -- inline Process._step fast path -----------------------------
    if (waiter.__class__ is proc_cls and ev._ok
            and not waiter._suspended and waiter._value is unset):
        waiter._target = None
        try:
            nxt = waiter._gen.send(ev._value)
        except StopIteration as stop:
            waiter.succeed(stop.value)
        except BaseException as exc:
            if waiter.callbacks or waiter._waiter is not None:
                waiter.fail(exc)
            else:
                raise
        else:
            ncls = nxt.__class__
            if ncls is float or ncls is int:
__PARK_WAITER__
            elif (ncls is event_cls or isinstance(nxt, event_cls)) and nxt.sim is self:
                waiter._target = nxt
                ncbs = nxt.callbacks
                if ncbs is None:
                    waiter._step(nxt)
                elif nxt._waiter is None and not ncbs:
                    nxt._waiter = waiter
                else:
                    ncbs.append(waiter._step_cb)
            else:
                waiter._wait_on(nxt)
    else:
        waiter._step(ev)
if callbacks:
    if len(callbacks) == 1:
        callbacks[0](ev)
    else:
        for fn in callbacks:
            fn(ev)
if ecls is timeout_cls:
    # Unreferenced once processed: recycle the object and its
    # (already-emptied) callbacks list.
    if (refcount is not None and refcount(ev) == 2
            and len(free_t) < cap):
        ev._value = None
        callbacks.clear()
        ev.callbacks = callbacks
        free_t.append(ev)
elif ecls is event_cls:
    if (refcount is not None and refcount(ev) == 2
            and len(free_e) < cap):
        ev._value = unset
        ev._ok = None
        callbacks.clear()
        ev.callbacks = callbacks
        free_e.append(ev)
__EVENT_TAIL__\
"""

# Per-entry budget check, compiled in *before* the entry is consumed, so
# a raise leaves the calendar, the clock, and the processed counter
# exactly as they were (matching the old per-event loop).  With no
# budget the whole check is a single `is not None` test.
_BUDGET_SRC = """\
if budget is not None:
    if count >= budget:
        raise SimulationError(__BUDGET_MSG__)
    count += 1\
"""

# Profiled loops sample every `stride`-th consumed entry, charging it
# the simulated time elapsed since the previous sample.
_SAMPLE_SRC = """\
k -= 1
if k <= 0:
    k = stride
    observe(prev_now, when, ev)
    prev_now = when\
"""

_LOOP_TEMPLATE = """\
def __NAME__(self, __ARG1__, max_events=None):
    queue = self._queue
    bucket = self._bucket
    push = heappush
    pop = heappop
    free_t = self._free_timeouts
    free_e = self._free_events
    refcount = _getrefcount
    timeout_cls = Timeout
    event_cls = Event
    proc_cls = Process
    unset = _UNSET
    wake = _SLEEP_WAKE
    cap = _FREE_LIST_CAP
    compact = _BUCKET_COMPACT
    inf = _INF
    budget = max_events
    count = 0
    processed = self._processed_count
__PROF_SETUP__
__WATCH_PRelude__
    try:
        while True:
__WATCH_HEAD__
            # ---- select the next instant ----------------------------
            he = self._head_ev
            if he is not None:
                hw = self._head_when
            elif queue:
                hw = queue[0][0]
            else:
                hw = inf
            if bucket and self._bucket_pos < len(bucket):
                bt = self._bucket_time
                when = bt if bt < hw else hw
            else:
                when = hw
                if hw == inf:
__EMPTY__
                # Key the drained bucket to the batch instant: every
                # same-instant trigger fired by this batch's callbacks
                # then appends straight to the bucket (first comparison
                # in the push routing) and is drained in phase C below —
                # the dominant succeed-at-now cascade never touches the
                # slot or the heap.  When the bucket still holds a
                # future batch opened by a tie (the `if` arm above),
                # re-keying would dispatch those entries early, so
                # same-instant pushes fall back to the slot routing for
                # the rare remainder of that window.
                self._bucket_time = when
__HORIZON__
            self._now = when
            # ---- instants of this window ----------------------------
            # The middle loop walks instant to instant without the
            # selection pass above: the slot/heap drain advances the
            # clock itself, and a drained bucket batch re-enters it
            # directly.  Control only falls back out when the bucket
            # holds a future batch (tie-opened) or the calendar is
            # empty.
            while True:
                # ---- slot + heap entries at this instant ----------------
                # This drain advances the clock *itself* while the next
                # instant sits in the slot or the heap and the bucket is
                # empty — the sparse ping-pong profile (one event per
                # instant: sleeps, packet flights) then never returns to
                # the selection pass above.  Safe because the slot holds
                # the calendar minimum (slot <= heap min) and an empty
                # bucket cannot hold an earlier instant, and its emptiness
                # also makes the re-key unconditional (see phase A).
                while True:
                    he = self._head_ev
                    if he is not None:
                        if self._head_when != when:
                            if bucket:
                                break
                            when = self._head_when
__HORIZON_F1__
                            self._bucket_time = when
                            self._now = when
__BUDGET_B1__
                        seq = self._head_seq
                        ev = he
                        he = None  # drop the alias so the recycle refcount check can pass
                        self._head_ev = None
                    elif queue:
                        # Pop first, peek never: the popped entry is the
                        # heap minimum either way, and the boundary cases
                        # (bucket pending, horizon, budget) push it back —
                        # re-inserting the same ``(when, seq)`` key cannot
                        # reorder anything, the seq is globally unique.
                        w, seq, ev = pop(queue)
                        if w != when:
                            if bucket:
                                push(queue, (w, seq, ev))
                                break
                            when = w
__HORIZON_F2__
                            self._bucket_time = when
                            self._now = when
__BUDGET_B2__
                    else:
                        break
                    processed += 1
__SAMPLE_B__
                    ecls = ev.__class__
__DISPATCH_B__
                # ---- batched same-instant bucket drain ------------------
                # New events for this instant are appended while we drain;
                # indexing (not iterating) picks them up, and no horizon or
                # re-comparison runs inside the batch.
                if bucket and self._bucket_time == when:
                    i = self._bucket_pos
                    blen = len(bucket)
                    # Exhaustion test, cheapest-first: a compare against the
                    # cached length, then — only when the scan has caught up
                    # — a re-key check and a fresh len() (dispatch appends
                    # same-instant events while we drain, so the batch can
                    # outgrow the cache).  The re-key check lives in the
                    # catch-up arm alone because a tie can only re-key the
                    # bucket once every pending entry is consumed (see
                    # _push), i.e. exactly when the scan has caught up; the
                    # cached length likewise never counts entries of another
                    # instant, since it is only refreshed under the check.
                    # No exception sentinel: the common batch is one or two
                    # entries, and a raise+catch per batch dwarfs the len().
                    while i < blen or (self._bucket_time == when
                                       and i < (blen := len(bucket))):
                        ev = bucket[i]
__BUDGET_C__
                        bucket[i] = None
                        self._bucket_pos = i = i + 1
                        if i >= compact:
                            del bucket[:i]
                            self._bucket_pos = i = 0
                            blen = len(bucket)
                        processed += 1
                        ecls = ev.__class__
                        if ecls is tuple:
                            # Only exact-Process entries are wrapped; they
                            # carry the push seq dispatch must match.
                            seq, ev = ev
                            ecls = proc_cls
__SAMPLE_C__
__DISPATCH_C__
                    if self._bucket_time == when:
                        # Exhausted at this instant (not re-keyed away by
                        # the last entry's callback): every entry was
                        # consumed, so reset the bucket in O(1) and go
                        # straight back to the slot/heap drain, whose
                        # fast-advance picks the next instant.
                        bucket.clear()
                        self._bucket_pos = 0
                        continue
                break
    finally:
        self._processed_count = processed
__PROF_FINALLY__
__TAIL__\
"""


def _indent(src: str, prefix: str) -> str:
    return textwrap.indent(src, prefix)


def _make_loop_src(name: str, watch: bool, profiled: bool) -> str:
    park_ev = _indent(_PARK_SRC.replace("__PV__", "ev"), " " * 12)
    park_waiter = _indent(_PARK_SRC.replace("__PV__", "waiter"), " " * 16)
    if watch:
        budget_msg = '"exceeded max_events=%s" % (max_events,)'
        event_tail = ("if watch.callbacks is None:\n"
                      "    if watch._ok is False:\n"
                      "        raise watch._value\n"
                      "    return watch._value")
        arg1 = "event"
        prelude = ("    watch = event\n"
                   "    if watch.callbacks is None:\n"
                   "        if watch._ok is False:\n"
                   "            raise watch._value\n"
                   "        return watch._value")
        watch_head = ""
        empty = (" " * 20) + ("raise SimulationError(\n" +
                 " " * 24 + "\"event queue drained before event triggered"
                 " (deadlock?)\")")
        horizon = ""
        horizon_f1 = ""
        horizon_f2 = ""
        tail = ("    raise SimulationError(\n"
                "        \"event queue drained before event triggered"
                " (deadlock?)\")")
    else:
        budget_msg = '"run() exceeded max_events=%s" % (max_events,)'
        event_tail = ""
        arg1 = "until=None"
        prelude = ""
        watch_head = ""
        empty = (" " * 20) + "break"
        horizon = ("            if until is not None and when > until:\n"
                   "                self._now = until\n"
                   "                return\n")
        horizon_f1 = ((" " * 28) + "if until is not None and when > until:\n"
                      + (" " * 32) + "self._now = until\n"
                      + (" " * 32) + "return")
        # The heap arm pops before it checks the horizon: put the entry
        # back before returning (same (when, seq) key, so no reorder).
        horizon_f2 = ((" " * 28) + "if until is not None and when > until:\n"
                      + (" " * 32) + "push(queue, (when, seq, ev))\n"
                      + (" " * 32) + "self._now = until\n"
                      + (" " * 32) + "return")
        tail = ("    if until is not None and until > self._now:\n"
                "        self._now = until")
    budget_src = _BUDGET_SRC.replace("__BUDGET_MSG__", budget_msg)
    budget_src_b2 = budget_src.replace(
        "raise SimulationError",
        "push(queue, (when, seq, ev))\n        raise SimulationError")
    sample_b = _indent(_SAMPLE_SRC, " " * 20) if profiled else ""
    sample_c = _indent(_SAMPLE_SRC, " " * 24) if profiled else ""
    dispatch = (_DISPATCH_SRC
                .replace("__PARK_EV__", park_ev)
                .replace("__PARK_WAITER__", park_waiter)
                .replace("__EVENT_TAIL__", event_tail).rstrip())
    if profiled:
        prof_setup = (
            "    prof = self._profiler\n"
            "    observe = prof.observe\n"
            "    stride = prof.stride\n"
            "    k = prof._phase\n"
            "    prev_now = self._now\n"
            "    start_processed = processed\n"
            "    t0 = perf_counter()  # wall accounting, never feeds sim state\n"
        )
        prof_finally = (
            "        prof._phase = k\n"
            "        prof.account_events(processed - start_processed)\n"
            "        prof.account_wall(perf_counter() - t0)\n"
        )
    else:
        prof_setup = ""
        prof_finally = ""
    src = (_LOOP_TEMPLATE
           .replace("__NAME__", name)
           .replace("__ARG1__", arg1)
           .replace("__PROF_SETUP__", prof_setup)
           .replace("__WATCH_PRelude__", prelude)
           .replace("__WATCH_HEAD__", watch_head)
           .replace("__EMPTY__", empty)
           .replace("__HORIZON__", horizon)
           .replace("__HORIZON_F1__", horizon_f1)
           .replace("__HORIZON_F2__", horizon_f2)
           .replace("__BUDGET_B1__", _indent(budget_src, " " * 24))
           .replace("__BUDGET_B2__", _indent(budget_src_b2, " " * 24))
           .replace("__BUDGET_C__", _indent(budget_src, " " * 24))
           .replace("__SAMPLE_B__", sample_b)
           .replace("__SAMPLE_C__", sample_c)
           .replace("__DISPATCH_B__", _indent(dispatch, " " * 20))
           .replace("__DISPATCH_C__", _indent(dispatch, " " * 24))
           .replace("__PROF_FINALLY__", prof_finally)
           .replace("__TAIL__", tail))
    # Drop blank placeholder lines so the compiled source stays readable
    # in tracebacks.
    return "\n".join(line for line in src.split("\n") if line.strip())


_LOOP_RUN = None
_LOOP_RUN_PROF = None
_LOOP_WATCH = None
_LOOP_WATCH_PROF = None


def _compile_loops() -> None:
    """Exec-compile the four dispatch-loop specialisations (idempotent)."""
    global _LOOP_RUN, _LOOP_RUN_PROF, _LOOP_WATCH, _LOOP_WATCH_PROF
    if _LOOP_RUN is not None:
        return
    from time import perf_counter  # simlint: ignore[SIM001] -- profiler accounts host wall time; never feeds sim state
    from repro.sim.process import Process

    namespace = {
        "heappush": heappush, "heappop": heappop,
        "_getrefcount": _getrefcount, "Timeout": Timeout, "Event": Event,
        "Process": Process, "_UNSET": _UNSET, "_SLEEP_WAKE": _SLEEP_WAKE,
        "_FREE_LIST_CAP": _FREE_LIST_CAP, "_BUCKET_COMPACT": _BUCKET_COMPACT,
        "_INF": _INF,
        "SimulationError": SimulationError, "perf_counter": perf_counter,
    }
    for name, watch, profiled in (
            ("_loop_run", False, False),
            ("_loop_run_prof", False, True),
            ("_loop_watch", True, False),
            ("_loop_watch_prof", True, True)):
        src = _make_loop_src(name, watch, profiled)
        code = compile(src, f"<repro.sim.core generated {name}>", "exec")
        exec(code, namespace)
    _LOOP_RUN = namespace["_loop_run"]
    _LOOP_RUN_PROF = namespace["_loop_run_prof"]
    _LOOP_WATCH = namespace["_loop_watch"]
    _LOOP_WATCH_PROF = namespace["_loop_watch_prof"]
    _prime_loops()


class _PrimeProfiler:
    """Minimal profiler interface for loop priming (no telemetry import)."""

    stride = 1
    _phase = 1

    def observe(self, prev_now, when, event):
        pass

    def account_events(self, n):
        pass

    def account_wall(self, seconds):
        pass


def _prime_loops() -> None:
    """Run each generated loop a dozen times on throwaway simulators.

    CPython 3.11's specializing interpreter quickens a code object only
    after ~8 *calls* — loop iterations inside one call do not count — so
    a simulation driven by a single long ``run()`` would otherwise
    execute unspecialized bytecode forever (measured: the same-instant
    drain runs ~2x slower unquickened).  A dozen micro-runs at compile
    time push all four specialisations over the threshold once per
    process, for microseconds.
    """
    prof = _PrimeProfiler()
    for _ in range(12):
        sim = Simulator()
        sim.timeout(0.0)
        _LOOP_RUN(sim, None, None)
        sim = Simulator()
        _LOOP_WATCH(sim, sim.timeout(0.0), None)
        sim = Simulator()
        sim._profiler = prof
        sim.timeout(0.0)
        _LOOP_RUN_PROF(sim, None, None)
        sim = Simulator()
        sim._profiler = prof
        _LOOP_WATCH_PROF(sim, sim.timeout(0.0), None)
