"""Simulation clock, event queue, and event types.

The kernel is deterministic: events scheduled for the same instant are
processed in scheduling order (FIFO), using a monotonically increasing
sequence number as the tie-breaker in the heap.

Performance notes (the kernel is the hot path of every experiment):

- :meth:`Simulator.run` and friends keep the heap, ``heappush``/``heappop``
  and the clock in local variables and dispatch callbacks inline instead
  of paying a method call per event.
- The overwhelmingly common waiter — a single simulated process parked on
  the event — is stored in a dedicated ``_waiter`` slot and its generator
  is resumed *inline* by the run loop, skipping the generic callback-list
  machinery and one Python call per event.  Dispatch order is preserved:
  the waiter slot is only used when the callback list is empty at wait
  time, so "waiter first, then list" equals registration order.
- :class:`Timeout` objects are recycled through a free list: a timeout
  that nothing else references once its callbacks have run is reset and
  reused by the next :meth:`Simulator.timeout` call, cutting allocation
  churn on per-packet paths.  Recycling is guarded by CPython's reference
  counts, so an object is only ever reused when no caller can observe it.
"""

from __future__ import annotations

import platform
import sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_UNSET = object()

# Timeout recycling needs exact reference counts; only CPython has them.
_IS_CPYTHON = platform.python_implementation() == "CPython"
_getrefcount = sys.getrefcount if _IS_CPYTHON else None
_FREE_LIST_CAP = 512


class _SleepWake:
    """Stand-in 'event' delivered to a process woken from a bare-number
    sleep (``yield delay``): always successful, carries no value.  Lets the
    suspend/defer/resume machinery treat sleep wake-ups like event
    wake-ups without materialising a real Event."""

    __slots__ = ()
    _ok = True
    _value = None


_SLEEP_WAKE = _SleepWake()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it and schedules it for processing at the current instant;
    when the kernel processes it, all registered callbacks run and the
    event becomes *processed*.  Yielding an event from a process generator
    suspends the process until the event is processed.

    ``_waiter`` is the kernel-internal fast slot: it holds at most one
    :class:`~repro.sim.process.Process` parked on this event (set by the
    process itself, and only while the callback list is empty, which
    keeps dispatch order identical to plain ``add_callback`` use).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_waiter")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._waiter = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        heappush(sim._queue, (sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        sim = self.sim
        heappush(sim._queue, (sim._now, sim._seq, self))
        sim._seq += 1
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        w = self._waiter
        if w is not None and (fn is w or getattr(fn, "__self__", None) is w):
            # The waiter parks either itself or its bound _step here.
            self._waiter = None
            return
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _run_callbacks(self) -> None:
        """Generic (non-inlined) dispatch; kept for external callers."""
        callbacks, self.callbacks = self.callbacks, None
        waiter, self._waiter = self._waiter, None
        if waiter is not None:
            waiter._step(self)
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles processed instances
    through a free list instead of allocating a fresh object per call.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._waiter = None
        self.delay = delay
        heappush(sim._queue, (sim._now + delay, sim._seq, self))
        sim._seq += 1


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Triggers when all constituent events have been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    __slots__ = ("_now", "_queue", "_seq", "_processed_count", "_free_timeouts",
                 "_profiler")

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._processed_count: int = 0
        self._free_timeouts: list = []
        self._profiler = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- profiling --------------------------------------------------------
    @property
    def profiler(self):
        """The attached :class:`~repro.telemetry.profiler.KernelProfiler`.

        The guard is checked once per ``run()`` call (not per event): with
        no profiler attached — or a falsy/disabled one — the inlined fast
        loops run untouched, so an unprofiled simulation pays nothing.
        With a profiler the kernel uses the generic :meth:`step` dispatch
        path, whose semantics the fast loops mirror exactly, so results
        stay bit-identical (the telemetry determinism tests pin this).
        """
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler if profiler else None

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for diagnostics).

        Inside the batched run loops this is refreshed when the loop
        exits, not per event — read it between runs, not from callbacks.
        """
        return self._processed_count

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Reuses a recycled :class:`Timeout` when one is available; the
        recycled object is indistinguishable from a fresh one (recycling
        only happens when no other reference to it exists).
        """
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            t = free.pop()
            t.delay = delay
            t._ok = True
            t._value = value
            seq = self._seq
            heappush(self._queue, (self._now + delay, seq, t))
            self._seq = seq + 1
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (or sleeping-process wake-up)."""
        from repro.sim.process import Process

        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, seq, event = heappop(self._queue)
        self._now = when
        self._processed_count += 1
        if event.__class__ is Process:
            # A Process in the heap is either a bare-number sleep entry
            # (valid iff its token matches this entry's seq), the
            # process's own termination event, or a stale sleep left by
            # an interrupt (skipped; seed semantics popped the orphaned
            # timeout the same way).
            if event._sleep_token == seq:
                event._step(_SLEEP_WAKE)
                return
            if event._event_seq != seq:
                return
        callbacks = event.callbacks
        event.callbacks = None
        waiter, event._waiter = event._waiter, None
        if waiter is not None:
            waiter._step(event)
        if callbacks:
            for fn in callbacks:
                fn(event)
        if (event.__class__ is Timeout and _getrefcount is not None
                and _getrefcount(event) == 2
                and len(self._free_timeouts) < _FREE_LIST_CAP):
            event._value = None
            callbacks.clear()
            event.callbacks = callbacks
            self._free_timeouts.append(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget.

        ``until`` is an absolute simulated time; on return ``now`` equals
        ``until`` if the horizon was hit, else the time of the last event.
        ``max_events`` guards against runaway simulations.

        The loop body dispatches events inline; the single-process-waiter
        case resumes the waiting generator without leaving this frame —
        see ``Process._step``, whose semantics the fast path mirrors
        exactly (and falls back to for every non-trivial case).  The same
        body appears in :meth:`run_until_processed`; keep them in sync.
        """
        if self._profiler is not None:
            return self._run_profiled(until=until, max_events=max_events)
        from repro.sim.process import Process

        queue = self._queue
        pop = heappop
        push = heappush
        free = self._free_timeouts
        refcount = _getrefcount
        timeout_cls = Timeout
        event_cls = Event
        proc_cls = Process
        unset = _UNSET
        wake = _SLEEP_WAKE
        cap = _FREE_LIST_CAP
        checked = until is not None or max_events is not None
        budget = max_events if max_events is not None else float("inf")
        count = 0
        processed = self._processed_count
        try:
            while queue:
                if checked:
                    if until is not None and queue[0][0] > until:
                        self._now = until
                        return
                    if count >= budget:
                        raise SimulationError(f"run() exceeded max_events={max_events}")
                    count += 1
                when, seq, event = pop(queue)
                self._now = when
                processed += 1
                if event.__class__ is proc_cls:
                    # A Process in the heap: a bare-number sleep entry
                    # (valid iff token matches), the process's own
                    # termination event, or a stale sleep left behind by
                    # an interrupt (skipped, but counted — seed popped
                    # the orphaned timeout the same way).
                    if event._sleep_token == seq:
                        if event._suspended:
                            event._step(wake)  # defers until resume()
                            continue
                        try:
                            nxt = event._gen.send(None)
                        except StopIteration as stop:
                            event.succeed(stop.value)
                            continue
                        except BaseException as exc:
                            if event.callbacks or event._waiter is not None:
                                event.fail(exc)
                                continue
                            raise
                        ncls = nxt.__class__
                        if ncls is float or ncls is int:
                            if nxt < 0:
                                raise SimulationError(
                                    f"process {event.name!r} yielded a negative sleep {nxt}")
                            sseq = self._seq
                            push(queue, (when + nxt, sseq, event))
                            event._sleep_token = sseq
                            self._seq = sseq + 1
                        elif isinstance(nxt, event_cls) and nxt.sim is self:
                            event._target = nxt
                            ncbs = nxt.callbacks
                            if ncbs is None:
                                event._step(nxt)
                            elif nxt._waiter is None and not ncbs:
                                nxt._waiter = event
                            else:
                                ncbs.append(event._step_cb)
                        else:
                            event._wait_on(nxt)
                        continue
                    if event._event_seq != seq:
                        continue
                callbacks = event.callbacks
                event.callbacks = None
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    # -- inline Process._step fast path --------------------
                    if (waiter.__class__ is proc_cls and event._ok
                            and not waiter._suspended and waiter._value is unset):
                        waiter._target = None
                        try:
                            nxt = waiter._gen.send(event._value)
                        except StopIteration as stop:
                            waiter.succeed(stop.value)
                        except BaseException as exc:
                            if waiter.callbacks or waiter._waiter is not None:
                                waiter.fail(exc)
                            else:
                                raise
                        else:
                            ncls = nxt.__class__
                            if ncls is float or ncls is int:
                                if nxt < 0:
                                    raise SimulationError(
                                        f"process {waiter.name!r} yielded a negative sleep {nxt}")
                                sseq = self._seq
                                push(queue, (when + nxt, sseq, waiter))
                                waiter._sleep_token = sseq
                                self._seq = sseq + 1
                            elif isinstance(nxt, event_cls) and nxt.sim is self:
                                waiter._target = nxt
                                ncbs = nxt.callbacks
                                if ncbs is None:
                                    waiter._step(nxt)
                                elif nxt._waiter is None and not ncbs:
                                    nxt._waiter = waiter
                                else:
                                    ncbs.append(waiter._step_cb)
                            else:
                                waiter._wait_on(nxt)
                    else:
                        waiter._step(event)
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for fn in callbacks:
                            fn(event)
                if (event.__class__ is timeout_cls and refcount is not None
                        and refcount(event) == 2 and len(free) < cap):
                    # Unreferenced once processed: recycle the object and
                    # its (already-emptied) callbacks list.
                    event._value = None
                    callbacks.clear()
                    event.callbacks = callbacks
                    free.append(event)
        finally:
            self._processed_count = processed
        if until is not None and until > self._now:
            self._now = until

    def run_until_processed(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; returns its value (raises on fail).

        Same inline dispatch as :meth:`run` — keep the loop bodies in sync.
        """
        if self._profiler is not None:
            return self._run_until_processed_profiled(event, max_events=max_events)
        from repro.sim.process import Process

        watch = event
        queue = self._queue
        pop = heappop
        push = heappush
        free = self._free_timeouts
        refcount = _getrefcount
        timeout_cls = Timeout
        event_cls = Event
        proc_cls = Process
        unset = _UNSET
        wake = _SLEEP_WAKE
        cap = _FREE_LIST_CAP
        budget = max_events
        count = 0
        processed = self._processed_count
        try:
            while watch.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "event queue drained before event triggered (deadlock?)")
                if budget is not None:
                    if count >= budget:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    count += 1
                when, seq, ev = pop(queue)
                self._now = when
                processed += 1
                if ev.__class__ is proc_cls:
                    # See run(): sleep entry, termination event, or stale.
                    if ev._sleep_token == seq:
                        if ev._suspended:
                            ev._step(wake)  # defers until resume()
                            continue
                        try:
                            nxt = ev._gen.send(None)
                        except StopIteration as stop:
                            ev.succeed(stop.value)
                            continue
                        except BaseException as exc:
                            if ev.callbacks or ev._waiter is not None:
                                ev.fail(exc)
                                continue
                            raise
                        ncls = nxt.__class__
                        if ncls is float or ncls is int:
                            if nxt < 0:
                                raise SimulationError(
                                    f"process {ev.name!r} yielded a negative sleep {nxt}")
                            sseq = self._seq
                            push(queue, (when + nxt, sseq, ev))
                            ev._sleep_token = sseq
                            self._seq = sseq + 1
                        elif isinstance(nxt, event_cls) and nxt.sim is self:
                            ev._target = nxt
                            ncbs = nxt.callbacks
                            if ncbs is None:
                                ev._step(nxt)
                            elif nxt._waiter is None and not ncbs:
                                nxt._waiter = ev
                            else:
                                ncbs.append(ev._step_cb)
                        else:
                            ev._wait_on(nxt)
                        continue
                    if ev._event_seq != seq:
                        continue
                callbacks = ev.callbacks
                ev.callbacks = None
                waiter = ev._waiter
                if waiter is not None:
                    ev._waiter = None
                    # -- inline Process._step fast path --------------------
                    if (waiter.__class__ is proc_cls and ev._ok
                            and not waiter._suspended and waiter._value is unset):
                        waiter._target = None
                        try:
                            nxt = waiter._gen.send(ev._value)
                        except StopIteration as stop:
                            waiter.succeed(stop.value)
                        except BaseException as exc:
                            if waiter.callbacks or waiter._waiter is not None:
                                waiter.fail(exc)
                            else:
                                raise
                        else:
                            ncls = nxt.__class__
                            if ncls is float or ncls is int:
                                if nxt < 0:
                                    raise SimulationError(
                                        f"process {waiter.name!r} yielded a negative sleep {nxt}")
                                sseq = self._seq
                                push(queue, (when + nxt, sseq, waiter))
                                waiter._sleep_token = sseq
                                self._seq = sseq + 1
                            elif isinstance(nxt, event_cls) and nxt.sim is self:
                                waiter._target = nxt
                                ncbs = nxt.callbacks
                                if ncbs is None:
                                    waiter._step(nxt)
                                elif nxt._waiter is None and not ncbs:
                                    nxt._waiter = waiter
                                else:
                                    ncbs.append(waiter._step_cb)
                            else:
                                waiter._wait_on(nxt)
                    else:
                        waiter._step(ev)
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](ev)
                    else:
                        for fn in callbacks:
                            fn(ev)
                if (ev.__class__ is timeout_cls and refcount is not None
                        and refcount(ev) == 2 and len(free) < cap):
                    ev._value = None
                    callbacks.clear()
                    ev.callbacks = callbacks
                    free.append(ev)
        finally:
            self._processed_count = processed
        if watch._ok is False:
            raise watch._value
        return watch._value

    # -- profiled dispatch --------------------------------------------------
    # These loops replicate run()/run_until_processed()'s control flow
    # (horizon check, budget accounting, final clock advance) but dispatch
    # every event through the generic step() path, observing each entry
    # with the attached profiler first.  step()'s semantics are the
    # contract the inlined fast loops mirror, so profiled runs are
    # bit-identical to unprofiled ones — only slower, which is exactly the
    # overhead ratio benchmarks/perf/bench_kernel.py tracks.

    def _run_profiled(self, until: Optional[float] = None,
                      max_events: Optional[int] = None) -> None:
        from time import perf_counter

        prof = self._profiler
        queue = self._queue
        budget = max_events if max_events is not None else float("inf")
        count = 0
        t0 = perf_counter()  # simlint: ignore[SIM001] -- profiler accounts host wall time; never feeds sim state
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    return
                if count >= budget:
                    raise SimulationError(f"run() exceeded max_events={max_events}")
                count += 1
                entry = queue[0]
                prof.observe(self._now, entry[0], entry[2])
                self.step()
        finally:
            prof.account_wall(perf_counter() - t0)  # simlint: ignore[SIM001] -- profiler accounts host wall time; never feeds sim state
        if until is not None and until > self._now:
            self._now = until

    def _run_until_processed_profiled(self, event: Event,
                                      max_events: Optional[int] = None) -> Any:
        from time import perf_counter

        prof = self._profiler
        watch = event
        queue = self._queue
        count = 0
        t0 = perf_counter()  # simlint: ignore[SIM001] -- profiler accounts host wall time; never feeds sim state
        try:
            while watch.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "event queue drained before event triggered (deadlock?)")
                if max_events is not None:
                    if count >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    count += 1
                entry = queue[0]
                prof.observe(self._now, entry[0], entry[2])
                self.step()
        finally:
            prof.account_wall(perf_counter() - t0)  # simlint: ignore[SIM001] -- profiler accounts host wall time; never feeds sim state
        if watch._ok is False:
            raise watch._value
        return watch._value
