"""Deterministic named random streams.

Every stochastic component (workload think times, daemon skew, ...) draws
from its own named stream so that adding randomness to one component never
perturbs another — runs stay reproducible and comparable across schemes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _substream_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A factory of independent, reproducibly seeded RNGs."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_substream_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(_substream_seed(self.seed, f"fork:{name}"))
