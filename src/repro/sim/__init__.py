"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based DES in the style of simpy (which
is not available offline).  Simulated entities are Python generators that
``yield`` :class:`~repro.sim.core.Event` objects; the kernel resumes them
when the event triggers.

Public surface:

- :class:`~repro.sim.core.Simulator` — event queue and clock.
- :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.AnyOf`, :class:`~repro.sim.core.AllOf`.
- :class:`~repro.sim.process.Process` — a running coroutine; supports
  ``interrupt`` and (unusually for a DES) ``suspend``/``resume`` which model
  SIGSTOP/SIGCONT in the gang scheduler.
- :mod:`~repro.sim.primitives` — Gate, Store, Resource, Semaphore.
- :class:`~repro.sim.trace.Tracer` — structured event log.
- :class:`~repro.sim.rand.RandomStreams` — named deterministic RNG streams.
"""

from repro.sim.core import AllOf, AnyOf, Event, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.primitives import Gate, Resource, Semaphore, Store
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Process",
    "RandomStreams",
    "Resource",
    "Semaphore",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
