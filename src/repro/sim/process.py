"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.core.Event`; the process sleeps until
that event is processed and is then resumed with the event's value (or the
event's exception is thrown into it).

Beyond the usual DES process semantics, this class supports
``suspend()``/``resume()``, which model POSIX SIGSTOP/SIGCONT: the ParPar
``noded`` stops the running application process before flushing the network
and continues it after the buffer switch.  While suspended a process makes
no progress; a wake-up event that fires during suspension is *deferred* and
delivered when the process is resumed.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InterruptError, SimulationError
from repro.sim.core import Event, Simulator


class Process(Event):
    """A running simulated activity.

    The process object is itself an event that triggers when the generator
    terminates: it succeeds with the generator's return value, or fails
    with the uncaught exception (when someone is waiting on it; otherwise
    the exception propagates out of the simulation loop to aid debugging).
    """

    __slots__ = ("name", "_gen", "_target", "_suspended", "_deferred", "_pending_interrupt")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._target: Optional[Event] = None
        self._suspended = False
        self._deferred: Optional[Event] = None
        self._pending_interrupt: Optional[list] = None
        # Kick off at the current instant (but not synchronously).
        init = Event(sim)
        init.add_callback(self._step)
        init.succeed()

    # -- state --------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    @property
    def is_suspended(self) -> bool:
        return self._suspended

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (None while running)."""
        return self._target

    # -- SIGSTOP / SIGCONT ----------------------------------------------------
    def suspend(self) -> None:
        """Freeze the process: no further generator steps until resume().

        Idempotent.  May only be called from outside the process itself.
        """
        if not self.is_alive:
            return
        self._suspended = True

    def resume(self) -> None:
        """Unfreeze; any wake-up deferred during suspension is delivered now.

        Delivery happens at the current simulated instant but through the
        event queue, preserving deterministic ordering.
        """
        if not self.is_alive or not self._suspended:
            self._suspended = False
            return
        self._suspended = False
        if self._pending_interrupt is not None:
            causes, self._pending_interrupt = self._pending_interrupt, None
            self._deferred = None
            for cause in causes[:1]:  # deliver a single interrupt
                self._schedule_interrupt(cause)
        elif self._deferred is not None:
            deferred, self._deferred = self._deferred, None
            relay = Event(self.sim)
            relay.add_callback(lambda _ev: self._step(deferred))
            relay.succeed()

    # -- interrupts -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`InterruptError` into the process at the current time.

        Returns False (and does nothing) if the process already terminated.
        If the process is suspended, the interrupt is deferred and delivered
        on resume — a stopped process cannot run signal handlers either.
        """
        if not self.is_alive:
            return False
        if self._suspended:
            if self._pending_interrupt is None:
                self._pending_interrupt = []
            self._pending_interrupt.append(cause)
            return True
        self._schedule_interrupt(cause)
        return True

    def _schedule_interrupt(self, cause: Any) -> None:
        poke = Event(self.sim)
        poke.add_callback(lambda _ev: self._deliver_interrupt(cause))
        poke.succeed()

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were waiting on; the old event may still
        # fire later but must no longer wake us.
        if self._target is not None:
            self._target.remove_callback(self._step)
            self._target = None
        self._advance(InterruptError(cause), throw=True)

    # -- generator driving ------------------------------------------------------
    def _step(self, event: Optional[Event]) -> None:
        """Callback: the event we were waiting on has been processed."""
        if not self.is_alive:
            return
        if self._suspended:
            self._deferred = event
            return
        self._target = None
        if event is None:
            self._advance(None, throw=False)
        elif event._ok:
            self._advance(event._value, throw=False)
        else:
            self._advance(event._value, throw=True)

    def _advance(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                if isinstance(value, BaseException):
                    nxt = self._gen.throw(value)
                else:  # pragma: no cover - defensive
                    nxt = self._gen.throw(SimulationError(repr(value)))
            else:
                nxt = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes must yield Events"
            )
        if nxt.sim is not self.sim:
            raise SimulationError(f"process {self.name!r} yielded an event from another simulator")
        self._target = nxt
        nxt.add_callback(self._step)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if not self.is_alive else ("suspended" if self._suspended else "alive")
        return f"<Process {self.name!r} {state}>"
