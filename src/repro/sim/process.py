"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.core.Event` — or a bare number,
meaning "sleep that many seconds".  The process sleeps until the event is
processed and is then resumed with the event's value (or the event's
exception is thrown into it).

``yield delay`` is the fast form of ``yield sim.timeout(delay)``: the
process is parked directly in the event calendar (no Timeout object, no
callback list), tagged with the calendar entry's sequence number so a
stale entry left behind by an interrupt is recognised and skipped.  Both
forms consume exactly one sequence number and wake at the same
(time, seq) calendar position, so they are interchangeable without
perturbing event order.

Beyond the usual DES process semantics, this class supports
``suspend()``/``resume()``, which model POSIX SIGSTOP/SIGCONT: the ParPar
``noded`` stops the running application process before flushing the network
and continues it after the buffer switch.  While suspended a process makes
no progress; a wake-up event that fires during suspension is *deferred* and
delivered when the process is resumed.

The wake-up path (``_step``) is the single hottest function of the
simulator after the event loop itself, so the common resume-and-yield
cycle is written without property lookups or intermediate calls, and each
process registers one pre-bound callback (``_step_cb``) instead of
materialising a new bound method per yield.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InterruptError, SimulationError
from repro.sim.core import _UNSET, Event, Simulator


class Process(Event):
    """A running simulated activity.

    The process object is itself an event that triggers when the generator
    terminates: it succeeds with the generator's return value, or fails
    with the uncaught exception (when someone is waiting on it; otherwise
    the exception propagates out of the simulation loop to aid debugging).
    """

    __slots__ = ("name", "_gen", "_target", "_suspended", "_deferred",
                 "_pending_interrupt", "_step_cb", "_sleep_token", "_event_seq")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._target: Optional[Event] = None
        self._suspended = False
        self._deferred: Optional[Event] = None
        self._pending_interrupt: Optional[list] = None
        self._step_cb = self._step  # one bound method, reused for every wait
        self._event_seq = -1   # seq of our termination entry in the calendar
        # Kick off at the current instant (but not synchronously), parked
        # directly in the event calendar like a zero-second sleep: the run
        # loop resumes us with send(None), which starts the generator.
        self._sleep_token = sim._push(sim._now, self)

    # A Process is pushed into the calendar more than once (sleep entries
    # plus its own termination event), so the termination entry records its
    # seq and the run loop dispatches it only at the matching entry.
    def succeed(self, value: Any = None) -> "Process":
        # Routes through _push, NOT Event.succeed: the inline routing in
        # Event.succeed appends bare events to the instant bucket, while
        # exact-Process entries must be stored as (seq, process) so the
        # run loop can match this seq against the termination entry.
        if self._value is not _UNSET:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        self._event_seq = sim._push(sim._now, self)
        return self

    def fail(self, exc: BaseException) -> "Process":
        seq = self.sim._seq
        Event.fail(self, exc)
        self._event_seq = seq
        return self

    # -- state --------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _UNSET

    @property
    def is_suspended(self) -> bool:
        return self._suspended

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (None while running)."""
        return self._target

    # -- SIGSTOP / SIGCONT ----------------------------------------------------
    def suspend(self) -> None:
        """Freeze the process: no further generator steps until resume().

        Idempotent.  May only be called from outside the process itself.
        """
        if self._value is not _UNSET:
            return
        self._suspended = True

    def resume(self) -> None:
        """Unfreeze; any wake-up deferred during suspension is delivered now.

        Delivery happens at the current simulated instant but through the
        event queue, preserving deterministic ordering.
        """
        if self._value is not _UNSET or not self._suspended:
            self._suspended = False
            return
        self._suspended = False
        if self._pending_interrupt is not None:
            causes, self._pending_interrupt = self._pending_interrupt, None
            self._deferred = None
            for cause in causes[:1]:  # deliver a single interrupt
                self._schedule_interrupt(cause)
        elif self._deferred is not None:
            deferred, self._deferred = self._deferred, None
            relay = Event(self.sim)
            relay.add_callback(lambda _ev: self._step(deferred))
            relay.succeed()

    # -- interrupts -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`InterruptError` into the process at the current time.

        Returns False (and does nothing) if the process already terminated.
        If the process is suspended, the interrupt is deferred and delivered
        on resume — a stopped process cannot run signal handlers either.
        """
        if self._value is not _UNSET:
            return False
        if self._suspended:
            if self._pending_interrupt is None:
                self._pending_interrupt = []
            self._pending_interrupt.append(cause)
            return True
        self._schedule_interrupt(cause)
        return True

    def _schedule_interrupt(self, cause: Any) -> None:
        poke = Event(self.sim)
        poke.add_callback(lambda _ev: self._deliver_interrupt(cause))
        poke.succeed()

    def _deliver_interrupt(self, cause: Any) -> None:
        if self._value is not _UNSET:
            return
        # Detach from whatever we were waiting on; the old event may still
        # fire later but must no longer wake us.  A pending bare-number
        # sleep is invalidated by the token (its heap entry pops as stale).
        self._sleep_token = -1
        target = self._target
        if target is not None:
            if target._waiter is self:
                target._waiter = None
            else:
                target.remove_callback(self._step_cb)
            self._target = None
        self._advance(InterruptError(cause), throw=True)

    # -- generator driving ------------------------------------------------------
    def _step(self, event: Optional[Event], _unset=_UNSET) -> None:
        """Callback: the event we were waiting on has been processed.

        Fast path only — failure delivery goes through :meth:`_advance`.
        The wait-on logic of :meth:`_wait_on` is inlined here (and kept in
        sync) because this function runs once per processed event.
        """
        if self._value is not _unset:  # generator already terminated
            return
        if self._suspended:
            self._deferred = event
            return
        self._target = None
        if event is not None and not event._ok:
            self._advance(event._value, throw=True)
            return
        try:
            nxt = self._gen.send(None if event is None else event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks or self._waiter is not None:
                self.fail(exc)
                return
            raise
        # -- inlined _wait_on ------------------------------------------------
        if isinstance(nxt, Event) and nxt.sim is self.sim:
            self._target = nxt
            callbacks = nxt.callbacks
            if callbacks is None:  # already processed: wake immediately
                self._step(nxt)
            elif nxt._waiter is None and not callbacks:
                # Sole waiter so far: take the fast slot (order-preserving,
                # since the callback list is empty at registration time).
                nxt._waiter = self
            else:
                callbacks.append(self._step_cb)
        else:
            self._wait_on(nxt)  # slow path: raises the right error

    def _advance(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                if isinstance(value, BaseException):
                    nxt = self._gen.throw(value)
                else:  # pragma: no cover - defensive
                    nxt = self._gen.throw(SimulationError(repr(value)))
            else:
                nxt = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks or self._waiter is not None:
                self.fail(exc)
                return
            raise
        self._wait_on(nxt)

    def _wait_on(self, nxt: Any) -> None:
        """Park the process on whatever the generator just yielded."""
        cls = nxt.__class__
        if cls is float or cls is int:
            # Bare-number sleep: park directly in the event calendar
            # (subclasses fall back to a real Timeout so the run loop's
            # exact-class dispatch stays correct for them).
            if nxt < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative sleep {nxt}")
            if type(self) is Process:
                sim = self.sim
                self._sleep_token = sim._push(sim._now + nxt, self)
                return
            nxt = self.sim.timeout(nxt)
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes must yield Events"
            )
        if nxt.sim is not self.sim:
            raise SimulationError(f"process {self.name!r} yielded an event from another simulator")
        self._target = nxt
        callbacks = nxt.callbacks
        if callbacks is None:  # already processed: wake immediately
            self._step(nxt)
        elif nxt._waiter is None and not callbacks:
            nxt._waiter = self
        else:
            callbacks.append(self._step_cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if not self.is_alive else ("suspended" if self._suspended else "alive")
        return f"<Process {self.name!r} {state}>"


# Let the calendar routing in core recognise exact-Process entries (they
# are the only bucket entries stored with their push seq); the import is
# circular the other way, so the binding happens here.
from repro.sim import core as _core  # noqa: E402

_core._PROC_CLS = Process
