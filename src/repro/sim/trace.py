"""Structured tracing of simulation events.

Protocol models emit trace records (packet sent, halt broadcast, buffer
switch stage, ...) so tests can assert on *sequences* of behaviour and the
experiment harness can post-process timings without instrumenting the
models further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamped, typed, tagged observation."""

    time: float
    kind: str
    fields: dict = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects :class:`TraceRecord` objects; can be disabled for speed.

    ``kinds`` restricts recording to an allow-list, which keeps hot-path
    tracing (per-packet events) out of long experiment runs.

    Truthiness is the O(1) hot-path guard: models write
    ``if tracer: tracer.record(...)`` so that when no recorder is attached
    (the :class:`NullTracer` default, which is always falsy) a per-packet
    trace point costs a single boolean check — no call, no kwargs dict.
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 kinds: Optional[set[str]] = None):
        self._clock = clock
        self.enabled = enabled
        self.kinds = kinds
        self.records: list[TraceRecord] = []

    def __bool__(self) -> bool:
        return self.enabled

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(self._clock(), kind, fields))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def between(self, start: float, end: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.kind == kind:
                return rec
        return None


class NullTracer(Tracer):
    """A tracer that drops everything (used as a default).

    Always falsy, so ``if tracer:`` guards skip record() calls entirely.
    """

    def __init__(self):
        super().__init__(clock=lambda: 0.0, enabled=False)

    def __bool__(self) -> bool:
        return False

    def record(self, kind: str, **fields: Any) -> None:  # pragma: no cover
        return
