"""Structured tracing of simulation events.

Protocol models emit trace records (packet sent, halt broadcast, buffer
switch stage, ...) so tests can assert on *sequences* of behaviour and the
experiment harness can post-process timings without instrumenting the
models further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamped, typed, tagged observation."""

    time: float
    kind: str
    fields: dict = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects :class:`TraceRecord` objects; can be disabled for speed.

    ``kinds`` restricts recording to an allow-list, which keeps hot-path
    tracing (per-packet events) out of long experiment runs.

    Truthiness is the O(1) hot-path guard: models write
    ``if tracer: tracer.record(...)`` so that when no recorder is attached
    (the :class:`NullTracer` default, which is always falsy) a per-packet
    trace point costs a single boolean check — no call, no kwargs dict.
    When the tracer *is* on but a ``kinds`` filter is active, the kwargs
    dict for ``record(kind, **fields)`` is still built by the interpreter
    at the call site; per-packet sites therefore guard with
    ``if tracer and tracer.wants("pkt-tx"):`` so a filtered-out kind costs
    one membership test instead of a dict build plus a discarded call.

    ``limit`` caps the record list so an unbounded run cannot silently
    exhaust memory: once ``limit`` records are held the tracer disables
    itself (all ``if tracer:`` guards go cold) and sets ``truncated`` so
    consumers can tell a complete stream from a clipped one.
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 kinds: Optional[set[str]] = None,
                 limit: Optional[int] = None):
        self._clock = clock
        self.enabled = enabled
        self.kinds = kinds
        self.limit = limit
        self.truncated = False
        self.records: list[TraceRecord] = []

    def __bool__(self) -> bool:
        return self.enabled

    def wants(self, kind: str) -> bool:
        """Would a record of ``kind`` be kept?  (Hot-path pre-check: lets
        callers skip building the kwargs dict for filtered-out kinds.)"""
        if not self.enabled:
            return False
        kinds = self.kinds
        return kinds is None or kind in kinds

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        kinds = self.kinds
        if kinds is not None and kind not in kinds:
            # Filtered out: return before constructing the TraceRecord
            # (and before touching the clock or the record list).
            return
        records = self.records
        limit = self.limit
        if limit is not None and len(records) >= limit:
            self.enabled = False   # guards go cold; no silent unbounded growth
            self.truncated = True
            return
        records.append(TraceRecord(self._clock(), kind, fields))

    def clear(self) -> None:
        self.records.clear()
        if self.truncated:
            # Freeing the buffer re-arms a tracer that hit its cap.
            self.truncated = False
            self.enabled = True

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def between(self, start: float, end: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.kind == kind:
                return rec
        return None


class NullTracer(Tracer):
    """A tracer that drops everything (used as a default).

    Always falsy, so ``if tracer:`` guards skip record() calls entirely.
    """

    def __init__(self):
        super().__init__(clock=lambda: 0.0, enabled=False)

    def __bool__(self) -> bool:
        return False

    def record(self, kind: str, **fields: Any) -> None:  # pragma: no cover
        return
