"""Synchronisation primitives built on the event kernel.

These are deliberately small: the hardware and protocol models use them to
express waiting (for queue slots, for credits, for gates opened by control
messages) without hand-rolling callback plumbing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Gate:
    """A reusable open/closed barrier.

    ``wait()`` returns an event that succeeds immediately if the gate is
    open, otherwise when the gate next opens.  Used e.g. for the LANai
    "halt bit": the firmware waits on the gate before sending each packet.
    """

    def __init__(self, sim: Simulator, opened: bool = True):
        self.sim = sim
        self._open = opened
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        """Open the gate and release all waiters (idempotent)."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False


class Store:
    """An unbounded-or-bounded FIFO of items with blocking get/put.

    The workhorse for modelling queues of control messages between
    daemons.  (Data-plane packet queues use the dedicated ring-buffer
    models in :mod:`repro.fm.queues`, which track byte occupancy.)
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"Store capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Returns an event that succeeds once the item is enqueued."""
        ev = Event(self.sim)
        if self.capacity is not None and len(self.items) >= self.capacity:
            self._putters.append((ev, item))
        else:
            self.items.append(item)
            ev.succeed()
            self._serve_getters()
        return ev

    def get(self) -> Event:
        """Returns an event that succeeds with the next item."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._serve_getters()
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty (items must be truthy
        or callers must check ``len`` first)."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._serve_putters()
        return item

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and (self.capacity is None or len(self.items) < self.capacity):
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class Resource:
    """``capacity`` interchangeable slots; FIFO request/release."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"Resource capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Semaphore:
    """A counting semaphore; ``acquire(n)`` blocks until n units available.

    The credit counters in :mod:`repro.fm.credits` are built on this.
    """

    def __init__(self, sim: Simulator, value: int = 0):
        if value < 0:
            raise SimulationError(f"Semaphore value must be >= 0, got {value}")
        self.sim = sim
        self._value = value
        self._waiters: Deque[tuple[Event, int]] = deque()
        self._observers: Deque[tuple[Event, int]] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self, n: int = 1) -> Event:
        if n <= 0:
            raise SimulationError(f"acquire() needs a positive count, got {n}")
        ev = Event(self.sim)
        self._waiters.append((ev, n))
        self._drain()
        return ev

    def try_acquire(self, n: int = 1) -> bool:
        """Non-blocking acquire; only succeeds if no one is queued ahead."""
        if not self._waiters and self._value >= n:
            self._value -= n
            return True
        return False

    def release(self, n: int = 1) -> None:
        if n <= 0:
            raise SimulationError(f"release() needs a positive count, got {n}")
        self._value += n
        self._drain()

    def reclaim(self, n: int = 1) -> int:
        """Take up to ``n`` units immediately, bypassing the waiter queue.

        The revocation primitive (credit-window shrinks): unlike
        ``try_acquire`` it does not yield priority to queued waiters —
        the whole point is to remove units before they are handed out.
        Returns how many units were actually taken (never negative).
        """
        if n < 0:
            raise SimulationError(f"reclaim() needs a non-negative count, got {n}")
        take = n if n <= self._value else self._value
        self._value -= take
        return take

    def wait_value(self, n: int = 1) -> Event:
        """Event that fires when the count reaches ``n`` — WITHOUT taking.

        Level-triggered observation: the waiter must ``try_acquire`` after
        waking and re-wait on failure.  Unlike ``acquire``, nothing is
        held inside the event, so an observer that is SIGSTOPped between
        the trigger and its wakeup leaves the units visible to everyone
        (the credit-conservation audits depend on this).
        """
        if n <= 0:
            raise SimulationError(f"wait_value() needs a positive count, got {n}")
        ev = Event(self.sim)
        if self._value >= n and not self._waiters:
            ev.succeed()
        else:
            self._observers.append((ev, n))
        return ev

    def _drain(self) -> None:
        # FIFO: a large acquire at the head blocks smaller ones behind it,
        # mirroring in-order packet admission.
        while self._waiters and self._value >= self._waiters[0][1]:
            ev, n = self._waiters.popleft()
            self._value -= n
            ev.succeed()
        if not self._waiters and self._observers:
            still = deque()
            for ev, n in self._observers:
                if self._value >= n:
                    ev.succeed()
                else:
                    still.append((ev, n))
            self._observers = still
