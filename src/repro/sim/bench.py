"""Microbenchmarks for the DES kernel hot paths.

Each benchmark builds a fresh :class:`~repro.sim.core.Simulator`, drives it
through ``n`` iterations of one event pattern, and reports throughput in
processed events per second.  The patterns cover the kernel's distinct
dispatch paths:

``sleep``
    one process yielding bare-number delays — the canonical simulation
    idiom (every hardware/firmware model sleeps this way) and the fast
    path the kernel optimises hardest;
``timeout``
    the same loop through explicit :meth:`Simulator.timeout` events,
    exercising the Timeout free-list;
``chain``
    callback-driven timeouts with no process involved (pure
    ``add_callback`` dispatch);
``churn``
    processes yielding already-succeeded events (immediate-fire path).

The functions are imported both by ``python -m repro perf`` (a quick
assert-only smoke check) and by ``benchmarks/perf/bench_kernel.py``
(the full JSON-emitting harness).  Wall-clock numbers are measured with
GC left as the caller configured it; the harness disables GC, the smoke
check does not bother.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sim.core import Simulator


def bench_sleep(n: int) -> float:
    """Events/sec for one process yielding bare-number delays."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield 1.0

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_timeout(n: int) -> float:
    """Events/sec for one process yielding explicit Timeout events."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield sim.timeout(1.0)

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_chain(n: int) -> float:
    """Events/sec for a process-free callback chain of timeouts."""
    sim = Simulator()
    state = {"left": n}

    def cb(ev):
        if state["left"] > 0:
            state["left"] -= 1
            sim.timeout(1.0).add_callback(cb)

    sim.timeout(1.0).add_callback(cb)
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run()
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_churn(n: int) -> float:
    """Events/sec for a process yielding already-succeeded events."""
    sim = Simulator()

    def producer():
        for _ in range(n):
            ev = sim.event()
            ev.succeed(1)
            yield ev

    p = sim.process(producer())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_sleep_profiled(n: int) -> float:
    """The ``sleep`` pattern with the kernel profiler attached.

    Measures what telemetry *costs*: the profiled run()-loop dispatches
    through the generic ``step()`` path with one observe() per event, so
    the ratio against :func:`bench_sleep` is the profiler overhead the
    perf harness records (and the events/s figure doubles as the
    profiler's self-benchmark).
    """
    from repro.telemetry.profiler import KernelProfiler

    sim = Simulator()
    sim.profiler = KernelProfiler()

    def proc():
        for _ in range(n):
            yield 1.0

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


#: name -> benchmark function, in reporting order.
KERNEL_BENCHMARKS: dict[str, Callable[[int], float]] = {
    "sleep": bench_sleep,
    "timeout": bench_timeout,
    "chain": bench_chain,
    "churn": bench_churn,
}


def run_smoke(n: int = 50_000, min_events_per_sec: float = 100_000.0) -> int:
    """Quick assert-only health check for ``python -m repro perf``.

    Runs every kernel benchmark once at a small ``n`` and fails (exit
    code 1) if any pattern falls below a floor that even a cold
    interpreter on a loaded CI box clears by an order of magnitude.
    The point is catching catastrophic regressions (an accidentally
    quadratic queue, tracing left enabled), not measuring — use
    ``benchmarks/perf/bench_kernel.py`` for numbers.
    """
    failed = False
    for name, fn in KERNEL_BENCHMARKS.items():
        rate = max(fn(n) for _ in range(2))
        status = "ok" if rate >= min_events_per_sec else "FAIL"
        if rate < min_events_per_sec:
            failed = True
        print(f"  {name:<8} {rate:>12,.0f} events/s  [{status}]")
    if failed:
        print(f"perf smoke FAILED: floor is {min_events_per_sec:,.0f} events/s")
        return 1
    print("perf smoke passed")
    return 0
