"""Microbenchmarks for the DES kernel hot paths.

Each benchmark builds a fresh :class:`~repro.sim.core.Simulator`, drives it
through ``n`` iterations of one event pattern, and reports throughput in
processed events per second.  The patterns cover the kernel's distinct
dispatch paths:

``sleep``
    one process yielding bare-number delays — the canonical simulation
    idiom (every hardware/firmware model sleeps this way) and the fast
    path the kernel optimises hardest;
``timeout``
    the same loop through explicit :meth:`Simulator.timeout` events,
    exercising the Timeout free-list;
``chain``
    callback-driven timeout *links* of ``_WIDTH`` same-instant events
    each: every link schedules the next link's worth of simultaneous
    timeouts from inside a callback, the pattern of a barrier release
    fanning out to a gang (pure ``add_callback`` dispatch, one bucket
    drain per link);
``churn``
    a process creating and immediately succeeding ``_WIDTH`` transient
    events per wake-up (immediate-fire path through the instant bucket
    plus the Event free-list);
``same_instant_burst``
    ``n`` timeouts pre-scheduled at one single future instant, then
    drained in one batch — the calendar's tie-open path versus the
    seed heap's worst case (log-n pops over equal keys);
``far_horizon``
    ``n`` timeouts scattered pseudo-randomly over a wide horizon —
    almost no same-instant sharing, stressing the overflow heap tier
    (expected ~parity with a plain heap; kept to prove the calendar
    does not regress the scattered case).

``chain`` and ``churn`` were redefined in the calendar PR from
single-event links to ``_WIDTH``-wide same-instant links: the paper's
workloads (figures 5–9) are dominated by barrier-release storms and
broadcast fan-outs where hundreds-to-thousands of events share one
timestamp, and batched same-instant dispatch is the optimisation these
two patterns exist to measure.  The perf harness re-measures the seed
kernel on the *same shapes* in the same run, so ratios stay honest.

The functions are imported both by ``python -m repro perf`` (a quick
assert-only smoke check) and by ``benchmarks/perf/bench_kernel.py``
(the full JSON-emitting harness).  They use only the public simulator
API, so the harness can execute the identical workload source against
the seed tree.  Wall-clock numbers are measured with GC left as the
caller configured it; the harness disables GC, the smoke check does
not bother.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sim.core import Simulator

#: Same-instant population for the chain/churn/burst patterns.  Sized
#: for the 1000-node scale the roadmap targets (a full-machine barrier
#: release wakes a few thousand processes at one instant).
_WIDTH = 4096


def bench_sleep(n: int) -> float:
    """Events/sec for one process yielding bare-number delays."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield 1.0

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_timeout(n: int) -> float:
    """Events/sec for one process yielding explicit Timeout events."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield sim.timeout(1.0)

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_chain(n: int) -> float:
    """Events/sec for wide same-instant callback-chain links.

    Each link is ``_WIDTH`` timeouts at one instant; the last callback
    of a link schedules the next link.  This is the barrier-release
    shape: one trigger, a gang-wide fan-out, repeat.
    """
    sim = Simulator()
    state = {"left": n}
    hits = [0]

    def cb(ev):
        hits[0] += 1

    timeout = sim.timeout  # hoisted bind: measure the kernel, not attr lookup

    def last_cb(ev):
        left = state["left"] - _WIDTH
        state["left"] = left
        if left > 0:
            for _ in range(_WIDTH - 1):
                timeout(1.0).add_callback(cb)
            timeout(1.0).add_callback(last_cb)

    last_cb(None)
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run()
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_churn(n: int) -> float:
    """Events/sec for bursts of transient already-succeeded events.

    One process creates and immediately succeeds ``_WIDTH`` events per
    wake-up, waiting on the last — the immediate-completion shape of
    zero-latency protocol steps, all at one instant.
    """
    sim = Simulator()

    event = sim.event  # hoisted bind: measure the kernel, not attr lookup

    def producer():
        made = 0
        while made < n:
            last = None
            for _ in range(_WIDTH):
                ev = event()
                ev.succeed(1)
                last = ev
            made += _WIDTH
            yield last

    p = sim.process(producer())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_same_instant_burst(n: int) -> float:
    """Events/sec draining ``n`` timeouts that share one single instant.

    All events are pre-scheduled at the same future timestamp before the
    clock starts; the run is one giant bucket drain.  The seed heap pays
    a log-n pop with equal-key tuple comparisons per event here.
    Scheduling is inside the timed region (both kernels do the same
    amount of it, and insertion cost is part of what the calendar
    changes).
    """
    sim = Simulator()
    hits = [0]

    def cb(ev):
        hits[0] += 1

    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    for _ in range(n):
        sim.timeout(1.0).add_callback(cb)
    sim.run()
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_far_horizon(n: int) -> float:
    """Events/sec for timeouts scattered over a wide horizon.

    Delays are generated by a fixed multiplicative LCG (no ``random``
    import, fully deterministic), giving ~n distinct timestamps spread
    over ~1000 simulated seconds: the overflow-heap tier does all the
    work and same-instant batching almost never engages.
    """
    sim = Simulator()
    hits = [0]

    def cb(ev):
        hits[0] += 1

    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    for i in range(n):
        sim.timeout(((i * 2654435761) % 1000003) * 1e-3).add_callback(cb)
    sim.run()
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


def bench_sleep_profiled(n: int, stride: int = 32) -> float:
    """The ``sleep`` pattern with the sampling kernel profiler attached.

    Measures what telemetry *costs*: the profiled specialisation of the
    generated run loop observes every ``stride``-th event (exact event
    totals, scaled attribution — see :mod:`repro.telemetry.profiler`),
    so the ratio against :func:`bench_sleep` is the price of
    ``--telemetry`` at the stride the sweeps use.  Pass ``stride=1`` to
    measure exhaustive (every-event) attribution instead.
    """
    from repro.telemetry.profiler import KernelProfiler

    sim = Simulator()
    sim.profiler = KernelProfiler(stride=stride)

    def proc():
        for _ in range(n):
            yield 1.0

    p = sim.process(proc())
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design
    sim.run_until_processed(p)
    return sim.processed_events / (time.perf_counter() - t0)  # simlint: ignore[SIM001] -- microbenchmark measures host wall time by design


#: name -> benchmark function, in reporting order.
KERNEL_BENCHMARKS: dict[str, Callable[[int], float]] = {
    "sleep": bench_sleep,
    "timeout": bench_timeout,
    "chain": bench_chain,
    "churn": bench_churn,
    "same_instant_burst": bench_same_instant_burst,
    "far_horizon": bench_far_horizon,
}


def run_smoke(n: int = 50_000, min_events_per_sec: float = 100_000.0) -> int:
    """Quick assert-only health check for ``python -m repro perf``.

    Runs every kernel benchmark once at a small ``n`` and fails (exit
    code 1) if any pattern falls below a floor that even a cold
    interpreter on a loaded CI box clears by an order of magnitude.
    The point is catching catastrophic regressions (an accidentally
    quadratic queue, tracing left enabled), not measuring — use
    ``benchmarks/perf/bench_kernel.py`` for numbers.
    """
    failed = False
    for name, fn in KERNEL_BENCHMARKS.items():
        rate = max(fn(n) for _ in range(2))
        status = "ok" if rate >= min_events_per_sec else "FAIL"
        if rate < min_events_per_sec:
            failed = True
        print(f"  {name:<18} {rate:>12,.0f} events/s  [{status}]")
    if failed:
        print(f"perf smoke FAILED: floor is {min_events_per_sec:,.0f} events/s")
        return 1
    print("perf smoke passed")
    return 0
