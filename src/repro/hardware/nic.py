"""The Myrinet network interface card.

Models the LANai 4.3 card the paper uses: 512 KB of on-board SRAM (which
the FM send queues and firmware state must fit into), a "halt bit" the
node daemon sets to stop transmission on a packet boundary, and the
attachment points for the DMA engine and the firmware control program.

The firmware itself (the LANai control program) lives in
:mod:`repro.fm.firmware`; the NIC object is the hardware it runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, HardwareError
from repro.hardware.dma import DmaEngine, DmaSpec
from repro.sim.core import Simulator
from repro.sim.primitives import Gate
from repro.units import KiB, US


@dataclass(frozen=True)
class NicSpec:
    """Static parameters of the LANai 4.3 card."""

    sram_bytes: int = 512 * KiB        # paper: "LANai 4.3 processor and 512 KB RAM"
    firmware_reserved: int = 80 * KiB  # control program + routing tables + state
    recv_process_time: float = 2.0 * US  # receive context: consume + classify a packet
    send_pickup_time: float = 0.5 * US   # send context: dequeue + route lookup
    interrupt_time: float = 1.0 * US     # switch to the receive context

    def __post_init__(self):
        if self.sram_bytes <= 0:
            raise ConfigError("sram_bytes must be positive")
        if not 0 <= self.firmware_reserved < self.sram_bytes:
            raise ConfigError("firmware_reserved must fit in SRAM")
        for f in ("recv_process_time", "send_pickup_time", "interrupt_time"):
            if getattr(self, f) < 0:
                raise ConfigError(f"{f} must be >= 0")


class MyrinetNIC:
    """One card: SRAM budget, halt bit, DMA engine, firmware attachment."""

    def __init__(self, sim: Simulator, node_id: int, spec: NicSpec = NicSpec(),
                 dma_spec: DmaSpec = DmaSpec()):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.dma = DmaEngine(sim, dma_spec)
        # Open gate = normal sending; the noded closes it to halt the
        # network on a packet boundary (COMM_halt_network).
        self.send_gate = Gate(sim, opened=True)
        self._sram_allocations: dict[str, int] = {"firmware": spec.firmware_reserved}
        self.firmware: Optional[object] = None  # set by fm.firmware.install()
        #: Transient SRAM faults absorbed so far (fault-injection layer).
        self.sram_faults = 0

    # -- SRAM accounting ------------------------------------------------------
    @property
    def sram_free(self) -> int:
        return self.spec.sram_bytes - sum(self._sram_allocations.values())

    def allocate_sram(self, nbytes: int, tag: str) -> None:
        """Reserve ``nbytes`` of card memory under ``tag``.

        Raises :class:`HardwareError` on over-commit — FM's static send
        queues must genuinely fit on the card.
        """
        if nbytes < 0:
            raise ConfigError(f"negative SRAM allocation {nbytes}")
        if tag in self._sram_allocations:
            raise HardwareError(f"SRAM tag {tag!r} already allocated")
        if nbytes > self.sram_free:
            raise HardwareError(
                f"NIC {self.node_id}: SRAM over-commit: need {nbytes}, free {self.sram_free}"
            )
        self._sram_allocations[tag] = nbytes

    def free_sram(self, tag: str) -> None:
        if tag == "firmware":
            raise HardwareError("cannot free the firmware reservation")
        if tag not in self._sram_allocations:
            raise HardwareError(f"SRAM tag {tag!r} not allocated")
        del self._sram_allocations[tag]

    def sram_allocated(self, tag: str) -> int:
        return self._sram_allocations.get(tag, 0)

    # -- fault injection -----------------------------------------------------
    def corrupt_descriptor(self, packet) -> None:
        """An SRAM bit flip lands in a queued send descriptor.

        The descriptor still looks structurally valid (it will be picked
        up and injected normally) but the bytes it describes are wrong, so
        the packet goes out marked corrupted and fails the receiver's CRC
        check.  Recovery is the reliability layer's job.
        """
        packet.corrupted = True
        self.sram_faults += 1

    # -- halt bit ---------------------------------------------------------------
    def set_halt_bit(self) -> None:
        """Stop the send context before its next packet."""
        self.send_gate.close()

    def clear_halt_bit(self) -> None:
        """Allow the send context to transmit again."""
        self.send_gate.open()

    @property
    def halted(self) -> bool:
        return not self.send_gate.is_open

    # -- packet ingress ------------------------------------------------------------
    def deliver(self, packet) -> None:
        """Called by the fabric when a packet arrives at this card."""
        if self.firmware is None:
            raise HardwareError(f"NIC {self.node_id}: packet arrived before firmware load")
        self.firmware.on_packet_arrival(packet)

    def deliver_event(self, event) -> None:
        """Event-callback form of :meth:`deliver`: the arrival event's
        value is the packet.  Registered once per NIC by the fabric so the
        per-packet path needs no closure allocation."""
        if self.firmware is None:
            raise HardwareError(f"NIC {self.node_id}: packet arrived before firmware load")
        self.firmware.on_packet_arrival(event._value)
