"""Myrinet link parameters.

The fabric model (:mod:`repro.hardware.network`) reduces the switched
Myrinet to three constants per packet: injection time at the source link,
a fixed fall-through latency, and a reception constraint at the
destination link.  1.28 Gb/s is the paper's stated data-network rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import US


@dataclass(frozen=True)
class LinkSpec:
    """One Myrinet link / switch traversal.

    All range checks happen once, at construction: the per-packet methods
    :meth:`wire_time` and :meth:`latency` are branch-free arithmetic on
    the fast path.  **Invariant** (validated by callers, not here): packet
    sizes are non-negative — guaranteed by ``Packet.__post_init__`` — and
    hop counts are non-negative — validated by ``MyrinetFabric.__init__``.
    """

    bandwidth: float = 160e6        # bytes/s: 1.28 Gb/s full duplex
    propagation: float = 0.5 * US   # cable + cut-through fall-through
    switch_latency: float = 0.3 * US  # per-switch routing decision
    #: Raw bit-error rate of the physical link.  Zero on the perfect
    #: Myrinet the paper assumes; the fault-injection layer
    #: (:mod:`repro.faults`) sets it nonzero to model wire corruption,
    #: converting it to a per-packet probability via
    #: :meth:`corruption_probability`.
    bit_error_rate: float = 0.0

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.propagation < 0 or self.switch_latency < 0:
            raise ConfigError("link latencies must be >= 0")
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ConfigError("bit_error_rate must be in [0, 1)")
        # Precomputed reciprocal: one multiply per packet instead of a
        # divide (frozen dataclass, hence object.__setattr__).
        object.__setattr__(self, "inv_bandwidth", 1.0 / self.bandwidth)

    def wire_time(self, nbytes: int) -> float:
        """Serialisation time of ``nbytes`` on the link.

        ``nbytes`` must be >= 0 (see class invariant); not rechecked here.
        """
        return nbytes * self.inv_bandwidth

    def latency(self, hops: int = 1) -> float:
        """Fall-through latency across ``hops`` switches.

        ``hops`` must be >= 0 (see class invariant); not rechecked here.
        """
        return self.propagation + hops * self.switch_latency

    def corruption_probability(self, nbytes: int) -> float:
        """Probability that a ``nbytes`` packet suffers >= 1 bit error.

        ``p = 1 - (1 - BER)^(8 * nbytes)`` — zero when the link is
        perfect, growing with packet size otherwise.
        """
        if self.bit_error_rate == 0.0:
            return 0.0
        return 1.0 - (1.0 - self.bit_error_rate) ** (8 * nbytes)
