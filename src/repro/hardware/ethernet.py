"""The control network: 10 Mb switched Ethernet between daemons.

ParPar reserves the Myrinet for application data; masterd <-> noded
traffic (job loading, context-switch notifications) rides a slower
Ethernet.  The masterd's slot-switch notification is a broadcast [Kavas
et al. 2001]; receivers see it with a small skew, which is what makes the
halt protocol's "local halt" and "arriving halt" transitions interleave
arbitrarily (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, RoutingError
from repro.sim.core import Simulator
from repro.sim.rand import RandomStreams
from repro.units import MS, US


@dataclass(frozen=True)
class EthernetSpec:
    """Latency model for one daemon-to-daemon message."""

    base_latency: float = 0.3 * MS   # kernel UDP path + 10 Mb wire for a small message
    per_byte: float = 0.8e-6         # 10 Mb/s ~ 1.25 MB/s -> 0.8 us/byte
    broadcast_skew: float = 50 * US  # max extra jitter between broadcast receivers

    def __post_init__(self):
        if self.base_latency < 0 or self.per_byte < 0 or self.broadcast_skew < 0:
            raise ConfigError("Ethernet latencies must be >= 0")


class ControlNetwork:
    """Best-effort ordered unicast + skewed broadcast between daemons."""

    def __init__(self, sim: Simulator, spec: EthernetSpec = EthernetSpec(),
                 rng: RandomStreams | None = None):
        self.sim = sim
        self.spec = spec
        self._rng = (rng or RandomStreams(0)).stream("control-ethernet")
        self._handlers: dict[int, Callable] = {}
        self.messages_sent: int = 0

    def register(self, node_id: int, handler: Callable) -> None:
        """``handler(src_id, message)`` runs on each delivery."""
        if node_id in self._handlers:
            raise RoutingError(f"control endpoint {node_id} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    @property
    def endpoints(self) -> list[int]:
        return sorted(self._handlers)

    def _latency(self, nbytes: int) -> float:
        return self.spec.base_latency + nbytes * self.spec.per_byte

    def send(self, src: int, dst: int, message, nbytes: int = 64) -> None:
        """Deliver ``message`` to ``dst`` after the modelled latency."""
        if dst not in self._handlers:
            raise RoutingError(f"control endpoint {dst} not registered")
        handler = self._handlers[dst]
        self.messages_sent += 1
        ev = self.sim.timeout(self._latency(nbytes), value=message)
        ev.add_callback(lambda _ev: handler(src, message))

    def broadcast(self, src: int, message, nbytes: int = 64) -> None:
        """Deliver to every endpoint except ``src``, with per-receiver skew."""
        self.multicast(src, [d for d in self._handlers if d != src], message, nbytes)

    def multicast(self, src: int, dsts, message, nbytes: int = 64) -> None:
        """One wire-level broadcast delivered to the ``dsts`` group.

        This is how the masterd notifies the nodeds of a slot switch [the
        multicast preloading mechanism of Kavas et al. 2001]: one message,
        received by each group member with independent small skew.
        """
        base = self._latency(nbytes)
        for dst in sorted(dsts):
            if dst == src:
                continue
            if dst not in self._handlers:
                raise RoutingError(f"control endpoint {dst} not registered")
            handler = self._handlers[dst]
            skew = float(self._rng.uniform(0.0, self.spec.broadcast_skew))
            self.messages_sent += 1
            ev = self.sim.timeout(base + skew, value=message)
            ev.add_callback(lambda _ev, h=handler: h(src, message))
