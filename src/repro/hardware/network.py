"""The Myrinet fabric: source-routed, per-pair FIFO, no loss.

Two properties of Myrinet matter to the paper's protocols and are the
contract this model provides:

1. **Per-pair FIFO**: FM uses a single precomputed route between each pair
   of nodes and Myrinet preserves order along a route, so a halt message
   broadcast after the last data packet arrives after it (Section 3.2).
2. **No broadcast in hardware**: "the broadcast is implemented by a serial
   loop" — the firmware sends p-1 unicasts; the fabric only ever moves
   unicast packets.

Contention is modelled at both endpoints: a card injects one packet at a
time at link rate, and deliveries into one card are spaced at least a wire
time apart (fan-in saturation), which is what fills receive queues during
the all-to-all experiments (Figure 8).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RoutingError
from repro.hardware.link import LinkSpec
from repro.hardware.nic import MyrinetNIC
from repro.sim.core import Event, Simulator


class MyrinetFabric:
    """Moves packets between registered NICs with realistic timing.

    The per-packet path (:meth:`transmit`) is branch-minimal: the hop
    count is validated and the path latency and bandwidth reciprocal are
    precomputed here, at construction, so moving a packet is a handful of
    multiplies and dict lookups.
    """

    def __init__(self, sim: Simulator, link: LinkSpec = LinkSpec(), hops: int = 1):
        if hops < 0:
            raise RoutingError(f"negative hop count {hops}")
        self.sim = sim
        self.link = link
        self.hops = hops
        self._wire_inv = link.inv_bandwidth
        self._path_latency = link.latency(hops)
        self._nics: dict[int, MyrinetNIC] = {}
        self._rx_free_at: dict[int, float] = {}
        self._deliver_cbs: dict[int, Callable] = {}
        self.packets_moved: int = 0
        self.bytes_moved: int = 0
        # Optional observer for tests/traces: fn(packet, depart, arrive).
        self.observer: Optional[Callable] = None
        #: Optional fault-injection hook (:mod:`repro.faults.injector`).
        #: ``None`` on the perfect fabric — the per-packet fast path pays
        #: exactly one attribute test for it.  When set, its
        #: ``on_transmit(packet, src, dst)`` decides per packet how many
        #: copies arrive (0 = dropped in the switch, 2 = duplicated), with
        #: what extra delay (jitter), and whether the delivered bytes are
        #: corrupted.
        self.fault_injector: Optional[object] = None

    # -- topology -----------------------------------------------------------
    def register(self, nic: MyrinetNIC) -> None:
        if nic.node_id in self._nics:
            raise RoutingError(f"node {nic.node_id} already on the fabric")
        self._nics[nic.node_id] = nic
        self._rx_free_at[nic.node_id] = 0.0
        self._deliver_cbs[nic.node_id] = nic.deliver_event

    def unregister(self, node_id: int) -> None:
        """Remove a node (COMM_remove_node topology update)."""
        if node_id not in self._nics:
            raise RoutingError(f"node {node_id} not on the fabric")
        del self._nics[node_id]
        del self._rx_free_at[node_id]
        del self._deliver_cbs[node_id]

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._nics)

    def nic(self, node_id: int) -> MyrinetNIC:
        try:
            return self._nics[node_id]
        except KeyError:
            raise RoutingError(f"node {node_id} not on the fabric") from None

    # -- data movement ------------------------------------------------------
    def injection_time(self, nbytes: int) -> float:
        """How long the sending card is busy injecting one packet."""
        return nbytes * self._wire_inv

    def transmit(self, src: int, dst: int, packet) -> Event:
        """Launch ``packet`` from src to dst; returns the *arrival* event.

        The caller (the firmware send context) must already have spent the
        injection time — this method handles the network part: fall-through
        latency plus serialisation onto the destination link.  Per-pair
        order is preserved because the source injects serially and the
        destination port is FIFO.
        """
        if src == dst:
            raise RoutingError(f"node {src} attempted to transmit to itself")
        if src not in self._nics:
            raise RoutingError(f"source node {src} not on the fabric")
        try:
            deliver_cb = self._deliver_cbs[dst]
        except KeyError:
            raise RoutingError(f"node {dst} not on the fabric") from None

        nbytes = packet.size_bytes
        now = self.sim.now

        if self.fault_injector is not None:
            return self._transmit_faulty(packet, dst, deliver_cb, nbytes, now)

        earliest = now + self._path_latency
        # Destination link busy until _rx_free_at: fan-in serialisation.
        busy = self._rx_free_at[dst]
        if busy > earliest:
            earliest = busy
        deliver_at = earliest + nbytes * self._wire_inv
        self._rx_free_at[dst] = deliver_at

        self.packets_moved += 1
        self.bytes_moved += nbytes
        if self.observer is not None:
            self.observer(packet, now, deliver_at)

        # The arrival event carries the packet; the NIC's pre-bound
        # delivery callback reads it off the event — no per-packet closure.
        arrival = self.sim.timeout(deliver_at - now, value=packet)
        arrival.callbacks.append(deliver_cb)
        return arrival

    def _transmit_faulty(self, packet, dst: int, deliver_cb, nbytes: int,
                         now: float) -> Event:
        """Slow-path transmit consulted by the fault injector.

        Jitter delays the fall-through but never reorders: deliveries per
        destination stay serialised through ``_rx_free_at``, which is
        monotone in transmit order, so the per-pair FIFO contract (which
        the flush protocol's correctness rests on) survives every fault
        model.  A dropped packet vanishes in the switch — it consumes no
        receive-side wire time and the returned event never delivers.
        """
        copies, packet, extra_delay = self.fault_injector.on_transmit(
            packet, packet.src_node, dst)
        self.packets_moved += 1
        self.bytes_moved += nbytes
        if copies == 0:
            return self.sim.timeout(self._path_latency, value=packet)
        arrival: Optional[Event] = None
        for _ in range(copies):
            earliest = now + self._path_latency + extra_delay
            busy = self._rx_free_at[dst]
            if busy > earliest:
                earliest = busy
            deliver_at = earliest + nbytes * self._wire_inv
            self._rx_free_at[dst] = deliver_at
            if self.observer is not None:
                self.observer(packet, now, deliver_at)
            arrival = self.sim.timeout(deliver_at - now, value=packet)
            arrival.callbacks.append(deliver_cb)
        return arrival
