"""Memory regions and the copy-cost model.

The buffer-switch cost in the paper (Figures 7 and 9) is dominated by
where the queues live:

- the **send queue** sits in NIC SRAM, mapped into the host through a
  *write-combining* (WC) PIO window — fast to write (~80 MB/s), painfully
  slow to read back (~14 MB/s);
- the **receive queue** is a pinned DMA buffer in host RAM, copied at
  plain memcpy speed (~45 MB/s on the Pentium-Pro).

All three rates are the paper's own measurements (Section 4.2); the copy
model reduces every buffer move to "bytes / rate(src-kind, dst-kind)" plus
an optional per-packet scan cost used by the improved (valid-only) switch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MB


class MemoryKind(enum.Enum):
    """Where a buffer lives, which determines copy bandwidth."""

    HOST_RAM = "host_ram"          # pageable host memory (backing store)
    PINNED_RAM = "pinned_ram"      # pinned DMA buffer (receive queue)
    NIC_SRAM = "nic_sram"          # LANai on-card memory behind WC PIO


@dataclass(frozen=True)
class CopyRates:
    """Copy bandwidths in bytes/second (defaults from the paper)."""

    ram_to_ram: float = 45 * MB     # "regular memory accesses ... ~45MB/s"
    wc_write: float = 80 * MB       # host RAM -> NIC SRAM, "rocketed to ~80MB/s"
    wc_read: float = 14 * MB        # NIC SRAM -> host RAM, "as low as ~14MB/s"

    def __post_init__(self):
        for field_name in ("ram_to_ram", "wc_write", "wc_read"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")


class MemoryModel:
    """Copy-time oracle for the buffer-switch algorithms.

    ``scan_cycles_per_slot`` is the cost of examining one queue descriptor
    when the improved switch walks the ring looking for valid packets.
    """

    def __init__(self, rates: CopyRates = CopyRates(), scan_cycles_per_slot: int = 50):
        if scan_cycles_per_slot < 0:
            raise ConfigError("scan_cycles_per_slot must be >= 0")
        self.rates = rates
        self.scan_cycles_per_slot = scan_cycles_per_slot

    def copy_rate(self, src: MemoryKind, dst: MemoryKind) -> float:
        """Effective bytes/second for a host-driven copy src -> dst.

        Reading NIC SRAM through the WC window is the binding constraint
        whenever the NIC is the source; writing to the NIC is faster than
        reading host RAM from cache, so wc_write governs host->NIC; all
        RAM-to-RAM flavours move at memcpy speed.
        """
        if src is MemoryKind.NIC_SRAM and dst is MemoryKind.NIC_SRAM:
            raise ConfigError("NIC-to-NIC host copies are not a modelled operation")
        if src is MemoryKind.NIC_SRAM:
            return self.rates.wc_read
        if dst is MemoryKind.NIC_SRAM:
            return self.rates.wc_write
        return self.rates.ram_to_ram

    def copy_time(self, nbytes: float, src: MemoryKind, dst: MemoryKind) -> float:
        """Seconds for the host to copy ``nbytes`` from src to dst."""
        if nbytes < 0:
            raise ConfigError(f"negative copy size {nbytes}")
        return nbytes / self.copy_rate(src, dst)

    def scan_time(self, slots: int, clock_hz: float) -> float:
        """Seconds to walk ``slots`` ring descriptors at ``clock_hz``."""
        if slots < 0:
            raise ConfigError(f"negative slot count {slots}")
        return slots * self.scan_cycles_per_slot / clock_hz
