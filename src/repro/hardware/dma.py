"""DMA engine: LANai-initiated transfers into the pinned host buffer.

When the LANai's receive context consumes a packet from the network it
DMAs the payload into the destination process's receive queue in pinned
host RAM (paper Section 2.2).  The engine models PCI-era throughput plus
a fixed per-transfer setup cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.core import Simulator, Timeout
from repro.units import MB, US


@dataclass(frozen=True)
class DmaSpec:
    """Throughput and setup cost of the NIC's DMA engine."""

    bandwidth: float = 132 * MB   # 32-bit/33 MHz PCI burst rate
    setup_time: float = 1 * US    # descriptor programming per transfer

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ConfigError("DMA bandwidth must be positive")
        if self.setup_time < 0:
            raise ConfigError("DMA setup_time must be >= 0")


class DmaEngine:
    """One NIC's DMA engine; transfers are serialised FIFO."""

    def __init__(self, sim: Simulator, spec: DmaSpec = DmaSpec()):
        self.sim = sim
        self.spec = spec
        self.bytes_moved: int = 0
        self.transfers: int = 0
        self._free_at: float = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Duration of a single transfer of ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"negative DMA size {nbytes}")
        return self.spec.setup_time + nbytes / self.spec.bandwidth

    def request(self, nbytes: int) -> float:
        """Start a transfer; returns the delay until it completes.

        Back-to-back requests queue behind each other (single engine).
        The return value is meant to be yielded from a simulated process
        (the kernel's bare-number sleep); :meth:`transfer` wraps it in an
        event for callers that need callbacks.
        """
        now = self.sim.now
        start = max(now, self._free_at)
        done = start + self.transfer_time(nbytes)
        self._free_at = done
        self.bytes_moved += nbytes
        self.transfers += 1
        return done - now

    def transfer(self, nbytes: int) -> Timeout:
        """Start a transfer; the returned event fires at completion."""
        return self.sim.timeout(self.request(nbytes))
