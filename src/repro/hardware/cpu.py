"""Host CPU model: a clock plus cycle accounting.

The paper reports all context-switch overheads in cycles of its 200 MHz
Pentium-Pro hosts, so the CPU model's job is (a) to turn modelled work into
simulated busy time and (b) to convert durations back into the cycle
counts the figures use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.core import Event, Simulator, Timeout
from repro.units import cycles_to_seconds, seconds_to_cycles


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a host processor."""

    clock_hz: float = 200e6  # Pentium-Pro 200 MHz, as in the paper
    name: str = "Pentium-Pro 200"

    def __post_init__(self):
        if self.clock_hz <= 0:
            raise ConfigError(f"clock_hz must be positive, got {self.clock_hz}")


class HostCPU:
    """One host processor.

    ``execute(cycles)`` / ``busy(seconds)`` account the work and return
    the busy duration for a simulated process to yield (sleep) on;
    ``busy_event`` wraps it in an event when callbacks are needed.  Total
    busy time is accumulated so experiments can report utilisation.  The model does not arbitrate
    between contenders — under gang scheduling exactly one user process
    runs per node, and the daemons only work while that process is
    stopped, so contention never arises in the modelled scenarios.
    """

    def __init__(self, sim: Simulator, spec: CpuSpec = CpuSpec()):
        self.sim = sim
        self.spec = spec
        self.busy_time: float = 0.0

    # -- conversions --------------------------------------------------------
    def cycles(self, seconds: float) -> int:
        """Duration -> whole cycle count at this CPU's clock."""
        return seconds_to_cycles(seconds, self.spec.clock_hz)

    def seconds(self, cycles: float) -> float:
        """Cycle count -> duration at this CPU's clock."""
        return cycles_to_seconds(cycles, self.spec.clock_hz)

    # -- work ---------------------------------------------------------------
    def busy(self, seconds: float) -> float:
        """Occupy the CPU for ``seconds``; returns the busy duration.

        Yield the return value from a simulated process to wait it out
        (the kernel sleeps on bare numbers); use :meth:`busy_event` when
        an actual Event is needed for callbacks or conditions.
        """
        if seconds < 0:
            raise ConfigError(f"negative busy time {seconds}")
        self.busy_time += seconds
        return seconds

    def busy_event(self, seconds: float) -> Timeout:
        """Occupy the CPU for ``seconds``; returns the completion event."""
        return self.sim.timeout(self.busy(seconds))

    def execute(self, cycles: float) -> float:
        """Occupy the CPU for ``cycles`` of work."""
        return self.busy(self.seconds(cycles))

    def elapsed_cycles_since(self, t0: float) -> int:
        """Cycles elapsed on this CPU's clock since simulated time ``t0``."""
        return self.cycles(self.sim.now - t0)
