"""A compute node: host CPU + Myrinet NIC + memory model.

``HostNode`` is pure hardware; the software stack (FM contexts, daemons)
attaches on top of it.  One ParPar cluster is 16 worker HostNodes plus a
master host that has no Myrinet presence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cpu import CpuSpec, HostCPU
from repro.hardware.dma import DmaSpec
from repro.hardware.memory import MemoryModel
from repro.hardware.nic import MyrinetNIC, NicSpec
from repro.sim.core import Simulator


@dataclass(frozen=True)
class NodeSpec:
    """Hardware configuration of one worker node."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    nic: NicSpec = field(default_factory=NicSpec)
    dma: DmaSpec = field(default_factory=DmaSpec)


class HostNode:
    """One worker machine of the simulated cluster."""

    def __init__(self, sim: Simulator, node_id: int, spec: NodeSpec = NodeSpec(),
                 memory: MemoryModel | None = None):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.cpu = HostCPU(sim, spec.cpu)
        self.nic = MyrinetNIC(sim, node_id, spec.nic, spec.dma)
        self.memory = memory if memory is not None else MemoryModel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HostNode {self.node_id}>"
