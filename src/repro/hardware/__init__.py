"""Hardware models for the simulated ParPar testbed.

Every model is calibrated from numbers the paper itself reports:

- 200 MHz Pentium-Pro hosts (:mod:`~repro.hardware.cpu`);
- plain RAM copies ~45 MB/s, write-combining PIO writes ~80 MB/s and
  reads ~14 MB/s (:mod:`~repro.hardware.memory`);
- Myrinet 1.28 Gb/s links, LANai 4.3 NIC with 512 KB SRAM
  (:mod:`~repro.hardware.link`, :mod:`~repro.hardware.nic`);
- a source-routed fabric with per-pair FIFO ordering and a serial-loop
  "broadcast" (:mod:`~repro.hardware.network`);
- a 10 MB switched Ethernet control LAN (:mod:`~repro.hardware.ethernet`).
"""

from repro.hardware.cpu import CpuSpec, HostCPU
from repro.hardware.dma import DmaEngine, DmaSpec
from repro.hardware.ethernet import ControlNetwork, EthernetSpec
from repro.hardware.link import LinkSpec
from repro.hardware.memory import CopyRates, MemoryKind, MemoryModel
from repro.hardware.network import MyrinetFabric
from repro.hardware.nic import MyrinetNIC, NicSpec
from repro.hardware.node import HostNode

__all__ = [
    "ControlNetwork",
    "CopyRates",
    "CpuSpec",
    "DmaEngine",
    "DmaSpec",
    "EthernetSpec",
    "HostCPU",
    "HostNode",
    "LinkSpec",
    "MemoryKind",
    "MemoryModel",
    "MyrinetFabric",
    "MyrinetNIC",
    "NicSpec",
]
