"""Span-based tracing for multi-stage protocols.

A *span* is a named interval of simulated time with a parent/child
relationship — the natural shape of the protocols this system runs:

- a gang context switch is a ``gang-switch`` span with ``halt`` /
  ``swap`` / ``release`` children (the paper's three stages);
- a packet's life is a ``pkt-flight`` span from wire injection to
  delivery into the destination receive queue;
- a retransmit epoch spans from a sequence number's first retransmission
  to its eventual delivery (or its last retry).

Spans ride the existing :class:`~repro.sim.trace.TraceRecord` stream as
paired ``span-begin`` / ``span-end`` records carrying a span id and an
optional parent id, emitted by a :class:`SpanEmitter` (one per cluster,
so ids are globally unique and deterministic).  :func:`build_spans`
reconstructs interval objects from a record stream; the ``derive_*``
helpers synthesize packet-lifecycle and retransmit-epoch spans from the
ordinary per-packet records, so the hot paths never pay for explicit
span bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.trace import TraceRecord, Tracer

SPAN_BEGIN = "span-begin"
SPAN_END = "span-end"


@dataclass(frozen=True)
class Span:
    """One reconstructed interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanEmitter:
    """Emits span-begin/span-end records onto a tracer.

    Truthy exactly when the underlying tracer records (so call sites
    guard with ``if spans:`` and pay one boolean check when tracing is
    off).  Ids increase monotonically in emission order, which is
    simulation event order — deterministic.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._next_id = 0

    def __bool__(self) -> bool:
        return bool(self.tracer)

    def begin(self, name: str, category: str = "",
              parent: Optional[int] = None, **args) -> int:
        span_id = self._next_id
        self._next_id += 1
        self.tracer.record(SPAN_BEGIN, span=span_id, parent=parent,
                           name=name, cat=category, **args)
        return span_id

    def end(self, span_id: int, **args) -> None:
        self.tracer.record(SPAN_END, span=span_id, **args)


_SPAN_META = frozenset(("span", "parent", "name", "cat"))


def build_spans(records: Iterable[TraceRecord],
                truncated: bool = False) -> list[Span]:
    """Pair begin/end records into :class:`Span` objects.

    Spans never closed (the run ended mid-protocol) are clipped to the
    last record's timestamp.  With ``truncated=True`` (the tracer hit its
    record cap) each clipped span is additionally marked with a
    ``truncated`` arg — its end record may have been lost to the cap, so
    the clipped duration is a lower bound, not a measurement.  Output is
    ordered by start time, then id.
    """
    open_spans: dict[int, TraceRecord] = {}
    closed: list[Span] = []
    last_time = 0.0
    for rec in records:
        last_time = rec.time
        kind = rec.kind
        if kind == SPAN_BEGIN:
            open_spans[rec.fields["span"]] = rec
        elif kind == SPAN_END:
            begin = open_spans.pop(rec.fields["span"], None)
            if begin is None:
                continue    # end without begin: kinds filter ate the begin
            closed.append(_make_span(begin, rec.time, rec.fields))
    clip_fields = {"truncated": True} if truncated else {}
    for span_id in sorted(open_spans):
        closed.append(_make_span(open_spans[span_id], last_time, clip_fields))
    closed.sort(key=lambda s: (s.start, s.span_id))
    return closed


def _make_span(begin: TraceRecord, end_time: float, end_fields: dict) -> Span:
    f = begin.fields
    args = {k: v for k, v in f.items() if k not in _SPAN_META}
    for k, v in end_fields.items():
        if k != "span":
            args[k] = v
    return Span(span_id=f["span"], parent_id=f.get("parent"),
                name=f["name"], category=f.get("cat", ""),
                start=begin.time, end=end_time, args=args)


# ---------------------------------------------------------------- derivations
def derive_packet_spans(records: Iterable[TraceRecord],
                        next_id: int = 1_000_000,
                        truncated: bool = False) -> list[Span]:
    """Packet lifecycles from per-packet records: tx -> delivery.

    Pairs each ``pkt-tx`` carrying a seq with the next ``pkt-deliver`` of
    the same seq (per-pair FIFO makes first-match correct; a retransmitted
    seq yields one span per wire copy that arrived).

    A tx with no matching delivery is normally a genuinely lost wire copy
    (dropped, corrupted, or superseded) and yields no span.  But when the
    record stream was ``truncated`` (the tracer hit its cap mid-run) the
    delivery record may simply be missing, so each unmatched tx becomes
    an *open* span clipped to the last record time and flagged
    ``truncated=True`` — visible in the waterfall instead of silently
    dropped.
    """
    pending: dict[tuple, list] = {}
    spans: list[Span] = []
    last_time = 0.0
    for rec in records:
        last_time = rec.time
        kind = rec.kind
        f = rec.fields
        if kind == "pkt-tx" and "seq" in f:
            pending.setdefault((f["node"], f["dst"], f["seq"]),
                               []).append(rec)
        elif kind == "pkt-deliver":
            key = (f.get("src"), f.get("node"), f.get("seq"))
            queue = pending.get(key)
            if not queue:
                continue
            tx = queue.pop(0)
            spans.append(Span(
                span_id=next_id, parent_id=None, name="pkt-flight",
                category="packet", start=tx.time, end=rec.time,
                args={"src": tx.fields["node"], "dst": tx.fields["dst"],
                      "seq": f.get("seq"), "job": tx.fields.get("job")},
            ))
            next_id += 1
    if truncated:
        leftovers = [tx for key in pending for tx in pending[key]]
        leftovers.sort(key=lambda r: (r.time, r.fields.get("seq", -1)))
        for tx in leftovers:
            f = tx.fields
            spans.append(Span(
                span_id=next_id, parent_id=None, name="pkt-flight",
                category="packet", start=tx.time, end=max(last_time, tx.time),
                args={"src": f["node"], "dst": f["dst"], "seq": f["seq"],
                      "job": f.get("job"), "truncated": True},
            ))
            next_id += 1
    return spans


def derive_retransmit_spans(records: Iterable[TraceRecord],
                            next_id: int = 2_000_000,
                            truncated: bool = False) -> list[Span]:
    """Retransmit epochs: first retransmission of a seq to its delivery.

    A seq never delivered (gave up) spans to its last retry instead; the
    span args carry the retry count and whether it was recovered.  When
    the record stream was ``truncated``, an epoch with no terminal record
    (neither delivery nor give-up reached the trace before the cap) is
    flagged ``truncated=True`` — its ``recovered=False`` is unknown, not
    a verdict.

    Records from a non-default reliability strategy carry a ``strategy``
    field; their epochs are named ``retransmit-epoch-<strategy>`` (and
    tagged in args) so strategy sweeps separate in the span summary.
    Default-strategy records carry no tag and keep the plain name — the
    pre-strategy snapshot contract is unchanged.
    """
    first_rto: dict = {}
    last_seen: dict = {}
    retries: dict = {}
    recovered: dict = {}
    strategy_of: dict = {}
    for rec in records:
        kind = rec.kind
        seq = rec.fields.get("seq")
        if seq is None:
            continue
        if kind == "rto-retransmit":
            first_rto.setdefault(seq, rec.time)
            last_seen[seq] = rec.time
            retries[seq] = retries.get(seq, 0) + 1
            tag = rec.fields.get("strategy")
            if tag is not None:
                strategy_of.setdefault(seq, tag)
        elif kind == "rto-give-up":
            last_seen[seq] = rec.time
            recovered.setdefault(seq, False)
        elif kind == "pkt-deliver" and seq in first_rto:
            last_seen[seq] = rec.time
            recovered[seq] = True
    spans = []
    for seq in sorted(first_rto):
        args = {"seq": seq, "retries": retries.get(seq, 0),
                "recovered": recovered.get(seq, False)}
        if truncated and seq not in recovered:
            args["truncated"] = True
        strategy = strategy_of.get(seq)
        name = "retransmit-epoch"
        if strategy is not None:
            name = f"retransmit-epoch-{strategy}"
            args["strategy"] = strategy
        spans.append(Span(
            span_id=next_id, parent_id=None, name=name,
            category="reliability", start=first_rto[seq],
            end=last_seen[seq], args=args,
        ))
        next_id += 1
    return spans


def summarize_spans(spans: Iterable[Span]) -> dict:
    """Deterministic per-name aggregates for the unified snapshot."""
    by_name: dict[str, list] = {}
    total = 0
    for span in spans:
        total += 1
        cell = by_name.setdefault(span.name, [0, 0.0])
        cell[0] += 1
        cell[1] += span.duration
    return {
        "count": total,
        "by_name": {
            name: {"count": cell[0], "total_seconds": cell[1]}
            for name, cell in sorted(by_name.items())
        },
    }
