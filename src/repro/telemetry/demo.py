"""The ``python -m repro telemetry`` scenario: a fully traced gang switch.

Runs a small gang-scheduled cluster (two all-to-all jobs sharing the
nodes through buffer switching) with the unified telemetry layer on, and
packages everything the CLI verb and the CI smoke check need: the
reconstructed spans, the Chrome ``trace_event`` object, the unified
snapshot, and a pass/fail check that at least one complete gang context
switch (halt / swap / release children under a ``gang-switch`` parent)
was captured and that the snapshot honours the checked-in schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.telemetry.export import to_chrome_trace
from repro.telemetry.schema import validate_snapshot
from repro.workloads.alltoall import alltoall_stream

#: The stages a complete switch must expose (the paper's three phases).
SWITCH_STAGES = ("halt", "swap", "release")


@dataclass
class TelemetryDemo:
    """Everything the telemetry verb produces for one scenario run."""

    snapshot: dict
    spans: list
    trace: dict
    switches: int
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def run_telemetry_demo(nodes: int = 4, time_slots: int = 2,
                       num_switches: int = 4, message_bytes: int = 4096,
                       quantum: float = 0.004, seed: int = 0,
                       max_events: int = 50_000_000) -> TelemetryDemo:
    """Run the traced scenario and self-check the telemetry contract."""
    cluster = ParParCluster(ClusterConfig(
        num_nodes=nodes, time_slots=time_slots, quantum=quantum,
        buffer_switching=True, seed=seed, telemetry=True,
    ))
    workload = alltoall_stream(until=float("inf"),
                               message_bytes=message_bytes)
    for i in range(min(2, time_slots)):
        cluster.submit(JobSpec(f"telemetry-a2a{i}", nodes, workload))
    done = cluster.masterd.switch_count_event(num_switches)
    try:
        cluster.sim.run_until_processed(done, max_events=max_events)
    except SimulationError as exc:
        if not str(exc).startswith("exceeded max_events"):
            raise
    cluster.masterd.pause_rotation()

    spans = cluster.telemetry.all_spans()
    records = list(cluster.telemetry.tracer.records)
    snapshot = cluster.telemetry_snapshot(include_wall=True)
    trace = to_chrome_trace(spans, records, metadata={
        "scenario": f"{nodes} nodes, {time_slots} slots, "
                    f"{num_switches} gang switches",
        "seed": seed,
    })

    problems = validate_snapshot(snapshot)
    problems.extend(_check_switch_spans(spans))
    return TelemetryDemo(
        snapshot=snapshot, spans=spans, trace=trace,
        switches=len(cluster.recorder.records), problems=problems,
    )


def _check_switch_spans(spans) -> list:
    """At least one gang switch must carry all three stage children."""
    children: dict = {}
    parents = {}
    for span in spans:
        if span.name == "gang-switch":
            parents[span.span_id] = span
        elif span.name in SWITCH_STAGES and span.parent_id is not None:
            children.setdefault(span.parent_id, set()).add(span.name)
    complete = [pid for pid, names in children.items()
                if pid in parents and names >= set(SWITCH_STAGES)]
    if not parents:
        return ["no gang-switch spans captured"]
    if not complete:
        return ["no gang-switch span has all of halt/swap/release children"]
    return []
