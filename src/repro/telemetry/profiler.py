"""Kernel profiler: per-component event counts and simulated-time shares.

Attach a :class:`KernelProfiler` to a :class:`~repro.sim.core.Simulator`
(``sim.profiler = KernelProfiler()``) and the kernel attributes dispatched
events to *components* — the digit-stripped name of the simulated process
that the event wakes (``noded3-switch17`` and ``noded7-switch2`` both
become ``noded-switch``), or a ``kernel.*`` pseudo-component for
process-free callback dispatch.  Per component the profiler accumulates
the event count and the simulated time that elapsed while that
component's event was next in line, answering "where do my 10^7 events
go?" for experiment-scale runs.

The zero-cost-when-off guard follows the :class:`~repro.sim.trace.Tracer`
truthiness idiom, but lives *outside* the hot loop: the kernel checks the
profiler once per ``run()`` call, not per event.  With no profiler
attached (or a disabled one) the generated plain run loops in
``sim/core.py`` run untouched; with one attached, the kernel runs the
*profiled* specialisation of the same generated loop — identical dispatch
semantics with the :meth:`observe` hook compiled in — so profiled and
unprofiled simulations produce identical results (pinned by
``tests/telemetry/test_determinism.py``).

Sampling: with ``stride=N`` the kernel calls :meth:`observe` on every
Nth dispatched entry only, cutting profiled-run overhead to a few
percent.  Sampled attribution is *scaled*: each sample stands for
``stride`` events (reported per-component ``events`` are
``samples * stride``) and is charged the full simulated time elapsed
since the previous sample, so per-component ``sim_seconds`` still sum to
the profiled span with no scaling.  Exact totals are never sampled: the
kernel accounts the precise number of dispatched events per run loop via
:meth:`account_events`, so :attr:`events` always equals the simulator's
``processed_events``.  ``stride=1`` (the default) samples every event
and is bit-identical to the pre-sampling profiler.

Wall-clock throughput (the events/s self-benchmark) is accumulated at
run-loop boundaries via :meth:`account_wall` and never enters the
deterministic snapshot unless explicitly asked for with
``include_wall=True``.
"""

from __future__ import annotations

import re

_DIGITS = re.compile(r"\d+")
_DASHES = re.compile(r"-{2,}")


def component_of(name: str) -> str:
    """Collapse a process name to its component: strip run numbers.

    ``noded3-switch17`` -> ``noded-switch``; ``app-j1-r0`` -> ``app-j-r``;
    ``lanai-4`` -> ``lanai``.
    """
    collapsed = _DASHES.sub("-", _DIGITS.sub("", name)).strip("-")
    return collapsed or "anonymous"


class KernelProfiler:
    """Attributes processed events and simulated time to components.

    ``stride`` selects sampling: 1 observes every event (exact
    attribution), N > 1 observes every Nth (scaled attribution, near-zero
    overhead).  Event *totals* are exact regardless of stride.
    """

    def __init__(self, enabled: bool = True, stride: int = 1):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.enabled = enabled
        self.stride = stride
        self.events = 0           # exact count, via account_events()
        self.samples = 0          # observe() calls
        self.wall_seconds = 0.0
        # Sampling phase: events remaining until the next sample.  Kept
        # across run() calls so the sample grid is a property of the
        # event stream, not of how the run was sliced into run() calls.
        self._phase = stride
        # component -> [sample_count, sim_seconds]
        self._components: dict[str, list] = {}
        self._name_cache: dict[str, str] = {}

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------ kernel hooks
    def observe(self, prev_now: float, when: float, event) -> None:
        """Attribute one sampled dispatch (kernel-internal).

        ``prev_now`` is the timestamp of the previous sample (the clock
        before this event, when ``stride == 1``), ``when`` this event's
        timestamp; the delta is the simulated time this sample stands
        for.  Attribution: a Process entry (sleep wake-up or
        termination) belongs to that process; an event with a parked
        process waiter belongs to the waiter; anything else is generic
        kernel callback dispatch.
        """
        name = getattr(event, "name", None)        # Process entries
        if name is None:
            waiter = event._waiter
            if waiter is not None:
                name = waiter.name
        if name is None:
            key = ("kernel.timeout" if type(event).__name__ == "Timeout"
                   else "kernel.event")
        else:
            key = self._name_cache.get(name)
            if key is None:
                key = component_of(name)
                self._name_cache[name] = key
        self.samples += 1
        cell = self._components.get(key)
        if cell is None:
            self._components[key] = [1, when - prev_now]
        else:
            cell[0] += 1
            cell[1] += when - prev_now

    def account_events(self, n: int) -> None:
        """Add the exact number of entries a profiled run loop dispatched."""
        self.events += n

    def account_wall(self, seconds: float) -> None:
        """Add wall-clock spent inside a profiled run loop."""
        self.wall_seconds += seconds

    # ------------------------------------------------------------------ reporting
    @property
    def events_per_sec(self) -> float:
        """The events/s self-benchmark over all profiled run loops."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def snapshot(self, include_wall: bool = False) -> dict:
        """JSON-ready profile.  Deterministic unless ``include_wall``.

        Per-component ``events`` are exact at ``stride == 1`` and scaled
        estimates (``samples * stride``) otherwise; the top-level
        ``events`` total is always exact.  A ``sampling`` section is
        included only for sampled profiles, so ``stride == 1`` snapshots
        are byte-identical to the pre-sampling format.
        """
        stride = self.stride
        components = {
            name: {"events": cell[0] * stride, "sim_seconds": cell[1]}
            for name, cell in sorted(self._components.items())
        }
        out = {"events": self.events, "components": components}
        if stride > 1:
            out["sampling"] = {"stride": stride, "samples": self.samples}
        if include_wall:
            out["self_benchmark"] = {
                "wall_seconds": self.wall_seconds,
                "events_per_sec": self.events_per_sec,
            }
        return out

    def publish(self, registry, prefix: str = "kernel") -> None:
        """Mirror the deterministic profile into a MetricsRegistry."""
        registry.counter(f"{prefix}.events").inc(self.events)
        stride = self.stride
        for name, cell in sorted(self._components.items()):
            registry.counter(f"{prefix}.{name}.events").inc(cell[0] * stride)
            registry.gauge(f"{prefix}.{name}.sim_seconds").add(cell[1])


def merge_profiles(profiles) -> dict:
    """Merge deterministic profile snapshots (sums, input order).

    Component ``events`` sum as reported (already stride-scaled by
    ``snapshot``); ``sampling`` sections, when present, sum samples and
    keep the stride only if all inputs agree (mixed-stride merges drop
    it, since a single stride no longer describes the data).
    """
    events = 0
    components: dict[str, list] = {}
    samples = 0
    strides = set()
    sampled = False
    for profile in profiles:
        events += profile["events"]
        sampling = profile.get("sampling")
        if sampling is not None:
            sampled = True
            samples += sampling["samples"]
            strides.add(sampling["stride"])
        for name, entry in profile["components"].items():
            cell = components.setdefault(name, [0, 0.0])
            cell[0] += entry["events"]
            cell[1] += entry["sim_seconds"]
    out = {
        "events": events,
        "components": {
            name: {"events": cell[0], "sim_seconds": cell[1]}
            for name, cell in sorted(components.items())
        },
    }
    if sampled:
        out["sampling"] = {"samples": samples}
        if len(strides) == 1:
            out["sampling"]["stride"] = strides.pop()
    return out
