"""Kernel profiler: per-component event counts and simulated-time shares.

Attach a :class:`KernelProfiler` to a :class:`~repro.sim.core.Simulator`
(``sim.profiler = KernelProfiler()``) and every event the kernel
dispatches is attributed to a *component* — the digit-stripped name of
the simulated process that the event wakes (``noded3-switch17`` and
``noded7-switch2`` both become ``noded-switch``), or a ``kernel.*``
pseudo-component for process-free callback dispatch.  Per component the
profiler accumulates the event count and the simulated time that elapsed
while that component's event was next in line, answering "where do my
10^7 events go?" for experiment-scale runs.

The zero-cost-when-off guard follows the :class:`~repro.sim.trace.Tracer`
truthiness idiom, but lives *outside* the hot loop: the kernel checks the
profiler once per ``run()`` call, not per event.  With no profiler
attached (or a disabled one) the inlined fast loops in ``sim/core.py``
run untouched; with one attached, the kernel switches to the generic
``step()`` dispatch path, whose semantics are *bit-identical* — the fast
path exists purely as an optimisation of it — so profiled and unprofiled
simulations produce identical results (pinned by
``tests/telemetry/test_determinism.py``).

Wall-clock throughput (the events/s self-benchmark) is accumulated
separately and never enters the deterministic snapshot unless explicitly
asked for with ``include_wall=True``.
"""

from __future__ import annotations

import re

_DIGITS = re.compile(r"\d+")
_DASHES = re.compile(r"-{2,}")


def component_of(name: str) -> str:
    """Collapse a process name to its component: strip run numbers.

    ``noded3-switch17`` -> ``noded-switch``; ``app-j1-r0`` -> ``app-j-r``;
    ``lanai-4`` -> ``lanai``.
    """
    collapsed = _DASHES.sub("-", _DIGITS.sub("", name)).strip("-")
    return collapsed or "anonymous"


class KernelProfiler:
    """Attributes processed events and simulated time to components."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events = 0
        self.wall_seconds = 0.0
        # component -> [event_count, sim_seconds]
        self._components: dict[str, list] = {}
        self._name_cache: dict[str, str] = {}

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------ kernel hooks
    def observe(self, prev_now: float, when: float, event) -> None:
        """Attribute one about-to-be-dispatched event (kernel-internal).

        ``prev_now`` is the clock before this event, ``when`` its
        timestamp; the delta is the simulated time "waited on" this
        event.  Attribution: a Process entry (sleep wake-up or
        termination) belongs to that process; an event with a parked
        process waiter belongs to the waiter; anything else is generic
        kernel callback dispatch.
        """
        name = getattr(event, "name", None)        # Process entries
        if name is None:
            waiter = event._waiter
            if waiter is not None:
                name = waiter.name
        if name is None:
            key = ("kernel.timeout" if type(event).__name__ == "Timeout"
                   else "kernel.event")
        else:
            key = self._name_cache.get(name)
            if key is None:
                key = component_of(name)
                self._name_cache[name] = key
        self.events += 1
        cell = self._components.get(key)
        if cell is None:
            self._components[key] = [1, when - prev_now]
        else:
            cell[0] += 1
            cell[1] += when - prev_now

    def account_wall(self, seconds: float) -> None:
        """Add wall-clock spent inside a profiled run loop."""
        self.wall_seconds += seconds

    # ------------------------------------------------------------------ reporting
    @property
    def events_per_sec(self) -> float:
        """The events/s self-benchmark over all profiled run loops."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def snapshot(self, include_wall: bool = False) -> dict:
        """JSON-ready profile.  Deterministic unless ``include_wall``."""
        components = {
            name: {"events": cell[0], "sim_seconds": cell[1]}
            for name, cell in sorted(self._components.items())
        }
        out = {"events": self.events, "components": components}
        if include_wall:
            out["self_benchmark"] = {
                "wall_seconds": self.wall_seconds,
                "events_per_sec": self.events_per_sec,
            }
        return out

    def publish(self, registry, prefix: str = "kernel") -> None:
        """Mirror the deterministic profile into a MetricsRegistry."""
        registry.counter(f"{prefix}.events").inc(self.events)
        for name, cell in sorted(self._components.items()):
            registry.counter(f"{prefix}.{name}.events").inc(cell[0])
            registry.gauge(f"{prefix}.{name}.sim_seconds").add(cell[1])


def merge_profiles(profiles) -> dict:
    """Merge deterministic profile snapshots (sums, input order)."""
    events = 0
    components: dict[str, list] = {}
    for profile in profiles:
        events += profile["events"]
        for name, entry in profile["components"].items():
            cell = components.setdefault(name, [0, 0.0])
            cell[0] += entry["events"]
            cell[1] += entry["sim_seconds"]
    return {
        "events": events,
        "components": {
            name: {"events": cell[0], "sim_seconds": cell[1]}
            for name, cell in sorted(components.items())
        },
    }
