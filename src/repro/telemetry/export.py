"""Exporters: Chrome ``trace_event`` JSON and a plain-text summary.

The Chrome format (loadable in ``chrome://tracing`` or Perfetto) renders
each :class:`~repro.telemetry.spans.Span` as a complete event (``ph:
"X"``) with microsecond timestamps.  Rows: the trace viewer groups by
``pid``/``tid`` — we map ``pid`` to the node id (from the span's ``node``
arg, 0 for cluster-global spans) and ``tid`` to a per-node *track*
derived from the span category, with ``thread_name`` metadata rows
naming each track — so one node reads as a process whose threads are
``switch``, ``causal``, ``sched``, ``policy``, and so on.  Non-span
trace records become instant events (``ph: "i"``) on an ``events``
track so injected faults, drops, and protocol edges line up against
the spans.

Cross-node causality renders as *flow events* (``ph: "s"`` / ``"f"``):
:func:`to_chrome_trace` accepts ``flows``, each an arrow from one
(node, track, timestamp) to another — e.g. a fragment's wire hop from
the sender NIC to the receiver — drawn by the viewer as a curved arrow
between the two slices enclosing the endpoints.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.sim.trace import TraceRecord
from repro.telemetry.spans import SPAN_BEGIN, SPAN_END, Span

_US = 1e6   # simulated seconds -> trace microseconds


def _pid_of(args: dict) -> int:
    node = args.get("node")
    return int(node) if node is not None else 0


class _Rows:
    """Deterministic (pid, track) -> tid assignment, first-seen order."""

    def __init__(self):
        self.tids: dict[tuple[int, str], int] = {}

    def tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        tid = self.tids.get(key)
        if tid is None:
            tid = sum(1 for p, _ in self.tids if p == pid)
            self.tids[key] = tid
        return tid

    def metadata(self) -> list[dict]:
        events = []
        for pid in sorted({p for p, _ in self.tids}):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"node {pid}" if pid
                         else "node 0 / cluster"},
            })
        for (pid, track), tid in sorted(self.tids.items(),
                                        key=lambda kv: (kv[0][0], kv[1])):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return events


def to_chrome_trace(spans: Iterable[Span],
                    records: Optional[Iterable[TraceRecord]] = None,
                    metadata: Optional[dict] = None,
                    flows: Optional[Iterable[dict]] = None) -> dict:
    """Build the ``{"traceEvents": [...]}`` object.

    ``flows`` entries are ``{"id": int, "name": str, "cat": str,
    "start": {"node": int, "track": str, "ts": seconds},
    "end": {...}}`` — rendered as paired flow-start (``ph: "s"``) and
    flow-finish (``ph: "f"``, binding to the enclosing slice) events.
    """
    events = []
    rows = _Rows()
    for span in spans:
        pid = _pid_of(span.args)
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pid,
            "tid": rows.tid(pid, span.category or "span"),
            "args": dict(span.args, span_id=span.span_id,
                         parent_id=span.parent_id),
        })
    if records is not None:
        for rec in records:
            if rec.kind in (SPAN_BEGIN, SPAN_END):
                continue    # already rendered as complete events
            pid = _pid_of(rec.fields)
            events.append({
                "name": rec.kind,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": rec.time * _US,
                "pid": pid,
                "tid": rows.tid(pid, "events"),
                "args": dict(rec.fields),
            })
    if flows is not None:
        for flow in flows:
            for phase, end_key in (("s", "start"), ("f", "end")):
                point = flow[end_key]
                pid = _pid_of(point)
                event = {
                    "name": flow.get("name", "flow"),
                    "cat": flow.get("cat", "flow"),
                    "ph": phase,
                    "id": flow["id"],
                    "ts": point["ts"] * _US,
                    "pid": pid,
                    "tid": rows.tid(pid, point.get("track", "span")),
                }
                if phase == "f":
                    event["bp"] = "e"   # bind to the enclosing slice
                events.append(event)
    events.extend(rows.metadata())
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = metadata
    return trace


def write_chrome_trace(path, spans, records=None, metadata=None,
                       flows=None) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(spans, records, metadata, flows=flows), fh,
                  indent=1)
        fh.write("\n")


# ---------------------------------------------------------------- text summary
def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_summary(snapshot: dict) -> str:
    """Human-readable view of a unified telemetry snapshot."""
    lines = ["Telemetry summary", "================="]

    metrics = snapshot.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append("metrics:")
        width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            entry = metrics[name]
            if entry["kind"] == "histogram":
                mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
                val = (f"count={entry['count']} mean={_fmt(mean)} "
                       f"min={_fmt(entry['min'])} max={_fmt(entry['max'])}")
            else:
                val = _fmt(entry["value"])
            lines.append(f"  {name:<{width}}  {entry['kind']:<9} {val}")

    profile = snapshot.get("profile")
    if profile and profile.get("components"):
        lines.append("")
        lines.append(f"kernel profile ({profile['events']} events):")
        comps = profile["components"]
        width = max(len(name) for name in comps)
        ranked = sorted(comps.items(),
                        key=lambda item: (-item[1]["events"], item[0]))
        for name, entry in ranked:
            share = (100.0 * entry["events"] / profile["events"]
                     if profile["events"] else 0.0)
            lines.append(f"  {name:<{width}}  {entry['events']:>10} ev "
                         f"({share:5.1f}%)  {entry['sim_seconds']:.6f} sim-s")
        bench = profile.get("self_benchmark")
        if bench:
            lines.append(f"  self-benchmark: "
                         f"{bench['events_per_sec']:,.0f} events/s over "
                         f"{bench['wall_seconds']:.3f} s wall")

    spans = snapshot.get("spans")
    if spans and spans.get("by_name"):
        lines.append("")
        lines.append(f"spans ({spans['count']} total):")
        width = max(len(name) for name in spans["by_name"])
        for name in sorted(spans["by_name"]):
            entry = spans["by_name"][name]
            mean = (entry["total_seconds"] / entry["count"]
                    if entry["count"] else 0.0)
            lines.append(f"  {name:<{width}}  count={entry['count']:<6} "
                         f"mean={mean * 1e6:9.1f} us  "
                         f"total={entry['total_seconds'] * 1e3:9.3f} ms")
    return "\n".join(lines)
