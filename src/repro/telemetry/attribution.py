"""Stall-clock attribution: where did each message's latency go?

Given a :class:`~repro.telemetry.causal.MessageTrace` and the
:class:`~repro.telemetry.causal.SchedulingWindows` derived from the same
record stream, :func:`attribute_message` partitions the message's
end-to-end latency — FM_send entry to reassembly completion — into named
causes.  The partition is *exact by construction*: the critical path
through the causal DAG is the chain

    msg-start → pkt-enq(f) → first-tx(f) → delivering-tx(f)
              → pkt-deliver(f) → msg-recv

where ``f`` is the completing fragment (the one delivered last — per-pair
FIFO makes it the one whose extraction finishes reassembly).  Each chain
segment is then split against recorded stalls and scheduling windows:

=================  ======================================================
host-send          sender CPU: fragmentation, PIO, overheads
credit-stall       sender blocked on a zero credit window
buffer-full        sender blocked on a full send queue
stored-context     fragment parked in a paged-out context (backing store)
buffer-swap        fragment frozen during the buffer-copy stage
gang-barrier       fragment gated by the halted NIC (flush/release wait)
nic-queue          fragment queued behind other traffic on a live NIC
retransmit-backoff lost wire copies: first tx to the delivering tx
wire               injection + flight of the copy that arrived
descheduled        delivered, but the receiving process was SIGSTOPped
host-pickup        receiver CPU: extraction, copy, reassembly
=================  ======================================================

Overlap priority within a segment is fixed (stored-context, then
buffer-swap, then gang-barrier; the remainder is nic-queue), so causes
never double-count and always sum to the measured latency to float
round-off.  This is the accounting the paper does by argument — credits,
halted NICs, and swap copies each tax user-level communication — made
measurable per message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceRecord
from repro.telemetry.causal import MessageTrace, SchedulingWindows

#: every cause, in waterfall (chain) order
CAUSES = (
    "host-send", "credit-stall", "buffer-full", "stored-context",
    "buffer-swap", "gang-barrier", "nic-queue", "retransmit-backoff",
    "wire", "descheduled", "host-pickup",
)

_STALL_CAUSE = {"credit": "credit-stall", "buffer-full": "buffer-full"}

Interval = Tuple[float, float]


def _clip(intervals: Iterable[Interval], lo: float,
          hi: float) -> List[Interval]:
    out = []
    for start, end in intervals:
        s, e = max(start, lo), min(end, hi)
        if e > s:
            out.append((s, e))
    return out


def _total(intervals: Iterable[Interval]) -> float:
    return sum(e - s for s, e in intervals)


def _subtract(base: List[Interval],
              cut: List[Interval]) -> List[Interval]:
    """``base`` minus ``cut`` (both interval lists; result is disjoint)."""
    result = base
    for cs, ce in cut:
        nxt: List[Interval] = []
        for s, e in result:
            if ce <= s or cs >= e:
                nxt.append((s, e))
                continue
            if s < cs:
                nxt.append((s, cs))
            if ce < e:
                nxt.append((ce, e))
        result = nxt
    return result


def attribute_message(trace: MessageTrace,
                      windows: SchedulingWindows) -> Optional[dict]:
    """Exact latency partition for one complete message.

    Returns ``{"latency": s, "causes": {cause: seconds}}`` (every cause
    key present, zero-filled) or ``None`` when the trace is incomplete —
    a truncated stream, a kinds-filtered tracer, or a message still in
    flight when the run ended.
    """
    if not trace.complete:
        return None
    frag = trace.completing_fragment()
    if frag is None or frag.enqueued is None:
        return None
    t_start = trace.started
    t_end = trace.completed
    enq = frag.enqueued
    first_tx = frag.first_tx
    tx = frag.delivering_tx
    deliver = frag.delivered
    # Chain sanity: the stream is event-ordered, so these hold unless the
    # trace was stitched from mismatched streams.
    if not (t_start <= enq <= first_tx <= deliver <= t_end):
        return None
    causes = {cause: 0.0 for cause in CAUSES}

    # -- segment A: sender host, [t_start, enq] -------------------------
    # Recorded stalls are sequential sender waits; clip to the segment
    # (stalls of later fragments fall outside it).  Of what remains,
    # time the *sender* spent SIGSTOPped is descheduled, not CPU work —
    # without this split a send interrupted by a gang switch would book
    # whole quanta as host-send.
    stall_ivs: List[Interval] = []
    for stall_cause, s, e in trace.stalls:
        clipped = _clip([(s, e)], t_start, enq)
        causes[_STALL_CAUSE.get(stall_cause, stall_cause)] += _total(clipped)
        stall_ivs.extend(clipped)
    remaining_a = _subtract([(t_start, enq)], _merge(stall_ivs))
    src_stopped: List[Interval] = []
    for iv in windows.stopped.get((trace.src_node, trace.job), ()):
        src_stopped.extend(_clip([iv], t_start, enq))
    before_a = _total(remaining_a)
    remaining_a = _subtract(remaining_a, _merge(src_stopped))
    causes["descheduled"] += before_a - _total(remaining_a)
    causes["host-send"] = _total(remaining_a)

    # -- segment B: NIC queue, [enq, first_tx] --------------------------
    # Priority: stored-context ⊃ buffer-swap ⊃ gang-barrier; remainder is
    # honest queueing behind other traffic.
    remaining = [(enq, first_tx)]
    for cause, intervals in (
            ("stored-context",
             windows.stored.get((trace.src_node, trace.job), ())),
            ("buffer-swap", windows.swapping.get(trace.src_node, ())),
            ("gang-barrier", windows.halted.get(trace.src_node, ()))):
        overlap: List[Interval] = []
        for iv in intervals:
            overlap.extend(_clip([iv], enq, first_tx))
        before = _total(remaining)
        remaining = _subtract(remaining, _merge(overlap))
        causes[cause] += before - _total(remaining)
    causes["nic-queue"] += _total(remaining)

    # -- segment C: the wire, [first_tx, deliver] -----------------------
    causes["retransmit-backoff"] += tx - first_tx
    causes["wire"] += deliver - tx

    # -- segment D: receiver host, [deliver, t_end] ---------------------
    stopped = windows.stopped.get((trace.dst_node, trace.job), ())
    desched: List[Interval] = []
    for iv in stopped:
        desched.extend(_clip([iv], deliver, t_end))
    desched_total = _total(_merge(desched))
    causes["descheduled"] += desched_total
    causes["host-pickup"] += (t_end - deliver) - desched_total

    return {"latency": t_end - t_start, "causes": causes}


def _merge(intervals: List[Interval]) -> List[Interval]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for s, e in intervals[1:]:
        ls, le = merged[-1]
        if s <= le:
            merged[-1] = (ls, max(le, e))
        else:
            merged.append((s, e))
    return merged


# ---------------------------------------------------------------- aggregates
def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    exact = q * len(sorted_values)
    rank = int(exact)
    if exact > rank:
        rank += 1          # ceil without importing math
    rank = min(len(sorted_values), max(1, rank))
    return sorted_values[rank - 1]


def summarize_attribution(attributions: List[dict]) -> dict:
    """Aggregate per-message partitions into a waterfall summary.

    Returns totals, means, and nearest-rank p50/p90/p99 of both latency
    and each cause's share — everything in seconds, deterministic.
    """
    n = len(attributions)
    summary = {
        "messages": n,
        "latency": _stats([a["latency"] for a in attributions]),
        "causes": {},
    }
    for cause in CAUSES:
        summary["causes"][cause] = _stats(
            [a["causes"][cause] for a in attributions])
    return summary


def _stats(values: List[float]) -> dict:
    if not values:
        return {"total": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    total = sum(ordered)
    return {
        "total": total,
        "mean": total / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1],
    }


def summarize_stalls(records: Iterable[TraceRecord]) -> dict:
    """Per-cause stall counters from raw ``stall`` records.

    ``{cause: {"waits": n, "seconds": s}}`` — the registry harvest and
    the snapshot schema's ``stall.*`` metrics come from exactly this.
    """
    stalls: Dict[str, list] = {}
    for rec in records:
        if rec.kind != "stall":
            continue
        cell = stalls.setdefault(rec.fields["cause"], [0, 0.0])
        cell[0] += 1
        cell[1] += rec.fields["dur"]
    return {cause: {"waits": cell[0], "seconds": cell[1]}
            for cause, cell in sorted(stalls.items())}
