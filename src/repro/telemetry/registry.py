"""Typed metric instruments and the registry that serializes them.

The simulation's quantitative claims — stage timings, queue occupancy,
bandwidth, fault counts — were previously scattered over ad-hoc counters
(``metrics/counters.py`` knows switch stages, ``faults/audit.py`` builds
bespoke dicts, the experiment harness sums firmware attributes by hand).
The :class:`MetricsRegistry` is the single sink: components look up
instruments lazily by name (get-or-create, so nothing needs central
declaration), and one :meth:`~MetricsRegistry.snapshot` call produces a
stable, JSON-ready view.

Three instrument kinds, chosen for deterministic mergeability:

- :class:`Counter` — monotonically increasing int; merges by sum.
- :class:`Gauge` — a last-written float (e.g. a level sampled at the end
  of a run); merges by sum, which is the right semantics for the
  per-point gauges this repo records (residual levels that add across
  hermetic simulations).
- :class:`Histogram` — fixed log2 buckets (one bucket per binary order of
  magnitude, via ``math.frexp``), plus count/sum/min/max; merges
  bucket-wise.  Log2 buckets need no a-priori range configuration, which
  is what lets components register lazily.

Determinism contract: a snapshot contains only values derived from the
simulation (never wall-clock), keys are sorted, and
:func:`merge_snapshots` folds in input order — so per-point snapshots
from a serial sweep and a ``-jN`` pool merge to identical aggregates.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ConfigError

Number = Union[int, float]

#: Histogram bucket exponents are clamped to this range; anything smaller
#: than 2**-64 (or zero/negative) lands in the underflow bucket, anything
#: at or above 2**64 in the overflow bucket.
_MIN_EXP = -64
_MAX_EXP = 64


class Counter:
    """A monotonically increasing integer count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-written level (float)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def add(self, delta: Number) -> None:
        self.value += float(delta)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


def log2_bucket(value: Number) -> int:
    """The fixed log2 bucket index of ``value``.

    Bucket ``e`` holds values in ``[2**(e-1), 2**e)``; zero and negative
    values land in the underflow bucket ``_MIN_EXP``.
    """
    if value <= 0.0:
        return _MIN_EXP
    _, exp = math.frexp(value)   # value == m * 2**exp with m in [0.5, 1)
    if exp < _MIN_EXP:
        return _MIN_EXP
    if exp > _MAX_EXP:
        return _MAX_EXP
    return exp


class Histogram:
    """A distribution with fixed log2 buckets plus count/sum/min/max."""

    kind = "histogram"
    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = log2_bucket(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            # JSON object keys are strings; sort numerically for stability.
            "buckets": {str(e): self.buckets[e] for e in sorted(self.buckets)},
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Lazy, name-keyed home of every instrument in one simulation."""

    def __init__(self):
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------------ lookup
    def _get(self, name: str, cls) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested as {cls.kind}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # ------------------------------------------------------------------ export
    def snapshot(self) -> dict:
        """Stable JSON-ready view: metric name -> serialized instrument."""
        return {name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)}

    def load(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a serialized snapshot into this registry (for merging)."""
        for name in snapshot:
            entry = snapshot[name]
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name).add(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                hist.count += entry["count"]
                hist.sum += entry["sum"]
                for bound, stat in (("min", min), ("max", max)):
                    other = entry.get(bound)
                    if other is None:
                        continue
                    mine = getattr(hist, bound)
                    setattr(hist, bound,
                            other if mine is None else stat(mine, other))
                for exp_str, n in entry["buckets"].items():
                    exp = int(exp_str)
                    hist.buckets[exp] = hist.buckets.get(exp, 0) + n
            else:
                raise ConfigError(f"snapshot metric {name!r} has unknown "
                                  f"kind {kind!r}")


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> dict:
    """Merge metric snapshots (counters/histograms sum, gauges add,
    histogram min/max fold) in input order — deterministic for ordered
    inputs, and order-insensitive for the integer aggregates."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.load(snap)
    return registry.snapshot()
