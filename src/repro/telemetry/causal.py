"""Causal lineage over the trace-record stream.

The instrumented hot paths emit flat per-event records (``msg-start``,
``pkt-enq``, ``pkt-tx``, ``pkt-deliver``, ``msg-recv``, ``stall``,
``rto-*`` …) precisely because flat records are cheap: one dict per
event, no cross-references, zero cost when tracing is off.  This module
is the offline half of the bargain — it replays a record stream and
reconstructs the *causal DAG* the records imply:

- a :class:`MessageTrace` per application message, keyed by
  ``(src_node, job, msg_id)`` (msg ids are process-global counters, so
  the triple is unique within one simulation), holding one
  :class:`FragmentTrace` per wire fragment with its enqueue / first-tx /
  last-tx / delivery timestamps, retransmit history, and drop counts —
  the cross-node edge (tx on the source NIC → deliver on the destination
  NIC) is exactly a Dapper-style *follows-from* link;
- per-node and per-(node, job) *scheduling windows* — halted-NIC
  intervals, buffer-swap intervals, stored-context intervals, and
  SIGSTOP/descheduled intervals — against which
  :mod:`repro.telemetry.attribution` charges the parts of a message's
  latency that overlap them.

Everything here is pure replay: deterministic, order-preserving, and
safe to run on a truncated stream (open intervals clip to the last
record time; incomplete messages are reported as such, never guessed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceRecord
from repro.telemetry.spans import Span

#: record kinds the lineage builder consumes (a tracer restricted to
#: these kinds yields full causal traces at minimum cost)
CAUSAL_KINDS = frozenset((
    "msg-start", "pkt-enq", "pkt-tx", "pkt-deliver", "pkt-drop",
    "msg-recv", "stall", "rto-retransmit", "rto-give-up",
    "pkt-dup-discard", "nic-halt", "nic-release", "buffer-switch",
    "ctx-install", "ctx-remove", "init-job", "job-stop", "job-go",
    "realloc-plan", "realloc-apply", "window-set",
))


@dataclass
class FragmentTrace:
    """One wire fragment's life, summarised from its per-packet records."""

    frag: int
    seq: Optional[int] = None
    enqueued: Optional[float] = None       # pkt-enq: host PIO into send queue
    tx_times: List[float] = field(default_factory=list)   # every wire copy
    delivered: Optional[float] = None      # first pkt-deliver
    extra_deliveries: int = 0              # duplicate arrivals past the first
    retransmits: int = 0
    dup_discards: int = 0
    drops: int = 0
    gave_up: bool = False

    @property
    def first_tx(self) -> Optional[float]:
        return self.tx_times[0] if self.tx_times else None

    @property
    def delivering_tx(self) -> Optional[float]:
        """The wire copy that plausibly delivered: last tx at or before
        the delivery (a spurious retransmit after a lost ack can fire
        *later* than the delivery and must not be mistaken for it)."""
        if self.delivered is None or not self.tx_times:
            return None
        before = [t for t in self.tx_times if t <= self.delivered]
        return before[-1] if before else self.tx_times[0]


@dataclass
class MessageTrace:
    """One application message's causal trace."""

    src_node: int
    job: int
    msg_id: int
    dst_node: Optional[int] = None
    dst_rank: Optional[int] = None
    nbytes: Optional[int] = None
    frag_count: Optional[int] = None
    started: Optional[float] = None        # msg-start: FM_send entry
    sent: Optional[float] = None           # msg-send: last fragment PIOed
    completed: Optional[float] = None      # msg-recv: reassembly finished
    frags: Dict[int, FragmentTrace] = field(default_factory=dict)
    stalls: List[Tuple[str, float, float]] = field(default_factory=list)

    @property
    def key(self) -> tuple:
        return (self.src_node, self.job, self.msg_id)

    @property
    def latency(self) -> Optional[float]:
        if self.started is None or self.completed is None:
            return None
        return self.completed - self.started

    @property
    def complete(self) -> bool:
        """True when the full send-to-reassembly chain was observed."""
        if self.started is None or self.completed is None:
            return False
        if self.frag_count is None or len(self.frags) < self.frag_count:
            return False
        return all(f.enqueued is not None and f.tx_times
                   and f.delivered is not None
                   for f in self.frags.values())

    def completing_fragment(self) -> Optional[FragmentTrace]:
        """The fragment whose delivery finished the message (latest
        delivery; per-pair FIFO makes it the last one extracted)."""
        delivered = [f for f in self.frags.values()
                     if f.delivered is not None]
        if not delivered:
            return None
        return max(delivered, key=lambda f: (f.delivered, f.frag))

    @property
    def retransmits(self) -> int:
        return sum(f.retransmits for f in self.frags.values())

    @property
    def drops(self) -> int:
        return sum(f.drops for f in self.frags.values())


def build_lineage(records: Iterable[TraceRecord]) -> List[MessageTrace]:
    """Replay a record stream into per-message causal traces.

    Returns messages ordered by ``(started, src_node, job, msg_id)``
    (unstarted messages — possible only under a kinds filter or
    truncation — sort first by the earliest record that mentioned them).
    Records are consumed in stream order; the builder never reorders, so
    the same stream always yields the same lineage.
    """
    messages: Dict[tuple, MessageTrace] = {}
    seq_owner: Dict[tuple, tuple] = {}     # (src, dst?, seq) -> (key, frag)
    first_seen: Dict[tuple, float] = {}

    def trace_of(key: tuple, when: float) -> MessageTrace:
        trace = messages.get(key)
        if trace is None:
            trace = MessageTrace(src_node=key[0], job=key[1], msg_id=key[2])
            messages[key] = trace
            first_seen[key] = when
        return trace

    for rec in records:
        kind = rec.kind
        f = rec.fields
        if kind == "msg-start":
            key = (f["node"], f["job"], f["msg"])
            trace = trace_of(key, rec.time)
            trace.started = rec.time
            trace.dst_node = f.get("dst")
            trace.dst_rank = f.get("dst_rank")
            trace.nbytes = f.get("nbytes")
            trace.frag_count = f.get("frags")
        elif kind == "pkt-enq":
            key = (f["node"], f["job"], f["msg"])
            trace = trace_of(key, rec.time)
            frag = trace.frags.setdefault(f["frag"],
                                          FragmentTrace(frag=f["frag"]))
            frag.seq = f.get("seq")
            frag.enqueued = rec.time
            if frag.seq is not None:
                seq_owner[(key[0], frag.seq)] = (key, f["frag"])
        elif kind == "pkt-tx":
            msg = f.get("msg", -1)
            if msg is None or msg < 0:
                continue    # control packet (refill/halt/ready/ack)
            key = (f["node"], f["job"], msg)
            trace = trace_of(key, rec.time)
            index = f.get("frag", 0)
            frag = trace.frags.setdefault(index, FragmentTrace(frag=index))
            if frag.seq is None and f.get("seq") is not None:
                frag.seq = f["seq"]
                seq_owner[(key[0], frag.seq)] = (key, index)
            frag.tx_times.append(rec.time)
        elif kind == "pkt-deliver":
            msg = f.get("msg", -1)
            if msg is None or msg < 0:
                continue
            key = (f["src"], f["job"], msg)
            trace = messages.get(key)
            if trace is None:
                trace = trace_of(key, rec.time)
            frag = _frag_by_seq(trace, seq_owner, key, f)
            if frag.delivered is None:
                frag.delivered = rec.time
            else:
                frag.extra_deliveries += 1
        elif kind == "msg-recv":
            msg = f.get("msg")
            src = f.get("src")
            if msg is None or src is None:
                continue    # pre-causal record shape
            trace = trace_of((src, f["job"], msg), rec.time)
            trace.completed = rec.time
        elif kind == "msg-send":
            key = (f["node"], f["job"], f.get("msg_id", f.get("msg")))
            if key[2] is not None:
                trace_of(key, rec.time).sent = rec.time
        elif kind == "stall":
            msg = f.get("msg", -1)
            if msg is None or msg < 0:
                continue    # anonymous stall (refill path)
            trace = trace_of((f["node"], f["job"], msg), rec.time)
            trace.stalls.append((f["cause"], rec.time - f["dur"], rec.time))
        elif kind == "rto-retransmit":
            owner = seq_owner.get((f["node"], f.get("seq")))
            if owner is not None:
                messages[owner[0]].frags[owner[1]].retransmits += 1
        elif kind == "rto-give-up":
            owner = seq_owner.get((f["node"], f.get("seq")))
            if owner is not None:
                messages[owner[0]].frags[owner[1]].gave_up = True
        elif kind == "pkt-dup-discard":
            owner = _dup_owner(seq_owner, f)
            if owner is not None:
                messages[owner[0]].frags[owner[1]].dup_discards += 1
        elif kind == "pkt-drop":
            owner = _dup_owner(seq_owner, f)
            if owner is not None:
                messages[owner[0]].frags[owner[1]].drops += 1

    ordered = sorted(
        messages.values(),
        key=lambda t: (t.started if t.started is not None
                       else first_seen[t.key],
                       t.src_node, t.job, t.msg_id))
    return ordered


def _frag_by_seq(trace: MessageTrace, seq_owner: dict, key: tuple,
                 f: dict) -> FragmentTrace:
    seq = f.get("seq")
    owner = seq_owner.get((key[0], seq)) if seq is not None else None
    if owner is not None and owner[0] == key:
        return trace.frags.setdefault(owner[1], FragmentTrace(frag=owner[1]))
    # Fallback: single-fragment message or seq map incomplete.
    frag = trace.frags.setdefault(0, FragmentTrace(frag=0))
    if frag.seq is None and seq is not None:
        frag.seq = seq
    return frag


def _dup_owner(seq_owner: dict, f: dict) -> Optional[tuple]:
    """Drops/dup-discards happen at the *receiver*; the seq map is keyed
    by sender node.  Try the record's explicit src first, then scan —
    seqs are globally unique per sim, so at most one sender matches."""
    seq = f.get("seq")
    if seq is None:
        return None
    src = f.get("src")
    if src is not None:
        return seq_owner.get((src, seq))
    for (node, owned_seq), owner in seq_owner.items():
        if owned_seq == seq:
            return owner
    return None


# ---------------------------------------------------------------- windows
@dataclass(frozen=True)
class SchedulingWindows:
    """Interval sets the attribution pass charges overlap against."""

    halted: Dict[int, List[Tuple[float, float]]]           # node -> intervals
    swapping: Dict[int, List[Tuple[float, float]]]         # node -> intervals
    stored: Dict[tuple, List[Tuple[float, float]]]         # (node, job) -> ...
    stopped: Dict[tuple, List[Tuple[float, float]]]        # (node, job) -> ...


def build_windows(records: Iterable[TraceRecord],
                  end_time: Optional[float] = None) -> SchedulingWindows:
    """Derive halted / swapping / stored / descheduled intervals.

    Open intervals (a halt with no release before the stream ended) are
    clipped to ``end_time`` (default: the last record's timestamp).
    Repeated opens (a fail-stop SIGSTOPping an already-parked process)
    keep the earliest open edge.
    """
    halted_open: Dict[int, float] = {}
    stored_open: Dict[tuple, float] = {}
    stopped_open: Dict[tuple, float] = {}
    halted: Dict[int, list] = {}
    swapping: Dict[int, list] = {}
    stored: Dict[tuple, list] = {}
    stopped: Dict[tuple, list] = {}
    last_time = 0.0
    for rec in records:
        last_time = rec.time
        kind = rec.kind
        f = rec.fields
        if kind == "nic-halt":
            halted_open.setdefault(f["node"], rec.time)
        elif kind == "nic-release":
            start = halted_open.pop(f["node"], None)
            if start is not None:
                halted.setdefault(f["node"], []).append((start, rec.time))
        elif kind == "buffer-switch":
            dur = f.get("duration", 0.0)
            swapping.setdefault(f["node"], []).append(
                (rec.time - dur, rec.time))
        elif kind == "ctx-remove":
            stored_open.setdefault((f["node"], f["job"]), rec.time)
        elif kind == "ctx-install":
            key = (f["node"], f["job"])
            start = stored_open.pop(key, None)
            if start is not None:
                stored.setdefault(key, []).append((start, rec.time))
        elif kind == "init-job" and not f.get("installed", True):
            stored_open.setdefault((f["node"], f["job"]), rec.time)
        elif kind == "job-stop":
            stopped_open.setdefault((f["node"], f["job"]), rec.time)
        elif kind == "job-go":
            key = (f["node"], f["job"])
            start = stopped_open.pop(key, None)
            if start is not None:
                stopped.setdefault(key, []).append((start, rec.time))
    clip = end_time if end_time is not None else last_time
    for node, start in sorted(halted_open.items()):
        halted.setdefault(node, []).append((start, max(clip, start)))
    for key, start in sorted(stored_open.items()):
        stored.setdefault(key, []).append((start, max(clip, start)))
    for key, start in sorted(stopped_open.items()):
        stopped.setdefault(key, []).append((start, max(clip, start)))
    return SchedulingWindows(halted=halted, swapping=swapping,
                             stored=stored, stopped=stopped)


# ---------------------------------------------------------------- spans
def derive_causal_spans(records: Iterable[TraceRecord],
                        next_id: int = 3_000_000,
                        truncated: bool = False) -> List[Span]:
    """Span view of the causal layer for exporters and snapshots.

    Emits one ``message`` span per message (category ``causal``), one
    ``stall-<cause>`` span per recorded stall (category ``stall``), and
    one ``realloc`` span per policy-engine reallocation plan (category
    ``policy``, spanning from the plan computation to the last node's
    apply).  Incomplete messages appear only when the stream was
    ``truncated`` — flagged, clipped to the last record time.
    """
    records = list(records)
    messages = build_lineage(records)
    last_time = records[-1].time if records else 0.0
    spans: List[Span] = []
    for trace in messages:
        if trace.started is None:
            continue
        for cause, start, end in trace.stalls:
            spans.append(Span(
                span_id=next_id, parent_id=None, name=f"stall-{cause}",
                category="stall", start=start, end=end,
                args={"node": trace.src_node, "job": trace.job}))
            next_id += 1
        if trace.completed is not None:
            spans.append(Span(
                span_id=next_id, parent_id=None, name="message",
                category="causal", start=trace.started, end=trace.completed,
                args={"node": trace.src_node, "dst": trace.dst_node,
                      "job": trace.job, "nbytes": trace.nbytes,
                      "frags": trace.frag_count,
                      "retransmits": trace.retransmits}))
            next_id += 1
        elif truncated:
            spans.append(Span(
                span_id=next_id, parent_id=None, name="message",
                category="causal", start=trace.started,
                end=max(last_time, trace.started),
                args={"node": trace.src_node, "dst": trace.dst_node,
                      "job": trace.job, "nbytes": trace.nbytes,
                      "frags": trace.frag_count,
                      "retransmits": trace.retransmits,
                      "truncated": True}))
            next_id += 1
    # Reallocation spans: plan record opens, last apply of the same
    # sequence closes.  Also emits anonymous stalls (refill path) so the
    # snapshot's stall totals match the stall-record totals.
    plan_open: Dict[int, TraceRecord] = {}
    plan_last: Dict[int, float] = {}
    for rec in records:
        if rec.kind == "realloc-plan":
            seq = rec.fields.get("sequence")
            plan_open.setdefault(seq, rec)
            plan_last[seq] = rec.time
        elif rec.kind == "realloc-apply":
            seq = rec.fields.get("sequence")
            if seq in plan_open:
                plan_last[seq] = rec.time
        elif rec.kind == "stall" and rec.fields.get("msg", 0) < 0:
            f = rec.fields
            spans.append(Span(
                span_id=next_id, parent_id=None,
                name=f"stall-{f['cause']}", category="stall",
                start=rec.time - f["dur"], end=rec.time,
                args={"node": f["node"], "job": f["job"]}))
            next_id += 1
    for seq in sorted(plan_open, key=lambda s: (plan_open[s].time, str(s))):
        rec = plan_open[seq]
        spans.append(Span(
            span_id=next_id, parent_id=None, name="realloc",
            category="policy", start=rec.time, end=plan_last[seq],
            args={"node": rec.fields.get("node"), "sequence": seq,
                  "jobs": rec.fields.get("jobs")}))
        next_id += 1
    spans.sort(key=lambda s: (s.start, s.span_id))
    return spans
