"""``repro explain`` — the critical-path latency analyzer.

Runs a figure-6-style contention point (two nodes, N gang-scheduled
bandwidth jobs) with causal tracing on, replays the record stream into
per-message lineage (:mod:`repro.telemetry.causal`), charges every
microsecond of every message's latency to a named cause
(:mod:`repro.telemetry.attribution`), and reports the result three ways:

- a text *waterfall* — per-cause totals, shares, and nearest-rank
  percentiles, plus an ASCII breakdown of the slowest message;
- a JSON summary (schema ``repro-explain/1``) with per-point cause
  statistics and top-K exemplar messages;
- a Chrome ``trace_event`` file where each exemplar message renders as
  send/NIC/receive slices on its nodes' tracks with a flow arrow for
  the wire hop, against scheduling-window and policy-reallocation
  context rows.

Determinism discipline: message ids and wire sequence numbers are
process-global counters in the simulator (cheap and collision-free),
so their raw values depend on how many simulations the worker process
ran before this one.  :func:`normalize_records` rewrites both to dense
per-stream indices — ordered by lineage order and first appearance
respectively — before anything is analyzed or written, which is what
makes a ``-j2`` sweep byte-identical to a serial one and a saved trace
(schema ``repro-trace/1``) stable enough to diff.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.common import point_seed, run_points
from repro.experiments.figure6 import _messages_for_quanta
from repro.fm.config import FMConfig
from repro.gluefm.switch import ValidOnlyCopy
from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.job import JobSpec
from repro.sim.trace import TraceRecord
from repro.telemetry.attribution import (CAUSES, attribute_message,
                                         summarize_attribution,
                                         summarize_stalls)
from repro.telemetry.causal import build_lineage, build_windows
from repro.telemetry.spans import Span
from repro.workloads.bandwidth import bandwidth_benchmark

EXPLAIN_SCHEMA = "repro-explain/1"
TRACE_SCHEMA = "repro-trace/1"

#: relative tolerance for the "causes must sum to latency" invariant
_SUM_TOLERANCE = 1e-6


# ---------------------------------------------------------------- running
def _run_point(jobs: int, message_bytes: int, messages: int, quantum: float,
               num_processors: int, policy: str, seed: int):
    """One traced contention point; returns (records, truncated, end_time)."""
    fm = FMConfig(max_contexts=max(jobs, 1), num_processors=num_processors,
                  buffer_policy=policy or "")
    cluster = ParParCluster(ClusterConfig(
        num_nodes=2, time_slots=max(jobs, 1), quantum=quantum,
        buffer_switching=True, switch_algorithm=ValidOnlyCopy(), fm=fm,
        seed=seed, telemetry=True,
    ))
    workload = bandwidth_benchmark(messages, message_bytes)
    submitted = [cluster.submit(JobSpec(f"bw{i}", 2, workload))
                 for i in range(jobs)]
    cluster.run_until_finished(submitted, max_events=500_000_000)
    tracer = cluster.telemetry.tracer
    return list(tracer.records), tracer.truncated, cluster.sim.now


# ---------------------------------------------------------------- normalize
_MSG_BY_NODE = frozenset(("msg-start", "pkt-enq", "pkt-tx", "stall"))
_MSG_BY_SRC = frozenset(("pkt-deliver", "msg-recv"))


def normalize_records(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Rewrite process-global ids to dense, stream-local indices.

    Message ids become the message's index in lineage order (the order
    :func:`~repro.telemetry.causal.build_lineage` returns, which is
    start-time order); wire seqs become first-appearance indices.
    Control-packet sentinels (``msg < 0``) pass through untouched.  The
    rewritten stream replays to the *same* lineage — ids are only ever
    compared for identity — but no longer leaks how many simulations
    the hosting process ran before this one.
    """
    records = list(records)
    msg_map: Dict[tuple, int] = {}
    for index, trace in enumerate(build_lineage(records)):
        msg_map[trace.key] = index
    seq_map: Dict[int, int] = {}
    out: List[TraceRecord] = []
    for rec in records:
        f = rec.fields
        kind = rec.kind
        new = dict(f)
        msg = f.get("msg")
        if msg is not None and msg >= 0:
            if kind in _MSG_BY_NODE:
                key = (f["node"], f["job"], msg)
            elif kind in _MSG_BY_SRC and f.get("src") is not None:
                key = (f["src"], f["job"], msg)
            else:
                key = None
            if key is not None and key in msg_map:
                new["msg"] = msg_map[key]
        if kind == "msg-send":
            msg_id = f.get("msg_id", f.get("msg"))
            key = (f["node"], f["job"], msg_id)
            if msg_id is not None and key in msg_map:
                new["msg_id" if "msg_id" in f else "msg"] = msg_map[key]
        seq = f.get("seq")
        if seq is not None:
            new["seq"] = seq_map.setdefault(seq, len(seq_map))
        out.append(TraceRecord(rec.time, kind, new))
    return out


# ---------------------------------------------------------------- analysis
def analyze_records(records: Sequence[TraceRecord], truncated: bool = False,
                    end_time: Optional[float] = None) -> dict:
    """Lineage -> windows -> per-message attribution -> summary.

    The returned dict carries the aggregate statistics plus a
    ``per_message`` list (index, endpoints, chain timestamps, latency,
    causes) for exemplar selection and chrome rendering.  ``mismatches``
    counts messages whose cause partition failed to sum to the measured
    latency within float tolerance — always 0 unless the attribution
    logic regresses.
    """
    traces = build_lineage(records)
    windows = build_windows(records, end_time=end_time)
    per_message: List[dict] = []
    incomplete = 0
    mismatches = 0
    for index, trace in enumerate(traces):
        att = attribute_message(trace, windows)
        if att is None:
            incomplete += 1
            continue
        total = sum(att["causes"].values())
        if abs(total - att["latency"]) > _SUM_TOLERANCE * max(
                1.0, att["latency"]):
            mismatches += 1
        frag = trace.completing_fragment()
        per_message.append({
            "index": index,
            "job": trace.job,
            "src": trace.src_node,
            "dst": trace.dst_node,
            "nbytes": trace.nbytes,
            "frags": trace.frag_count,
            "retransmits": trace.retransmits,
            "latency": att["latency"],
            "causes": att["causes"],
            "chain": {
                "started": trace.started,
                "enqueued": frag.enqueued,
                "first_tx": frag.first_tx,
                "delivered": frag.delivered,
                "completed": trace.completed,
            },
        })
    summary = summarize_attribution(per_message)
    return {
        "messages": len(traces),
        "complete": len(per_message),
        "incomplete": incomplete,
        "mismatches": mismatches,
        "truncated": truncated,
        "latency": summary["latency"],
        "causes": summary["causes"],
        "stalls": summarize_stalls(records),
        "per_message": per_message,
    }


def _derive_reallocs(records: Iterable[TraceRecord]) -> List[dict]:
    """Policy reallocation intervals (plan -> last apply) for chrome."""
    plan_open: Dict[int, TraceRecord] = {}
    plan_last: Dict[int, float] = {}
    for rec in records:
        seq = rec.fields.get("sequence")
        if rec.kind == "realloc-plan":
            plan_open.setdefault(seq, rec)
            plan_last[seq] = rec.time
        elif rec.kind == "realloc-apply" and seq in plan_open:
            plan_last[seq] = rec.time
    return [{"node": plan_open[s].fields.get("node"), "sequence": s,
             "jobs": plan_open[s].fields.get("jobs"),
             "start": plan_open[s].time, "end": plan_last[s]}
            for s in sorted(plan_open,
                            key=lambda s: (plan_open[s].time, str(s)))]


def _serialize_windows(windows) -> dict:
    """SchedulingWindows -> JSON-able dict (tuple keys joined)."""
    return {
        "halted": {str(n): ivs for n, ivs in sorted(windows.halted.items())},
        "swapping": {str(n): ivs
                     for n, ivs in sorted(windows.swapping.items())},
        "stored": {f"{n},{j}": ivs
                   for (n, j), ivs in sorted(windows.stored.items())},
        "stopped": {f"{n},{j}": ivs
                    for (n, j), ivs in sorted(windows.stopped.items())},
    }


def _explain_worker(args: tuple) -> dict:
    """Picklable sweep worker: run, normalize, analyze one point."""
    (jobs, message_bytes, messages, quantum, num_processors, policy, seed,
     keep_records) = args
    raw, truncated, end_time = _run_point(
        jobs, message_bytes, messages, quantum, num_processors, policy, seed)
    records = normalize_records(raw)
    analysis = analyze_records(records, truncated=truncated,
                               end_time=end_time)
    point = {k: v for k, v in analysis.items() if k != "per_message"}
    point.update(jobs=jobs, message_bytes=message_bytes,
                 messages_per_job=messages, quantum=quantum,
                 policy=policy or None, seed=seed, end_time=end_time)
    return {
        "point": point,
        "per_message": analysis["per_message"],
        "windows": _serialize_windows(build_windows(records,
                                                    end_time=end_time)),
        "reallocs": _derive_reallocs(records),
        "records": ([[r.time, r.kind, r.fields] for r in records]
                    if keep_records else None),
    }


def run_explain(jobs: Sequence[int] = (1, 2, 4),
                message_sizes: Sequence[int] = (1536,),
                messages: Optional[int] = None,
                quantum: float = 0.004,
                num_processors: int = 16,
                policy: Optional[str] = None,
                root_seed: int = 0,
                workers: int = 1,
                keep_records: bool = False) -> List[dict]:
    """The sweep: one traced, attributed point per (jobs, size) cell."""
    items = []
    for njobs in jobs:
        fm = FMConfig(max_contexts=max(njobs, 1),
                      num_processors=num_processors)
        for size in message_sizes:
            count = (messages if messages else
                     _messages_for_quanta(fm, size, quantum, 3.0))
            seed = point_seed(root_seed,
                              f"explain:jobs={njobs}:size={size}")
            items.append((njobs, size, count, quantum, num_processors,
                          policy or "", seed, keep_records))
    return run_points(_explain_worker, items, workers=workers)


# ---------------------------------------------------------------- trace I/O
def trace_payload(results: List[dict]) -> dict:
    """Saved-trace document from results run with ``keep_records=True``."""
    points = []
    for result in results:
        if result["records"] is None:
            raise ValueError("trace_payload needs keep_records=True results")
        p = result["point"]
        points.append({
            "config": {k: p[k] for k in ("jobs", "message_bytes",
                                         "messages_per_job", "quantum",
                                         "policy", "seed")},
            "truncated": p["truncated"],
            "end_time": p["end_time"],
            "records": result["records"],
        })
    return {"schema": TRACE_SCHEMA, "points": points}


def load_trace(doc: dict) -> List[dict]:
    """Re-analyze a saved trace document into explain results."""
    if doc.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"not a {TRACE_SCHEMA} document: "
                         f"schema={doc.get('schema')!r}")
    results = []
    for point in doc["points"]:
        records = [TraceRecord(t, kind, fields)
                   for t, kind, fields in point["records"]]
        end_time = point.get("end_time")
        analysis = analyze_records(records,
                                   truncated=point.get("truncated", False),
                                   end_time=end_time)
        cfg = point["config"]
        payload = {k: v for k, v in analysis.items() if k != "per_message"}
        payload.update(cfg, end_time=end_time)
        results.append({
            "point": payload,
            "per_message": analysis["per_message"],
            "windows": _serialize_windows(
                build_windows(records, end_time=end_time)),
            "reallocs": _derive_reallocs(records),
            "records": point["records"],
        })
    return results


def explain_payload(results: List[dict], top: int = 5) -> dict:
    """The ``repro-explain/1`` JSON document (no raw records)."""
    points = []
    for result in results:
        point = dict(result["point"])
        point["top"] = top_messages(result["per_message"], top)
        points.append(point)
    return {"schema": EXPLAIN_SCHEMA, "points": points}


def top_messages(per_message: List[dict], top: int) -> List[dict]:
    """The ``top`` slowest messages, deterministically tie-broken."""
    ranked = sorted(per_message,
                    key=lambda m: (-m["latency"], m["index"]))
    return ranked[:max(0, top)]


# ---------------------------------------------------------------- rendering
def _us(seconds: float) -> str:
    return f"{seconds * 1e6:10.2f}"


def _bar(value: float, peak: float, width: int = 28) -> str:
    if peak <= 0:
        return ""
    return "#" * max(0, round(width * value / peak))


def render_point(result: dict) -> str:
    """Text waterfall for one explain point."""
    p = result["point"]
    lines = []
    policy = p.get("policy") or "none"
    lines.append(f"point: jobs={p['jobs']} size={p['message_bytes']}B "
                 f"messages={p['messages_per_job']}/job "
                 f"quantum={p['quantum'] * 1e3:g}ms policy={policy}")
    lines.append(f"  messages: {p['complete']} complete, "
                 f"{p['incomplete']} incomplete"
                 + (", TRUNCATED STREAM" if p["truncated"] else ""))
    if p["mismatches"]:
        lines.append(f"  WARNING: {p['mismatches']} messages whose causes "
                     "do not sum to their latency")
    if not p["complete"]:
        return "\n".join(lines)
    lat = p["latency"]
    lines.append(f"  latency (us): mean {lat['mean'] * 1e6:.2f}  "
                 f"p50 {lat['p50'] * 1e6:.2f}  p90 {lat['p90'] * 1e6:.2f}  "
                 f"p99 {lat['p99'] * 1e6:.2f}  max {lat['max'] * 1e6:.2f}")
    lines.append("")
    lines.append(f"  {'cause':<19} {'total(ms)':>10} {'share':>7} "
                 f"{'mean(us)':>10} {'p50(us)':>10} {'p99(us)':>10}")
    grand = lat["total"]
    peak = max(p["causes"][c]["total"] for c in CAUSES)
    for cause in CAUSES:
        stats = p["causes"][cause]
        if stats["total"] <= 0.0:
            continue
        share = 100.0 * stats["total"] / grand if grand else 0.0
        lines.append(f"  {cause:<19} {stats['total'] * 1e3:>10.3f} "
                     f"{share:>6.1f}% {stats['mean'] * 1e6:>10.2f} "
                     f"{stats['p50'] * 1e6:>10.2f} "
                     f"{stats['p99'] * 1e6:>10.2f}  "
                     f"{_bar(stats['total'], peak)}")
    slowest = top_messages(result["per_message"], 1)
    if slowest:
        m = slowest[0]
        lines.append("")
        lines.append(f"  slowest message: index {m['index']} job {m['job']} "
                     f"node {m['src']}->{m['dst']} {m['nbytes']}B "
                     f"{m['frags']} frag(s), {m['latency'] * 1e6:.2f} us")
        m_peak = max(m["causes"].values())
        for cause in CAUSES:
            value = m["causes"][cause]
            if value <= 0.0:
                continue
            lines.append(f"    {cause:<19} {_us(value)} us  "
                         f"{_bar(value, m_peak)}")
    return "\n".join(lines)


def render_explain(results: List[dict]) -> str:
    lines = ["repro explain -- latency attribution", "=" * 37]
    for result in results:
        lines.append("")
        lines.append(render_point(result))
    return "\n".join(lines)


# ---------------------------------------------------------------- chrome
def explain_chrome_trace(result: dict, top: int = 50) -> dict:
    """Chrome trace for one point: exemplar messages + context rows.

    Each exemplar renders as three slices — ``send`` on the source
    host track, ``nic`` on the source NIC track, ``recv`` on the
    destination host track — with a flow arrow for the wire hop.
    Scheduling windows (halted NIC, buffer swap, stored context,
    descheduled job) and policy reallocations render as context rows,
    so a message parked behind a gang switch is visibly *under* the
    window that parked it.
    """
    from repro.telemetry.export import to_chrome_trace

    spans: List[Span] = []
    flows: List[dict] = []
    sid = 0

    def add(name, cat, start, end, **args):
        nonlocal sid
        spans.append(Span(span_id=sid, parent_id=None, name=name,
                          category=cat, start=start, end=end, args=args))
        sid += 1

    for m in top_messages(result["per_message"], top):
        chain = m["chain"]
        name = f"msg {m['index']}"
        common = {"job": m["job"], "nbytes": m["nbytes"],
                  "latency_us": m["latency"] * 1e6}
        add(f"send {name}", "host", chain["started"], chain["enqueued"],
            node=m["src"], **common)
        add(f"nic {name}", "nic", chain["enqueued"], chain["first_tx"],
            node=m["src"], **common)
        add(f"recv {name}", "host", chain["delivered"], chain["completed"],
            node=m["dst"], **common)
        flows.append({
            "id": m["index"], "name": "wire", "cat": "causal",
            "start": {"node": m["src"], "track": "nic",
                      "ts": chain["first_tx"]},
            "end": {"node": m["dst"], "track": "host",
                    "ts": chain["delivered"]},
        })
    windows = result["windows"]
    for node, ivs in windows["halted"].items():
        for start, end in ivs:
            add("nic-halted", "sched", start, end, node=int(node))
    for node, ivs in windows["swapping"].items():
        for start, end in ivs:
            add("buffer-swap", "sched", start, end, node=int(node))
    for key, ivs in windows["stored"].items():
        node, job = key.split(",")
        for start, end in ivs:
            add(f"stored job{job}", "sched", start, end,
                node=int(node), job=int(job))
    for key, ivs in windows["stopped"].items():
        node, job = key.split(",")
        for start, end in ivs:
            add(f"stopped job{job}", "sched", start, end,
                node=int(node), job=int(job))
    for realloc in result["reallocs"]:
        add(f"realloc #{realloc['sequence']}", "policy",
            realloc["start"], realloc["end"],
            node=realloc["node"], jobs=realloc["jobs"])
    spans.sort(key=lambda s: (s.start, s.span_id))
    p = result["point"]
    return to_chrome_trace(
        spans, flows=flows,
        metadata={"schema": EXPLAIN_SCHEMA,
                  "point": {k: p[k] for k in ("jobs", "message_bytes",
                                              "quantum", "policy", "seed")}})


# ---------------------------------------------------------------- smoke
def run_explain_smoke(root_seed: int = 0) -> Tuple[bool, str, dict, dict]:
    """CI gate: a small sweep must attribute cleanly and be pool-stable.

    Runs the preset serially and on a 2-worker pool; requires complete
    messages, zero sum mismatches, and byte-identical text + JSON + chrome
    outputs across the two runs.  Returns (ok, report_text, json_doc,
    chrome_doc) so the CLI can also write the artifacts.
    """
    preset = dict(jobs=(1, 2), message_sizes=(1536,), messages=60,
                  quantum=0.004, root_seed=root_seed, keep_records=True)
    serial = run_explain(workers=1, **preset)
    pooled = run_explain(workers=2, **preset)

    def outputs(results):
        return (render_explain(results),
                json.dumps(explain_payload(results, top=5),
                           indent=2, sort_keys=True),
                json.dumps(explain_chrome_trace(results[-1], top=20),
                           indent=1, sort_keys=True))

    text_s, json_s, chrome_s = outputs(serial)
    text_p, json_p, chrome_p = outputs(pooled)
    problems = []
    if text_s != text_p:
        problems.append("text report diverged between serial and -j2")
    if json_s != json_p:
        problems.append("JSON summary diverged between serial and -j2")
    if chrome_s != chrome_p:
        problems.append("chrome trace diverged between serial and -j2")
    for result in serial:
        p = result["point"]
        if not p["complete"]:
            problems.append(f"point jobs={p['jobs']}: no complete messages")
        if p["mismatches"]:
            problems.append(f"point jobs={p['jobs']}: {p['mismatches']} "
                            "attribution sum mismatches")
        if p["incomplete"]:
            problems.append(f"point jobs={p['jobs']}: {p['incomplete']} "
                            "incomplete messages in an untruncated run")
    text = text_s
    if problems:
        text += "\n\nsmoke FAILURES:\n" + "\n".join(
            f"  - {prob}" for prob in problems)
    else:
        text += ("\n\nsmoke: serial and -j2 byte-identical "
                 f"({len(serial)} points), all causes sum exactly")
    return (not problems, text, json.loads(json_s), json.loads(chrome_s))
