"""Snapshot schema validation (dependency-free).

CI validates every telemetry snapshot against the checked-in schema at
``schemas/telemetry_snapshot.schema.json`` so the snapshot format is a
*contract*: downstream dashboards can rely on it, and accidental format
drift fails the build instead of silently breaking consumers.

The container deliberately has no ``jsonschema`` package, so this module
implements the small JSON-Schema subset the contract uses: ``type``,
``properties``, ``patternProperties``, ``required``,
``additionalProperties``, ``items``, ``enum`` and ``minimum``.
:func:`validate` returns a list of error strings (empty = valid) with
JSON-pointer-ish paths.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, List

#: Repo-root-relative location of the snapshot contract.
SCHEMA_RELPATH = Path("schemas") / "telemetry_snapshot.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    py = _TYPES[expected]
    if expected in ("integer", "number") and isinstance(value, bool):
        return False    # bool is an int subclass; schemas mean real numbers
    return isinstance(value, py)


def validate(obj: Any, schema: dict, path: str = "$") -> List[str]:
    """Check ``obj`` against the supported JSON-Schema subset."""
    errors: List[str] = []

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(obj, t) for t in allowed):
            errors.append(f"{path}: expected type {expected}, "
                          f"got {type(obj).__name__}")
            return errors

    enum = schema.get("enum")
    if enum is not None and obj not in enum:
        errors.append(f"{path}: {obj!r} not in enum {enum}")

    minimum = schema.get("minimum")
    if minimum is not None and isinstance(obj, (int, float)) \
            and not isinstance(obj, bool) and obj < minimum:
        errors.append(f"{path}: {obj} below minimum {minimum}")

    if isinstance(obj, dict):
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        for name in schema.get("required", ()):
            if name not in obj:
                errors.append(f"{path}: missing required property {name!r}")
        extra = schema.get("additionalProperties")
        for key, value in obj.items():
            sub = props.get(key)
            matched = sub is not None
            if sub is not None:
                errors.extend(validate(value, sub, f"{path}.{key}"))
            for pattern, psub in patterns.items():
                if re.search(pattern, key):
                    matched = True
                    errors.extend(validate(value, psub, f"{path}.{key}"))
            if matched:
                continue
            if isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(obj, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(obj):
                errors.extend(validate(value, items, f"{path}[{i}]"))

    return errors


def load_snapshot_schema(repo_root: Path | None = None) -> dict:
    """Load the checked-in snapshot contract."""
    root = repo_root if repo_root is not None else _find_repo_root()
    return json.loads((root / SCHEMA_RELPATH).read_text())


def _find_repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / SCHEMA_RELPATH).exists():
            return parent
    raise FileNotFoundError(
        f"{SCHEMA_RELPATH} not found above {here}; pass repo_root explicitly")


def validate_snapshot(snapshot: dict) -> List[str]:
    """Validate a unified telemetry snapshot against the contract."""
    return validate(snapshot, load_snapshot_schema())
