"""Unified telemetry: metrics registry, kernel profiler, spans, exporters.

Everything observability-related lives here so the simulation layers stay
clean: they either expose deterministic counters that get *harvested*
post-run, or carry a truthiness-guarded tracer/span emitter whose cost is
one boolean check when telemetry is off.

Layout:

- :mod:`repro.telemetry.registry` — typed instruments (Counter, Gauge,
  log2-bucket Histogram) with lazy registration and snapshot merging;
- :mod:`repro.telemetry.profiler` — DES kernel profiler (per-component
  event counts / simulated time, events/s self-benchmark);
- :mod:`repro.telemetry.spans` — span-begin/span-end records over the
  Tracer stream plus reconstruction and packet/retransmit derivations;
- :mod:`repro.telemetry.causal` — per-message lineage (fragment
  timelines, cross-node follows-from edges) and scheduling windows
  replayed from the flat record stream;
- :mod:`repro.telemetry.attribution` — the stall-clock accountant:
  every message's latency partitioned exactly into named causes;
- :mod:`repro.telemetry.explain` — the ``repro explain`` analyzer
  (waterfall reports, attribution JSON, Chrome traces with flow
  arrows, saved-trace ingest);
- :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON (with
  per-node track rows and flow events) and a plain-text summary;
- :mod:`repro.telemetry.schema` — dependency-free validation against the
  checked-in snapshot contract;
- :mod:`repro.telemetry.session` — the :class:`Telemetry` bundle and the
  component harvesters.
"""

from repro.telemetry.attribution import (CAUSES, attribute_message,
                                         summarize_attribution,
                                         summarize_stalls)
from repro.telemetry.causal import (CAUSAL_KINDS, FragmentTrace,
                                    MessageTrace, SchedulingWindows,
                                    build_lineage, build_windows,
                                    derive_causal_spans)
from repro.telemetry.export import (render_summary, to_chrome_trace,
                                    write_chrome_trace)
from repro.telemetry.profiler import KernelProfiler, merge_profiles
from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricsRegistry, log2_bucket,
                                      merge_snapshots)
from repro.telemetry.schema import (load_snapshot_schema, validate,
                                    validate_snapshot)
from repro.telemetry.session import (DEFAULT_TRACE_LIMIT, SNAPSHOT_SCHEMA,
                                     Telemetry, harvest_cluster,
                                     harvest_network,
                                     merge_unified_snapshots)
from repro.telemetry.spans import (Span, SpanEmitter, build_spans,
                                   derive_packet_spans,
                                   derive_retransmit_spans, summarize_spans)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "log2_bucket",
    "merge_snapshots", "KernelProfiler", "merge_profiles",
    "Span", "SpanEmitter", "build_spans", "derive_packet_spans",
    "derive_retransmit_spans", "summarize_spans",
    "CAUSAL_KINDS", "FragmentTrace", "MessageTrace", "SchedulingWindows",
    "build_lineage", "build_windows", "derive_causal_spans",
    "CAUSES", "attribute_message", "summarize_attribution",
    "summarize_stalls",
    "render_summary", "to_chrome_trace", "write_chrome_trace",
    "load_snapshot_schema", "validate", "validate_snapshot",
    "Telemetry", "DEFAULT_TRACE_LIMIT", "SNAPSHOT_SCHEMA",
    "harvest_cluster", "harvest_network", "merge_unified_snapshots",
]
