"""The Telemetry bundle: one object wiring registry, profiler, and spans.

A :class:`Telemetry` is what a simulation carries when observability is
on: a :class:`~repro.telemetry.registry.MetricsRegistry` (the metric
sink), a :class:`~repro.telemetry.profiler.KernelProfiler` (attached to
the Simulator), a :class:`~repro.sim.trace.Tracer` (bounded by default so
long runs cannot exhaust memory silently), and a
:class:`~repro.telemetry.spans.SpanEmitter` over that tracer.

Component counters are *harvested* at snapshot time rather than double-
written on hot paths: the firmwares, fabric, switch recorder, fault
injector, and reliability layer already keep deterministic counts, so
:func:`harvest_cluster` folds them into the registry once, after the
run.  The unified snapshot is then

    {"schema": "repro-telemetry/1",
     "metrics": {...}, "profile": {...}, "spans": {...}}

— validated against ``schemas/telemetry_snapshot.schema.json`` and
deterministic by construction: no wall-clock value enters it unless
``include_wall=True`` is requested explicitly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.trace import Tracer
from repro.telemetry.profiler import KernelProfiler, merge_profiles
from repro.telemetry.registry import MetricsRegistry, merge_snapshots
from repro.telemetry.spans import (SpanEmitter, build_spans,
                                   derive_packet_spans,
                                   derive_retransmit_spans, summarize_spans)

SNAPSHOT_SCHEMA = "repro-telemetry/1"

#: Default record cap — roomy for experiment runs, finite for streaming
#: workloads (the tracer self-disables and flags ``truncated`` at the cap).
DEFAULT_TRACE_LIMIT = 2_000_000


class Telemetry:
    """Everything one simulation needs to be observable."""

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 trace_kinds: Optional[set] = None,
                 trace_limit: Optional[int] = DEFAULT_TRACE_LIMIT):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.profiler = KernelProfiler(enabled=enabled)
        self.tracer = Tracer(clock=clock, enabled=enabled, kinds=trace_kinds,
                             limit=trace_limit)
        self.spans = SpanEmitter(self.tracer)

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------ spans
    def all_spans(self):
        """Explicit spans plus packet/retransmit/causal derivations."""
        from repro.telemetry.causal import derive_causal_spans
        records = self.tracer.records
        truncated = self.tracer.truncated
        spans = build_spans(records, truncated=truncated)
        base = (max((s.span_id for s in spans), default=-1) + 1)
        spans += derive_packet_spans(records, next_id=max(base, 1_000_000),
                                     truncated=truncated)
        spans += derive_retransmit_spans(records,
                                         next_id=max(base, 1_000_000)
                                         + 1_000_000, truncated=truncated)
        spans += derive_causal_spans(records,
                                     next_id=max(base, 1_000_000)
                                     + 2_000_000, truncated=truncated)
        return spans

    # ------------------------------------------------------------------ snapshot
    def snapshot(self, include_wall: bool = False) -> dict:
        span_summary = summarize_spans(self.all_spans())
        if self.tracer.truncated:
            span_summary["truncated"] = True
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": self.registry.snapshot(),
            "profile": self.profiler.snapshot(include_wall=include_wall),
            "spans": span_summary,
        }


def merge_unified_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge unified snapshots (e.g. one per sweep point) in input order.

    Deterministic: serial and ``-jN`` sweeps produce identical per-point
    snapshots in identical order, hence identical merges.  Wall-clock
    self-benchmarks, if present, are dropped — they are measurement noise,
    not aggregates.
    """
    snapshots = list(snapshots)
    merged_spans: dict = {"count": 0, "by_name": {}}
    truncated = False
    for snap in snapshots:
        spans = snap["spans"]
        merged_spans["count"] += spans["count"]
        truncated = truncated or spans.get("truncated", False)
        for name, entry in spans["by_name"].items():
            cell = merged_spans["by_name"].setdefault(
                name, {"count": 0, "total_seconds": 0.0})
            cell["count"] += entry["count"]
            cell["total_seconds"] += entry["total_seconds"]
    merged_spans["by_name"] = {
        name: merged_spans["by_name"][name]
        for name in sorted(merged_spans["by_name"])
    }
    if truncated:
        merged_spans["truncated"] = True
    profiles = [dict(s["profile"]) for s in snapshots]
    for profile in profiles:
        profile.pop("self_benchmark", None)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": merge_snapshots(s["metrics"] for s in snapshots),
        "profile": merge_profiles(profiles),
        "spans": merged_spans,
    }


# ---------------------------------------------------------------- harvesting
def harvest_firmwares(registry: MetricsRegistry, firmwares) -> None:
    """Fold firmware packet counters (and reliability stats, if the
    reliability layer is loaded) into the registry."""
    for fw in firmwares:
        registry.counter("fm.packets_sent").inc(fw.packets_sent)
        registry.counter("fm.packets_received").inc(fw.packets_received)
        registry.counter("fm.packets_dropped").inc(len(fw.dropped_packets))
        if hasattr(fw, "retransmits"):
            registry.counter("reliability.retransmits").inc(fw.retransmits)
            registry.counter("reliability.acks_sent").inc(fw.acks_sent)
            registry.counter("reliability.acks_received").inc(fw.acks_received)
            registry.counter("reliability.dup_discards").inc(fw.dup_discards)
            registry.counter("reliability.corrupt_discards").inc(
                fw.corrupt_discards)
            registry.counter("reliability.permanent_losses").inc(
                fw.permanent_losses)
            registry.gauge("reliability.outstanding_unacked").add(
                fw.outstanding)
            registry.gauge("reliability.parked").add(fw.parked_count())
            _harvest_strategy(registry, fw)


def _harvest_strategy(registry: MetricsRegistry, fw) -> None:
    """NACK and strategy-specific counters — only for non-default
    strategies, so the default (per-packet) snapshot stays byte-identical
    to the pre-strategy contract."""
    from repro.faults.strategies import DEFAULT_STRATEGY
    strategy = getattr(fw, "strategy", None)
    if strategy is None or strategy.name == DEFAULT_STRATEGY:
        return
    registry.counter("reliability.nacks_sent").inc(fw.nacks_sent)
    registry.counter("reliability.nacks_received").inc(fw.nacks_received)
    for key, value in strategy.stats().items():
        # Gauges so merged sweeps sum across points, like stall.*.seconds.
        registry.gauge(f"reliability.strategy.{key}").add(value)


def harvest_fabric(registry: MetricsRegistry, fabric) -> None:
    registry.counter("fabric.packets_moved").inc(fabric.packets_moved)
    registry.counter("fabric.bytes_moved").inc(fabric.bytes_moved)


def harvest_switches(registry: MetricsRegistry, recorder) -> None:
    """Switch-stage timings and queue occupancy (Figures 7/8/9 raw data)."""
    recorder.publish(registry)


def harvest_faults(registry: MetricsRegistry, injector) -> None:
    for name, value in injector.counters().items():
        registry.counter(f"faults.{name}").inc(value)


def harvest_recovery(registry: MetricsRegistry, stats) -> None:
    """Fold the recovery layer's counters and detection latencies.

    Detection latencies land in a ``recovery.detection_latency``
    histogram (seconds); everything else is a ``recovery.*`` counter.
    The flat ``detection_latency_count``/``_total`` counters from
    :meth:`RecoveryStats.counters` are skipped — the histogram already
    carries count and sum.
    """
    for name, value in stats.counters().items():
        if name.startswith("detection_latency"):
            continue
        registry.counter(f"recovery.{name}").inc(value)
    hist = registry.histogram("recovery.detection_latency")
    for latency in stats.detection_latencies:
        hist.observe(latency)


def harvest_policy(registry: MetricsRegistry, engine) -> None:
    """Fold a PolicyEngine's reallocation counters into the registry.

    ``policy.min_window``/``policy.max_window`` land as gauges (a merged
    snapshot sums them across points — divide by ``policy.reports`` for
    means); everything else is a monotone counter.
    """
    for name, value in engine.counters().items():
        if name in ("min_window", "max_window"):
            registry.gauge(f"policy.{name}").add(value)
        else:
            registry.counter(f"policy.{name}").inc(value)
    registry.counter("policy.reports").inc(1)


def harvest_stalls(registry: MetricsRegistry, records) -> None:
    """Fold per-cause stall totals (from raw ``stall`` records) into
    ``stall.<cause>.waits`` counters and ``stall.<cause>.seconds`` gauges
    (gauges sum across merged points, matching the counters)."""
    from repro.telemetry.attribution import summarize_stalls
    for cause, cell in summarize_stalls(records).items():
        registry.counter(f"stall.{cause}.waits").inc(cell["waits"])
        registry.gauge(f"stall.{cause}.seconds").add(cell["seconds"])


def harvest_cluster(telemetry: Telemetry, cluster) -> None:
    """Fold one ParParCluster's deterministic counters into the registry."""
    registry = telemetry.registry
    harvest_firmwares(registry, (g.firmware for g in cluster.glue))
    harvest_stalls(registry, telemetry.tracer.records)
    harvest_fabric(registry, cluster.fabric)
    harvest_switches(registry, cluster.recorder)
    if getattr(cluster, "policy_engine", None) is not None:
        harvest_policy(registry, cluster.policy_engine)
    if cluster.fault_injector is not None:
        harvest_faults(registry, cluster.fault_injector)
    if getattr(cluster, "recovery_stats", None) is not None:
        harvest_recovery(registry, cluster.recovery_stats)
    registry.counter("sim.events").inc(cluster.sim.processed_events)
    registry.gauge("sim.seconds").add(cluster.sim.now)


def harvest_network(telemetry: Telemetry, net) -> None:
    """Fold an FMNetwork harness's counters (figure5/nicmem-style runs)."""
    registry = telemetry.registry
    harvest_firmwares(registry, net.firmwares.values())
    harvest_fabric(registry, net.fabric)
    harvest_stalls(registry, telemetry.tracer.records)
    registry.counter("sim.events").inc(net.sim.processed_events)
    registry.gauge("sim.seconds").add(net.sim.now)
