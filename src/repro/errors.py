"""Exception hierarchy for the repro package.

Every error raised by the simulation or by the modelled protocols derives
from :class:`ReproError` so callers can catch domain failures without
masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class SimulationError(ReproError):
    """Misuse of the simulation kernel (e.g. scheduling in the past)."""


class InterruptError(ReproError):
    """Raised inside a simulated process when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class HardwareError(ReproError):
    """Violation of a hardware model invariant (e.g. SRAM over-commit)."""


class BufferOverflowError(HardwareError):
    """A ring queue was asked to hold more packets than its capacity."""


class ProtocolError(ReproError):
    """A communication protocol invariant was violated."""


class CreditError(ProtocolError):
    """Flow-control credit accounting went wrong (negative/overflow)."""


class PacketLossError(ProtocolError):
    """A packet was dropped in a configuration that forbids loss."""


class RoutingError(ProtocolError):
    """No route between a pair of nodes, or malformed source route."""


class SchedulingError(ReproError):
    """Gang-scheduling matrix or daemon state violation."""


class AllocationError(SchedulingError):
    """A job could not be placed in the gang matrix."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class ContextSwitchError(ReproError):
    """The three-stage context-switch protocol failed an invariant."""
