"""FM's credit-based flow control (paper Section 2.2).

Each process holds, *per peer node*, two counters: how many packets it may
still send to that peer (one credit = one receive-queue slot reserved
there), and how many packets it has consumed from that peer since it last
told the peer about them.  Credits are returned by **refill** messages —
sent explicitly when the peer's remaining credits (as seen from here)
fall below the low-water mark, or piggybacked on any data packet already
travelling in the reverse direction.

``c0 == 0`` is a legal configuration (it is exactly what the original
static partitioning produces at 7-8 contexts) and means communication is
impossible; :meth:`acquire_send` raises :class:`CreditError` so callers
can report zero bandwidth rather than deadlock.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import CreditError
from repro.sim.core import Event, Simulator
from repro.sim.primitives import Semaphore


class CreditState:
    """Per-context flow-control state (lives in process memory)."""

    def __init__(self, sim: Simulator, c0: int, peers: Iterable[int],
                 low_water_fraction: float = 0.5):
        if c0 < 0:
            raise CreditError(f"negative initial credits {c0}")
        if not 0.0 <= low_water_fraction < 1.0:
            raise CreditError(f"low_water_fraction {low_water_fraction} out of range")
        self.sim = sim
        self.c0 = c0
        self._low_water_fraction = low_water_fraction
        self.low_water = int(c0 * low_water_fraction)
        #: consume this many from one peer before telling it (>=1)
        self.refill_threshold = max(1, c0 - self.low_water)
        self._send_credits: dict[int, Semaphore] = {
            peer: Semaphore(sim, value=c0) for peer in peers
        }
        self._consumed: dict[int, int] = {peer: 0 for peer in peers}
        # statistics
        self.refills_sent = 0
        self.refills_piggybacked = 0
        self.credits_received = 0
        #: level-triggered waits issued by blocked senders (one per
        #: wakeup attempt — the stall-clock accountant's ground truth
        #: for how often this context hit a zero credit window)
        self.send_waits = 0

    # -- introspection -------------------------------------------------------
    @property
    def peers(self) -> list[int]:
        return sorted(self._send_credits)

    def available(self, peer: int) -> int:
        """Credits currently available for sending to ``peer``."""
        return self._peer_sem(peer).value

    def consumed_unreported(self, peer: int) -> int:
        """Packets consumed from ``peer`` not yet refilled back to it."""
        return self._consumed[peer]

    def _peer_sem(self, peer: int) -> Semaphore:
        try:
            return self._send_credits[peer]
        except KeyError:
            raise CreditError(f"unknown peer node {peer}") from None

    # -- sender side -------------------------------------------------------------
    def acquire_send(self, peer: int) -> Event:
        """One credit toward ``peer``; the event blocks until available.

        The credit is taken when the event *triggers* — if the holder can
        be SIGSTOPped (gang-scheduled user code), prefer the
        ``try_acquire_send`` / ``wait_send`` pair, which never parks a
        taken credit inside an undelivered event.
        """
        self._require_window()
        return self._peer_sem(peer).acquire(1)

    def try_acquire_send(self, peer: int) -> bool:
        """Atomically take one credit toward ``peer`` if available now."""
        self._require_window()
        return self._peer_sem(peer).try_acquire(1)

    def wait_send(self, peer: int) -> Event:
        """Level-triggered: fires when a credit toward ``peer`` appears
        (without taking it); pair with ``try_acquire_send`` in a loop."""
        self._require_window()
        self.send_waits += 1
        return self._peer_sem(peer).wait_value(1)

    def set_window(self, new_c0: int) -> int:
        """Retarget the per-peer credit window (dynamic buffer policies).

        Growing mints ``new_c0 - c0`` fresh credits toward every peer
        immediately.  Shrinking can only *reclaim* credits that are
        currently available here: credits committed to queued packets,
        sitting in the peer's receive queue, or returning in refills are
        someone else's to spend and stay counted until they come home.
        The reclaim is uniform across peers (C0 is a scalar), limited by
        the *minimum* availability, so the achieved window is
        ``c0 - min(requested shrink, min over peers of available)``.

        Returns the achieved window and recomputes the low-water mark /
        refill threshold from it.  Conservation survives in both
        directions: each peer-pair identity ``C0 = available + committed
        + in_recv + unreported + returning`` changes its C0 and its
        ``available`` term by the same delta, so the strict overflow
        check in :meth:`on_refill` (against the *new* C0) can still never
        trip on a legitimate refill.
        """
        if new_c0 < 0:
            raise CreditError(f"negative credit window {new_c0}")
        if new_c0 > self.c0:
            delta = new_c0 - self.c0
            for peer in self.peers:
                self._send_credits[peer].release(delta)
            achieved = new_c0
        elif new_c0 < self.c0:
            want = self.c0 - new_c0
            if self._send_credits:
                reclaimable = min(sem.value
                                  for sem in self._send_credits.values())
            else:
                reclaimable = want
            take = min(want, reclaimable)
            if take:
                for peer in self.peers:
                    self._send_credits[peer].reclaim(take)
            achieved = self.c0 - take
        else:
            return self.c0
        self.c0 = achieved
        self.low_water = int(achieved * self._low_water_fraction)
        self.refill_threshold = max(1, achieved - self.low_water)
        return achieved

    def _require_window(self) -> None:
        if self.c0 == 0:
            raise CreditError(
                "zero initial credits: communication impossible under this "
                "buffer partitioning (paper Fig. 5, >= 7 contexts)"
            )

    def on_refill(self, peer: int, count: int) -> None:
        """Peer returned ``count`` credits (explicit refill or piggyback).

        **Overflow is a protocol error, deliberately.**  Conservation
        makes a legitimate overflow impossible: every credit returned was
        first consumed at the peer, and the peer's ``take_refill`` /
        ``take_piggyback`` zero the consumed counter *atomically* with
        enqueueing the packet that carries it, so the sum of credits here,
        in flight, and parked at the peer never exceeds C0 — regardless
        of how refills and piggybacks race or how long a context sat in
        backing store (delayed application via ``credit_turnaround``
        included).  The only event that can trip this check is the same
        credit arriving *twice*, i.e. a duplicated packet.  Preventing
        that is the reliability layer's contract: under fault injection
        ``ReliableFirmware`` deduplicates by sequence number *before*
        applying piggybacks, and on a perfect network duplication cannot
        happen.  Tolerating overflow here would instead silently mint
        credits and mask exactly the corruption the paper warns about
        ("a single packet loss can mess up the credit counters"), so the
        strict check stays — pinned by the c0=1 test, where low_water=0
        and refill_threshold=1 make every consumed packet refill
        immediately and any duplication overflows at once.
        """
        if count <= 0:
            raise CreditError(f"refill of {count} credits from {peer}")
        sem = self._peer_sem(peer)
        if sem.value + count > self.c0:
            raise CreditError(
                f"refill overflow from {peer}: {sem.value}+{count} > C0={self.c0}"
            )
        self.credits_received += count
        sem.release(count)

    # -- receiver side -------------------------------------------------------------
    #
    # The receiver-side API is deliberately split so that callers can keep
    # every credit externally visible at any preemption point: a consumed
    # packet is *noted* atomically with its removal from the receive
    # queue, and the counter is *taken* (reset) atomically with enqueueing
    # the refill/piggyback packet that carries it.  A SIGSTOP between the
    # two leaves the credits parked in ``consumed_unreported`` — never in
    # limbo.  (The credit-conservation audits in the test suite rely on
    # this.)

    def note_consumed(self, peer: int) -> None:
        """Record one packet from ``peer`` as consumed (not yet reported)."""
        self._consumed[peer] = self._consumed[peer] + 1

    def refill_due(self, peer: int) -> bool:
        """True when the peer's window (as seen from here) has dropped
        below the low-water mark and an explicit refill should be sent."""
        return self._consumed[peer] >= self.refill_threshold

    def take_refill(self, peer: int) -> int:
        """Atomically take the consume-count for an explicit refill."""
        count, self._consumed[peer] = self._consumed[peer], 0
        if count:
            self.refills_sent += 1
        return count

    def take_piggyback(self, peer: int) -> int:
        """Consume-count to piggyback on a data packet heading to ``peer``."""
        count, self._consumed[peer] = self._consumed[peer], 0
        if count:
            self.refills_piggybacked += 1
        return count
