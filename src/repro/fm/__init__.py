"""The Fast Messages (FM) user-level communication library, simulated.

Mirrors the structure of Illinois FM 2.0 as the paper describes it
(Section 2.2):

- a host-side library (:mod:`~repro.fm.api`) linked into each process,
  with ``FM_initialize`` / ``FM_send`` / ``FM_extract``;
- a LANai control program (:mod:`~repro.fm.firmware`) with a send context
  that scans per-process send queues and a receive context that consumes
  arriving packets and DMAs them to host receive queues;
- credit-based flow control with low-water-mark refills and piggybacking
  (:mod:`~repro.fm.credits`);
- per-process communication contexts whose queue sizes are set by a
  buffer-sharing policy (:mod:`~repro.fm.policies`): the original static
  division, the paper's full-buffer scheme enabled by gang scheduling,
  or one of the dynamic sharing policies driven at runtime by the
  :class:`~repro.fm.policies.engine.PolicyEngine`;
- the original FM management daemons, GRM and CM (:mod:`~repro.fm.grm`,
  :mod:`~repro.fm.cm`), kept as the baseline that ParPar integration
  replaces.
"""

from repro.fm.buffers import BufferPolicy, FullBuffer, StaticPartition
from repro.fm.config import FMConfig
from repro.fm.context import ContextState, FMContext
from repro.fm.credits import CreditState
from repro.fm.packet import Packet, PacketType
from repro.fm.policies import (POLICIES, BShareDelay, DynamicThreshold,
                               OccamyPreemptive, PolicyEngine, make_policy,
                               policy_names)
from repro.fm.queues import ReceiveQueue, SendQueue

__all__ = [
    "BShareDelay",
    "BufferPolicy",
    "ContextState",
    "CreditState",
    "DynamicThreshold",
    "FMConfig",
    "FMContext",
    "FullBuffer",
    "OccamyPreemptive",
    "POLICIES",
    "Packet",
    "PacketType",
    "PolicyEngine",
    "ReceiveQueue",
    "SendQueue",
    "StaticPartition",
    "make_policy",
    "policy_names",
]
