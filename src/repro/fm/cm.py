"""The local Context Manager — original FM's per-node daemon.

Stock FM runs a CM on every node; a starting process contacts it (after
the GRM round trip) to have a communication context allocated on the
Myrinet card "for as long as it runs".  The CM owns the node's fixed
context slots — dividing the card and DMA buffers among the *maximum*
number of contexts, active or not, which is exactly the static
partitioning the paper criticises.

In the integrated system the CM's duties move into glueFM's
COMM_init_job, called by the noded; this module remains as the baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import AllocationError, ProtocolError
from repro.fm.api import FMLibrary
from repro.fm.buffers import BufferPolicy, StaticPartition
from repro.fm.config import FMConfig
from repro.fm.context import FMContext
from repro.fm.firmware import LanaiFirmware
from repro.fm.grm import GlobalResourceManager
from repro.fm.harness import Endpoint
from repro.hardware.ethernet import ControlNetwork
from repro.hardware.node import HostNode
from repro.sim.core import Event, Simulator
from repro.units import US


class ContextManager:
    """CM daemon for one node: context slots + the start-up protocol."""

    #: host cost of the CM allocating and wiring one context
    CONTEXT_ALLOC_TIME = 120 * US

    def __init__(self, sim: Simulator, node: HostNode, firmware: LanaiFirmware,
                 control_net: ControlNetwork, config: FMConfig,
                 policy: Optional[BufferPolicy] = None):
        self.sim = sim
        self.node = node
        self.firmware = firmware
        self.control_net = control_net
        self.config = config
        self.policy = policy if policy is not None else StaticPartition()
        self._slots_used = 0
        control_net.register(node.node_id, self._on_message)

    def _on_message(self, src: int, message) -> None:
        kind = message[0]
        if kind == "grm-ids":
            _, job_id, rank, ev = message
            ev.succeed((job_id, rank))
        elif kind == "grm-all-up":
            message[1].succeed()
        else:
            raise ProtocolError(f"CM on node {self.node.node_id}: "
                                f"unknown message {message!r}")

    @property
    def slots_free(self) -> int:
        return self.config.max_contexts - self._slots_used

    def allocate_context(self, job_id: int, rank: int,
                         rank_to_node: dict[int, int]) -> FMContext:
        """Allocate one of the node's fixed context slots."""
        if self._slots_used >= self.config.max_contexts:
            raise AllocationError(
                f"node {self.node.node_id}: all {self.config.max_contexts} "
                "FM context slots in use"
            )
        ctx = FMContext.create(self.sim, self.node.node_id, job_id, rank,
                               rank_to_node, self.config, self.policy)
        self.firmware.install_context(ctx)
        self._slots_used += 1
        return ctx

    def release_context(self, ctx: FMContext) -> None:
        self.firmware.remove_context(ctx)
        self._slots_used -= 1

    # ------------------------------------------------------------------ start-up
    def fm_initialize(self, job_name: str, node_ids: Sequence[int]):
        """Stock FM_initialize: GRM round trip, context allocation, all-up.

        A generator run inside the starting application process; returns
        the process's :class:`Endpoint`.  This is the "three stage
        protocol" whose cost the ParPar integration removes.
        """
        ids_event = Event(self.sim)
        all_up_event = Event(self.sim)
        # Stage 1: register with the GRM, learn job ID and rank.
        self.control_net.send(self.node.node_id, GlobalResourceManager.ENDPOINT,
                              ("register", job_name, tuple(node_ids),
                               ids_event, all_up_event))
        job_id, rank = yield ids_event
        # Stage 2: the CM allocates a context on the card, then reports
        # readiness back to the GRM.
        yield self.node.cpu.busy(self.CONTEXT_ALLOC_TIME)
        rank_to_node = {r: n for r, n in enumerate(node_ids)}
        ctx = self.allocate_context(job_id, rank, rank_to_node)
        lib = FMLibrary(self.node, self.firmware, ctx)
        self.control_net.send(self.node.node_id, GlobalResourceManager.ENDPOINT,
                              ("ready", job_name))
        # Stage 3: wait until every process of the job created its
        # context — only then is it safe to send (a packet to a context
        # that does not exist yet would be dropped, losing a credit
        # forever).
        yield all_up_event
        return Endpoint(ctx, lib)
