"""The Global Resource Manager — original FM's global daemon.

In stock FM every process starting up contacts the GRM over the control
network to map its hard-coded job *name* to a dynamically allocated job
ID and its rank, and to synchronise start-up (no process may send until
all are up, or packets for not-yet-created contexts would be dropped and
credits lost).  ParPar integration eliminates this daemon entirely —
masterd already knows IDs and ranks before the process is forked — which
is what the paper's Section 3 replaces.  We keep the GRM as the
*baseline* management path so the start-up cost the paper eliminates can
be measured (see benchmarks/test_init_protocol.py).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.hardware.ethernet import ControlNetwork
from repro.sim.core import Simulator
from repro.sim.primitives import Store


@dataclass
class _JobRecord:
    job_id: int
    node_ids: tuple
    waiters: list = field(default_factory=list)  # (node_id, all_up_event)
    registered_nodes: set = field(default_factory=set)
    ready_nodes: set = field(default_factory=set)

    @property
    def all_up(self) -> bool:
        """Safe-to-send: every process *created its context* (not merely
        registered) — a packet toward a context that does not exist yet
        would be dropped and its credit lost forever."""
        return self.ready_nodes == set(self.node_ids)


class GlobalResourceManager:
    """GRM daemon: job-name -> job-ID mapping, ranks, and the all-up barrier.

    Rank assignment follows the job's node list (the FM configuration
    file defines the placement): rank i is the process on node_ids[i].
    """

    #: control-network endpoint ID for the GRM (off the worker-node range)
    ENDPOINT = 1000

    #: daemon-side cost per registration: TCP accept, name lookup, state
    #: update.  Registrations *serialise* at the single GRM — the hidden
    #: scaling cost ParPar's environment hand-off removes.
    SERVICE_TIME = 0.8e-3

    def __init__(self, sim: Simulator, control_net: ControlNetwork,
                 service_time: float = SERVICE_TIME):
        if service_time < 0:
            raise ProtocolError("GRM service_time must be >= 0")
        self.sim = sim
        self.control_net = control_net
        self.service_time = service_time
        self._job_ids = itertools.count(1)
        self._jobs: dict[str, _JobRecord] = {}
        self._requests: Store = Store(sim)
        control_net.register(self.ENDPOINT, self._on_message)
        self.registrations = 0
        self._server = sim.process(self._serve(), name="grm")

    def _on_message(self, src: int, message) -> None:
        if message[0] not in ("register", "ready"):
            raise ProtocolError(f"GRM: unknown message {message!r}")
        self._requests.put((src, message))

    def _serve(self):
        """The single-threaded daemon: one request at a time."""
        while True:
            src, message = yield self._requests.get()
            if message[0] == "register":
                if self.service_time > 0:
                    yield self.service_time
                _, job_name, node_ids, ids_event, all_up_event = message
                self._register(src, job_name, tuple(node_ids), ids_event,
                               all_up_event)
            else:  # "ready": the process created its context with the CM
                _, job_name = message
                self._ready(src, job_name)

    def _register(self, src: int, job_name: str, node_ids: tuple,
                  ids_event, all_up_event) -> None:
        record = self._jobs.get(job_name)
        if record is None:
            record = _JobRecord(job_id=next(self._job_ids), node_ids=node_ids)
            self._jobs[job_name] = record
        if record.node_ids != node_ids:
            raise ProtocolError(
                f"GRM: job {job_name!r} registered with conflicting node lists"
            )
        if src not in node_ids:
            raise ProtocolError(f"GRM: node {src} not part of job {job_name!r}")
        if src in record.registered_nodes:
            raise ProtocolError(f"GRM: node {src} registered twice for {job_name!r}")
        record.registered_nodes.add(src)
        record.waiters.append((src, all_up_event))
        self.registrations += 1

        rank = node_ids.index(src)
        self.control_net.send(self.ENDPOINT, src,
                              ("grm-ids", record.job_id, rank, ids_event))

    def _ready(self, src: int, job_name: str) -> None:
        record = self._jobs.get(job_name)
        if record is None:
            raise ProtocolError(f"GRM: ready for unknown job {job_name!r}")
        if src not in record.registered_nodes:
            raise ProtocolError(f"GRM: ready before register from node {src}")
        record.ready_nodes.add(src)
        if record.all_up:
            for node_id, ev in record.waiters:
                self.control_net.send(self.ENDPOINT, node_id, ("grm-all-up", ev))

    def job_id_of(self, job_name: str) -> int:
        record = self._jobs.get(job_name)
        if record is None:
            raise ProtocolError(f"GRM: unknown job {job_name!r}")
        return record.job_id
