"""FM configuration block.

Buffer sizes follow the paper exactly: the receive queue is a 1 MB pinned
DMA buffer holding **668** packets of 1560 bytes and the send queue is
~400 KB of NIC SRAM holding **252** packets (Section 4.2).  We parameterise
by packet counts (the unit credits are expressed in) and derive bytes.

Host-side timing constants are calibrated so the single-context baseline
reaches FM 2.0's ~75-80 MB/s (the ceiling in Figures 5/6 is the host's
~80 MB/s write-combining PIO rate), and ``credit_turnaround`` is
calibrated so the bandwidth collapse with shrinking credit windows matches
the shape of Figure 5 — it lumps the receiver-side refill batching and
control-message turnaround of real FM into one end-to-end delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MB, US


@dataclass(frozen=True)
class FMConfig:
    """All tunables of the simulated FM stack."""

    # -- packet format -----------------------------------------------------
    packet_bytes: int = 1560           # max wire packet, as in the paper
    header_bytes: int = 24

    # -- buffer geometry (paper Section 4.2) --------------------------------
    recv_queue_packets: int = 668      # 1 MB pinned DMA buffer
    send_queue_packets: int = 252      # ~400 KB of NIC SRAM
    max_contexts: int = 1              # n: processes time-sliced per host
    num_processors: int = 16           # p: worker nodes in the cluster

    # -- host-side costs ------------------------------------------------------
    host_msg_overhead: float = 3.0 * US      # per FM_send call
    host_packet_overhead: float = 2.0 * US   # per-fragment bookkeeping
    pio_rate: float = 80 * MB                # WC write of payload into NIC queue
    extract_packet_overhead: float = 1.5 * US  # per-packet handler dispatch
    extract_copy_rate: float = 100 * MB      # handler consumes payload from pinned buf

    # -- flow control --------------------------------------------------------
    low_water_fraction: float = 0.5    # refill when peer's credits fall below this
    credit_turnaround: float = 150 * US  # end-to-end refill latency (calibrated)
    refill_send_overhead: float = 2.0 * US  # host cost to emit an explicit refill

    # -- buffer sharing ------------------------------------------------------
    #: registered policy name (see ``repro.fm.policies.POLICIES``); empty
    #: string keeps the caller-supplied / mode-derived default
    buffer_policy: str = ""

    # -- reliability ---------------------------------------------------------
    #: registered ACK/NACK strategy name (see
    #: ``repro.faults.strategies.STRATEGIES``); empty string keeps the
    #: default (``per-packet``).  Only honoured when the reliability
    #: firmware is loaded (faults enabled or an explicit RetransmitPolicy).
    reliability_strategy: str = ""

    def __post_init__(self):
        if not isinstance(self.buffer_policy, str):
            raise ConfigError("buffer_policy must be a policy name string")
        if not isinstance(self.reliability_strategy, str):
            raise ConfigError(
                "reliability_strategy must be a strategy name string")
        if self.packet_bytes <= self.header_bytes:
            raise ConfigError("packet_bytes must exceed header_bytes")
        if self.header_bytes < 0:
            raise ConfigError("header_bytes must be >= 0")
        for f in ("recv_queue_packets", "send_queue_packets", "max_contexts",
                  "num_processors"):
            if getattr(self, f) <= 0:
                raise ConfigError(f"{f} must be positive")
        if not 0.0 <= self.low_water_fraction < 1.0:
            raise ConfigError("low_water_fraction must be in [0, 1)")
        for f in ("host_msg_overhead", "host_packet_overhead", "extract_packet_overhead",
                  "credit_turnaround", "refill_send_overhead"):
            if getattr(self, f) < 0:
                raise ConfigError(f"{f} must be >= 0")
        for f in ("pio_rate", "extract_copy_rate"):
            if getattr(self, f) <= 0:
                raise ConfigError(f"{f} must be positive")

    # -- derived geometry -----------------------------------------------------
    @property
    def payload_bytes(self) -> int:
        """Maximum application payload per packet."""
        return self.packet_bytes - self.header_bytes

    @property
    def recv_buffer_bytes(self) -> int:
        """Total pinned receive buffer (all contexts share/divide it)."""
        return self.recv_queue_packets * self.packet_bytes

    @property
    def send_buffer_bytes(self) -> int:
        """Total NIC-SRAM send buffer."""
        return self.send_queue_packets * self.packet_bytes

    def packets_for(self, nbytes: int) -> int:
        """Number of packets (credits) a message of ``nbytes`` consumes."""
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        if nbytes == 0:
            return 1  # a zero-byte message still sends one (header-only) packet
        return -(-nbytes // self.payload_bytes)
