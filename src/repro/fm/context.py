"""FM communication contexts.

A context is the per-process communication identity: its job ID and rank,
a dedicated send queue (NIC SRAM), a dedicated receive queue (pinned host
RAM), and the flow-control credit state.  Under the paper's scheme a
context is either *active* (installed on the NIC, owning the physical
buffers) or *stored* (its queue contents copied to a pageable backing
store in the process's virtual memory).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigError
from repro.fm.buffers import BufferPolicy, ContextGeometry
from repro.fm.config import FMConfig
from repro.fm.credits import CreditState
from repro.fm.queues import ReceiveQueue, SendQueue
from repro.sim.core import Simulator


class ContextState(enum.Enum):
    ACTIVE = "active"    # installed on the NIC, may send and receive
    STORED = "stored"    # swapped out; queues live in backing store


@dataclass
class ContextStats:
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    store_count: int = 0
    restore_count: int = 0


class FMContext:
    """One process's communication context."""

    def __init__(self, sim: Simulator, node_id: int, job_id: int, rank: int,
                 rank_to_node: Mapping[int, int], config: FMConfig,
                 geometry: ContextGeometry):
        if rank not in rank_to_node:
            raise ConfigError(f"rank {rank} missing from rank_to_node map")
        if rank_to_node[rank] != node_id:
            raise ConfigError(
                f"rank {rank} maps to node {rank_to_node[rank]}, context is on {node_id}"
            )
        self.sim = sim
        self.node_id = node_id
        self.job_id = job_id
        self.rank = rank
        self.rank_to_node = dict(rank_to_node)
        self.config = config
        self.geometry = geometry
        self.state = ContextState.STORED  # becomes ACTIVE when installed on a NIC
        self.send_queue = SendQueue(sim, geometry.send_packets,
                                    name=f"sendq[j{job_id}r{rank}]")
        self.recv_queue = ReceiveQueue(sim, geometry.recv_packets,
                                       name=f"recvq[j{job_id}r{rank}]")
        self.credits = CreditState(sim, geometry.initial_credits, self.peer_nodes,
                                   config.low_water_fraction)
        self.stats = ContextStats()

    @classmethod
    def create(cls, sim: Simulator, node_id: int, job_id: int, rank: int,
               rank_to_node: Mapping[int, int], config: FMConfig,
               policy: BufferPolicy) -> "FMContext":
        """Build a context with the queue/credit geometry of ``policy``."""
        return cls(sim, node_id, job_id, rank, rank_to_node, config,
                   policy.geometry(config))

    @property
    def peer_nodes(self) -> list[int]:
        """Nodes hosting the other processes of this job."""
        return sorted({n for r, n in self.rank_to_node.items() if r != self.rank})

    @property
    def num_procs(self) -> int:
        return len(self.rank_to_node)

    def node_of_rank(self, rank: int) -> int:
        try:
            return self.rank_to_node[rank]
        except KeyError:
            raise ConfigError(f"job {self.job_id} has no rank {rank}") from None

    @property
    def is_active(self) -> bool:
        return self.state is ContextState.ACTIVE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FMContext job={self.job_id} rank={self.rank} node={self.node_id}"
            f" {self.state.value}>"
        )
