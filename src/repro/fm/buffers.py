"""Buffer partitioning policies — compatibility re-exports.

The policy interface and catalogue grew into the
:mod:`repro.fm.policies` package (runtime engine, dynamic policies,
registry); this module keeps the original import surface stable:

    from repro.fm.buffers import BufferPolicy, StaticPartition, FullBuffer
"""

from __future__ import annotations

from repro.fm.policies.base import BufferPolicy, ContextGeometry
from repro.fm.policies.static import FullBuffer, StaticPartition

__all__ = ["BufferPolicy", "ContextGeometry", "StaticPartition", "FullBuffer"]
