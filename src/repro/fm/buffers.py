"""Buffer partitioning policies — the axis the paper's contribution sits on.

*Original FM* (:class:`StaticPartition`): the card's send buffer and the
pinned receive buffer are divided **equally among the maximum number of
contexts**, whether or not they are active (Section 2.2, Figure 1).  The
worst case "everyone sends to one node" sizing then gives each pair

    C0 = (Br / n) / (n * p)  =  Br / (n^2 * p)

credits — the inverse-square collapse that produces Figure 5.

*The paper's scheme* (:class:`FullBuffer`): gang scheduling guarantees
only one job communicates per node at a time, so the running process gets
the whole buffer and only its own job's p processes can send to it:

    C0 = Br / p

independent of the number of time-sliced jobs (Section 3.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fm.config import FMConfig


@dataclass(frozen=True)
class ContextGeometry:
    """Queue sizes and the credit window one context receives."""

    recv_packets: int
    send_packets: int
    initial_credits: int

    def __post_init__(self):
        if self.recv_packets < 0 or self.send_packets < 0 or self.initial_credits < 0:
            raise ConfigError("context geometry values must be >= 0")


class BufferPolicy(abc.ABC):
    """Maps the global buffer configuration to per-context geometry."""

    name: str = "abstract"

    @abc.abstractmethod
    def geometry(self, config: FMConfig) -> ContextGeometry:
        """Queue sizes / credits for one context under this policy."""

    def describe(self, config: FMConfig) -> str:
        g = self.geometry(config)
        return (
            f"{self.name}: recvQ={g.recv_packets}pkt sendQ={g.send_packets}pkt "
            f"C0={g.initial_credits} (n={config.max_contexts}, p={config.num_processors})"
        )


class StaticPartition(BufferPolicy):
    """Original FM: divide by the fixed maximum number of contexts."""

    name = "static-partition"

    def geometry(self, config: FMConfig) -> ContextGeometry:
        n, p = config.max_contexts, config.num_processors
        recv = config.recv_queue_packets // n
        send = config.send_queue_packets // n
        credits = recv // (n * p)
        return ContextGeometry(recv_packets=recv, send_packets=send,
                               initial_credits=credits)


class FullBuffer(BufferPolicy):
    """The paper's scheme: the running process owns the entire buffers.

    Safe only under gang scheduling with buffer switching; at most p
    senders (the job's own processes) target any receive queue.
    """

    name = "full-buffer"

    def geometry(self, config: FMConfig) -> ContextGeometry:
        recv = config.recv_queue_packets
        send = config.send_queue_packets
        credits = recv // config.num_processors
        return ContextGeometry(recv_packets=recv, send_packets=send,
                               initial_credits=credits)
