"""Convenience assembly of a bare FM network (no ParPar daemons).

``FMNetwork`` wires hosts, NICs, firmware, and the fabric together and
can stamp out job contexts directly — the minimal substrate for unit
tests, the Figure 5 baseline experiment (which runs a single application
with *statically partitioned* buffers and no context switching), and the
analytic-model cross-checks.  The full cluster with daemons and gang
scheduling lives in :mod:`repro.parpar.cluster`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.fm.api import FMLibrary
from repro.fm.buffers import BufferPolicy, StaticPartition
from repro.fm.config import FMConfig
from repro.fm.context import FMContext
from repro.fm.firmware import LanaiFirmware
from repro.hardware.ethernet import ControlNetwork
from repro.hardware.link import LinkSpec
from repro.hardware.network import MyrinetFabric
from repro.hardware.node import HostNode, NodeSpec
from repro.sim.core import Simulator
from repro.sim.trace import NullTracer, Tracer


class Endpoint:
    """One rank of a job: its context plus its library handle."""

    def __init__(self, context: FMContext, library: FMLibrary):
        self.context = context
        self.library = library

    @property
    def rank(self) -> int:
        return self.context.rank

    @property
    def node_id(self) -> int:
        return self.context.node_id


class FMNetwork:
    """Hosts + NICs + firmware + fabric, ready for FM traffic."""

    def __init__(self, sim: Simulator, num_nodes: int,
                 config: FMConfig = FMConfig(),
                 node_spec: NodeSpec = NodeSpec(),
                 link: LinkSpec = LinkSpec(),
                 tracer: Optional[Tracer] = None,
                 strict_no_loss: bool = False,
                 firmware_class: Optional[type] = None,
                 firmware_kwargs: Optional[dict] = None):
        if num_nodes < 1:
            raise ConfigError(f"need at least one node, got {num_nodes}")
        self.sim = sim
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.fabric = MyrinetFabric(sim, link)
        self.control_net = ControlNetwork(sim)
        self.nodes: list[HostNode] = []
        self.firmwares: dict[int, LanaiFirmware] = {}
        cls = firmware_class if firmware_class is not None else LanaiFirmware
        extra = dict(firmware_kwargs) if firmware_kwargs else {}
        for node_id in range(num_nodes):
            node = HostNode(sim, node_id, node_spec)
            self.nodes.append(node)
            self.fabric.register(node.nic)
            self.firmwares[node_id] = cls(
                sim, node.nic, self.fabric, config,
                tracer=self.tracer, strict_no_loss=strict_no_loss, **extra,
            )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> HostNode:
        return self.nodes[node_id]

    def firmware(self, node_id: int) -> LanaiFirmware:
        return self.firmwares[node_id]

    def create_job(self, job_id: int, node_ids: Sequence[int],
                   policy: BufferPolicy = StaticPartition(),
                   install: bool = True) -> list[Endpoint]:
        """Create one context per node for a job spanning ``node_ids``.

        Rank ``i`` lands on ``node_ids[i]``.  With ``install=True`` the
        contexts are loaded onto the NICs immediately (the no-daemon
        shortcut); the ParPar path instead installs through glueFM's
        COMM_init_job.
        """
        if len(set(node_ids)) != len(node_ids):
            raise ConfigError("a job may place at most one process per node")
        rank_to_node = {rank: node for rank, node in enumerate(node_ids)}
        endpoints = []
        for rank, node_id in rank_to_node.items():
            ctx = FMContext.create(self.sim, node_id, job_id, rank, rank_to_node,
                                   self.config, policy)
            if install:
                self.firmwares[node_id].install_context(ctx)
            lib = FMLibrary(self.nodes[node_id], self.firmwares[node_id], ctx,
                            tracer=self.tracer)
            endpoints.append(Endpoint(ctx, lib))
        return endpoints

    def total_dropped(self) -> int:
        return sum(len(fw.dropped_packets) for fw in self.firmwares.values())
