"""Ring-buffer packet queues.

Two flavours, matching where FM puts them:

- :class:`SendQueue` — lives in NIC SRAM; the host library appends, the
  LANai send context pops.
- :class:`ReceiveQueue` — lives in the pinned host DMA buffer; the LANai
  receive context appends (via DMA), ``FM_extract`` pops.

Capacity is counted in packet *slots* (the unit credits protect).  The
queues expose exactly the signalling the firmware and library need:
blocking ``get``, blocking ``wait_space``, and a non-blocking ``append``
that raises :class:`BufferOverflowError` — with correct flow control an
overflow can never happen, so it is an invariant violation, not an
expected condition (FM has no retransmission; an overflowing queue would
mean silent packet loss and a wedged credit protocol).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import BufferOverflowError, ConfigError, SimulationError
from repro.fm.packet import Packet
from repro.hardware.memory import MemoryKind
from repro.sim.core import Event, Simulator


class PacketQueue:
    """Fixed-capacity FIFO of packets with blocking get / space waits."""

    location: MemoryKind = MemoryKind.HOST_RAM

    def __init__(self, sim: Simulator, capacity_packets: int, name: str = ""):
        if capacity_packets < 0:
            raise ConfigError(f"negative queue capacity {capacity_packets}")
        self.sim = sim
        self.capacity = capacity_packets
        self.name = name
        #: optional waiting-time tap (dynamic buffer policies); None on
        #: every hot path unless a PolicyEngine attached one
        self.wait_observer = None
        self._items: Deque[Packet] = deque()
        self._getters: Deque[Event] = deque()
        self._space_waiters: Deque[Event] = deque()
        self._nonempty_waiters: Deque[Event] = deque()
        self._nonempty_callbacks: list[Callable[[], None]] = []
        # statistics
        self.total_appended = 0
        self.total_removed = 0
        self.peak_occupancy = 0
        #: waits that actually blocked (issued while empty/full) — the
        #: stall-clock accountant's per-queue contention counters
        self.space_waits = 0
        self.nonempty_waits = 0

    # -- observers -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def free_slots(self) -> int:
        # Clamped: a runtime capacity shrink below the current occupancy
        # (dynamic buffer policies) must read as "no free slots", not a
        # negative count.
        free = self.capacity - len(self._items)
        return free if free > 0 else 0

    @property
    def valid_packets(self) -> int:
        """Occupancy snapshot — what Figure 8 samples during a switch."""
        return len(self._items)

    @property
    def valid_bytes(self) -> int:
        return sum(p.size_bytes for p in self._items)

    def snapshot(self) -> list[Packet]:
        """The queue contents, oldest first (used by the buffer switch)."""
        return list(self._items)

    def on_nonempty(self, fn: Callable[[], None]) -> None:
        """Register a kick: ``fn()`` runs whenever a packet is appended to
        a previously observed-empty queue (the firmware's wakeup)."""
        self._nonempty_callbacks.append(fn)

    # -- mutation ------------------------------------------------------------
    def append(self, packet: Packet) -> None:
        """Enqueue; raises :class:`BufferOverflowError` when full.

        Hot path (one append per packet on every send and receive
        queue): a single ``len`` serves both the overflow check and the
        peak tracking — append first, then undo on overflow, so the
        common case never measures the queue twice.
        """
        items = self._items
        items.append(packet)
        occupancy = len(items)
        if occupancy > self.capacity:
            items.pop()
            raise BufferOverflowError(
                f"queue {self.name!r} overflow: capacity {self.capacity} packets"
            )
        self.total_appended += 1
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        obs = self.wait_observer
        if obs is not None:
            obs.enqueued(self.sim.now, occupancy)
        if self._getters:
            self._getters.popleft().succeed(self._pop())
        waiters = self._nonempty_waiters
        while waiters and items:
            waiters.popleft().succeed()
        for fn in self._nonempty_callbacks:
            fn()

    def _pop(self) -> Packet:
        packet = self._items.popleft()
        self.total_removed += 1
        obs = self.wait_observer
        if obs is not None:
            obs.dequeued(self.sim.now, len(self._items))
        while self._space_waiters and not self.is_full:
            self._space_waiters.popleft().succeed()
        return packet

    def try_pop(self) -> Optional[Packet]:
        """Non-blocking dequeue; None when empty.

        The firmware send scan and FM_extract call this once per packet;
        the body inlines :meth:`_pop` (keep the two in sync).
        """
        items = self._items
        if not items:
            return None
        if self._getters:
            raise SimulationError(f"queue {self.name!r}: mixing try_pop with pending get()")
        packet = items.popleft()
        self.total_removed += 1
        obs = self.wait_observer
        if obs is not None:
            obs.dequeued(self.sim.now, len(items))
        waiters = self._space_waiters
        if waiters and len(items) < self.capacity:
            # Level-triggered: release everyone while a slot is free (the
            # waiters re-check fullness before appending).
            while waiters:
                waiters.popleft().succeed()
        return packet

    def purge(self, predicate) -> int:
        """Remove every queued packet matching ``predicate``; returns the
        count removed.

        Teardown-path only (the reliability driver strips zombie
        retransmit clones from a finished job's frozen queues): nothing
        here models NIC time, so calling it from a live data path would
        teleport packets out of the simulation.  Removed packets count as
        removed (not silently unappended) so occupancy bookkeeping stays
        conserved, and space waiters are released like any dequeue.
        """
        items = self._items
        kept = [p for p in items if not predicate(p)]
        purged = len(items) - len(kept)
        if purged:
            items.clear()
            items.extend(kept)
            self.total_removed += purged
            waiters = self._space_waiters
            while waiters and len(items) < self.capacity:
                waiters.popleft().succeed()
        return purged

    def get(self) -> Event:
        """Blocking dequeue: event succeeds with the next packet.

        NOTE: the packet travels inside the event, so a consumer that is
        SIGSTOPped between the trigger and its wakeup holds the packet in
        limbo (invisible to occupancy and credit audits).  Processes that
        can be gang-switched should use the level-triggered
        ``wait_nonempty()`` + ``try_pop()`` pattern instead, which leaves
        the packet in the queue until the consumer actually runs.
        """
        ev = self.sim.event()
        if self._items and not self._getters:
            ev.succeed(self._pop())
        else:
            self._getters.append(ev)
        return ev

    def wait_nonempty(self) -> Event:
        """Event that succeeds when the queue has (or gets) an item.

        Level-triggered and non-consuming: the waiter must ``try_pop()``
        after waking and re-wait if someone else got there first.
        """
        ev = self.sim.event()
        if self._items:
            ev.succeed()
        else:
            self.nonempty_waits += 1
            self._nonempty_waiters.append(ev)
        return ev

    def wait_space(self) -> Event:
        """Event that succeeds when at least one slot is free."""
        ev = self.sim.event()
        if not self.is_full:
            ev.succeed()
        else:
            self.space_waits += 1
            self._space_waiters.append(ev)
        return ev

    # -- dynamic policy support -------------------------------------------------
    def set_capacity(self, capacity_packets: int) -> None:
        """Retarget the capacity at runtime (dynamic buffer policies).

        Growing releases space waiters level-triggered, exactly like a
        pop freeing a slot.  Shrinking **below the current occupancy is
        legal**: resident packets are never dropped; the queue simply
        admits nothing (``is_full``, ``free_slots == 0``) until drains
        bring it back under the new capacity.  Callers are responsible
        for only resizing when the producers are quiesced (the policy
        engine does this inside the flushed switch window).
        """
        if capacity_packets < 0:
            raise ConfigError(f"negative queue capacity {capacity_packets}")
        grew = capacity_packets > self.capacity
        self.capacity = capacity_packets
        if grew and self._space_waiters and len(self._items) < capacity_packets:
            # Level-triggered, matching try_pop: release everyone while a
            # slot is free; waiters re-check fullness before appending.
            while self._space_waiters:
                self._space_waiters.popleft().succeed()

    # -- buffer switching support ----------------------------------------------
    def drain_all(self) -> list[Packet]:
        """Remove and return everything (saving a context to backing store)."""
        packets = list(self._items)
        self._items.clear()
        self.total_removed += len(packets)
        obs = self.wait_observer
        if obs is not None:
            obs.drained()
        while self._space_waiters and not self.is_full:
            self._space_waiters.popleft().succeed()
        return packets

    def load_all(self, packets: list[Packet]) -> None:
        """Refill from a backing store (restoring a context)."""
        if len(self._items) + len(packets) > self.capacity:
            raise BufferOverflowError(
                f"queue {self.name!r}: restoring {len(packets)} packets "
                f"into {self.free_slots} free slots"
            )
        for packet in packets:
            self.append(packet)


class SendQueue(PacketQueue):
    """Per-context send queue in NIC SRAM (written via WC PIO)."""

    location = MemoryKind.NIC_SRAM


class ReceiveQueue(PacketQueue):
    """Per-context receive queue in the pinned host DMA buffer."""

    location = MemoryKind.PINNED_RAM
