"""FM packet format.

FM moves fixed-maximum-size packets (1560 bytes on the paper's system).
Messages larger than one payload are fragmented by ``FM_send`` and
reassembled by the receiving library.  Control packets (credit refills,
and the halt/ready packets of the flush protocol) are small,
"specially tagged", are only counted rather than buffered, and do not
consume flow-control credits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigError


class PacketType(enum.Enum):
    DATA = "data"      # application payload fragment
    REFILL = "refill"  # credit refill (FM flow control)
    HALT = "halt"      # flush protocol: "I stopped sending" (NIC-to-NIC)
    READY = "ready"    # release protocol: "I can receive again" (NIC-to-NIC)
    ACK = "ack"        # PM-style transport (alternatives.pm_nack) only
    NACK = "nack"      # PM-style: receive queue full, please resend


#: Types that are NIC-to-NIC control traffic: never buffered in receive
#: queues, never credited, allowed through while the network is halted.
NIC_CONTROL_TYPES = frozenset({PacketType.HALT, PacketType.READY})

_seq_counter = itertools.count()


@dataclass(slots=True)
class Packet:
    """One wire packet.

    ``msg_id``/``frag_index``/``frag_count`` implement fragmentation;
    ``piggyback_refill`` carries credits returned opportunistically on a
    data packet travelling in the reverse direction.
    """

    ptype: PacketType
    src_node: int
    dst_node: int
    job_id: int = -1
    src_rank: int = -1
    dst_rank: int = -1
    payload_bytes: int = 0
    msg_id: int = -1
    frag_index: int = 0
    frag_count: int = 1
    piggyback_refill: int = 0
    refill_credits: int = 0          # explicit refill amount (REFILL only)
    ack_seq: int = -1                # seq being (n)acked (ACK/NACK only)
    #: Contiguous per-channel (job, src->dst) sequence number, stamped by
    #: the reliability driver at first transmission; retransmit clones
    #: keep the original's.  Cumulative-ack and NACK strategies reason
    #: about prefixes/gaps in this space (the global ``seq`` counter is
    #: interleaved across channels and therefore gap-free nowhere).
    rel_seq: int = -1
    tag: int = 0                     # application message tag (MPI layer)
    payload_obj: object = None       # opaque app payload (last fragment)
    #: Set by the fault-injection layer (link bit errors, NIC SRAM
    #: flips).  A corrupted packet fails the receiver's CRC check and is
    #: discarded without acknowledgement; the reliability layer recovers
    #: it from the sender's pristine host-side copy.
    corrupted: bool = False
    seq: int = field(default_factory=lambda: next(_seq_counter))
    #: Bytes occupied on the wire (and in a buffer slot).  Derived from
    #: the payload once at construction — the send/receive/transmit paths
    #: each read it per packet, so it must be a plain attribute.
    size_bytes: int = field(init=False, repr=False, compare=False)

    HEADER_BYTES = 24
    CONTROL_BYTES = 16

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ConfigError(f"negative payload {self.payload_bytes}")
        if self.ptype is not PacketType.DATA and self.payload_bytes:
            raise ConfigError(f"{self.ptype} packets carry no payload")
        if not 0 <= self.frag_index < self.frag_count:
            raise ConfigError(
                f"fragment index {self.frag_index} out of range for count {self.frag_count}"
            )
        if self.ptype is PacketType.DATA:
            self.size_bytes = self.HEADER_BYTES + self.payload_bytes
        else:
            self.size_bytes = self.CONTROL_BYTES

    @property
    def is_data(self) -> bool:
        return self.ptype is PacketType.DATA

    @property
    def is_nic_control(self) -> bool:
        return self.ptype in NIC_CONTROL_TYPES

    @property
    def is_last_fragment(self) -> bool:
        return self.frag_index == self.frag_count - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Pkt {self.ptype.value} {self.src_node}->{self.dst_node}"
            f" job={self.job_id} msg={self.msg_id}.{self.frag_index} {self.payload_bytes}B>"
        )
