"""Dynamic buffer-sharing policies (the design space beyond the paper).

The paper's schemes are the two fixed points: static partition (tiny
windows, no switch cost) and full-buffer swap (full windows, maximal
copy/scan cost).  The policies here resize the partitions *at gang
switches* instead, trading between those extremes.  All three start every
context on the fair share ``Br/n`` (exactly the static partition region,
but with the single-job credit sizing ``(Br/n)/p`` — gang scheduling
already guarantees only one job's p processes send at a time) and then
move allocation toward whoever needs it:

- :class:`DynamicThreshold` — Choudhury & Hahne's DT rule: every queue
  may grow to ``alpha x (free buffer)``; self-regulating because growth
  shrinks the free pool and hence the threshold.
- :class:`OccamyPreemptive` — Occamy-style preemptive sharing: stored
  (descheduled) contexts are reclaimed down to their occupancy floor and
  the running job gets everything else, minus a reserved headroom kept
  unallocated so arrivals during reclaim can never over-commit.
- :class:`BShareDelay` — BShare-style delay-driven sharing: allocation
  proportional to the queueing delay each job's receive queues
  accumulated over the last epoch (fed by the engine's per-queue waiting
  time observers).

Every proposal is integer arithmetic over deterministic inputs; the
engine clamps proposals to occupancy floors, live credit exposure, and
the physical pools, so a policy bug can degrade fairness but never
safety.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.fm.config import FMConfig
from repro.fm.policies.base import (BufferPolicy, ContextGeometry, SwitchView)


class _FairShareDynamic(BufferPolicy):
    """Shared base: fair-share initial geometry + proposal plumbing."""

    dynamic = True

    def geometry(self, config: FMConfig) -> ContextGeometry:
        n, p = config.max_contexts, config.num_processors
        recv = config.recv_queue_packets // n
        send = config.send_queue_packets // n
        credits = recv // p
        if credits == 0:
            raise ConfigError(
                f"{self.name}: fair-share start window is zero "
                f"(Br={config.recv_queue_packets}, n={n}, p={p}); the pool "
                f"is too small for this many contexts")
        return ContextGeometry(recv_packets=recv, send_packets=send,
                               initial_credits=credits)

    def _package(self, view: SwitchView, recv_props: dict) -> dict:
        """Turn per-job recv proposals into full geometry proposals.

        Send allocation rides along proportionally (same share of the
        SRAM pool as of the receive region); the credit window is the
        receive share divided by p, the worst-case sender count under
        gang scheduling.
        """
        p = view.config.num_processors
        out = {}
        for job_id, recv in recv_props.items():
            recv = max(0, min(recv, view.recv_pool))
            send = view.send_pool * recv // max(1, view.recv_pool)
            out[job_id] = ContextGeometry(
                recv_packets=recv, send_packets=send,
                initial_credits=max(1, recv // p))
        return out


class DynamicThreshold(_FairShareDynamic):
    """DT rule: any queue may grow to ``alpha x (pool - total occupancy)``.

    ``alpha`` is the classic control parameter, carried as an integer
    ratio so proposals stay exactly reproducible.  Jobs below the
    threshold keep at least their occupancy; the engine's normalisation
    converts the (possibly over-subscribed) per-job thresholds into a
    feasible allocation.
    """

    name = "dynamic-threshold"

    def __init__(self, alpha_num: int = 1, alpha_den: int = 1):
        if alpha_num <= 0 or alpha_den <= 0:
            raise ConfigError("alpha must be a positive ratio")
        self.alpha_num = alpha_num
        self.alpha_den = alpha_den

    def on_context_switch(self, view: SwitchView) -> Optional[dict]:
        if not view.jobs:
            return None
        free = view.recv_pool - sum(j.recv_occupancy for j in view.jobs)
        threshold = max(0, self.alpha_num * free // self.alpha_den)
        props = {j.job_id: max(j.recv_occupancy, threshold)
                 for j in view.jobs}
        return self._package(view, props)


class OccamyPreemptive(_FairShareDynamic):
    """Preemptive sharing: reclaim stored contexts down to their floor.

    A stored job keeps ``max(occupancy, p)`` receive slots (p slots keep
    its credit window alive at >= 1, so it can restart instantly when its
    slot next runs); the running job is offered the entire remainder
    except a reserved headroom of ``reserve_num/reserve_den`` of the pool
    that is never allocated to anyone — the slack that absorbs credit
    exposure the engine could not reclaim mid-flight.
    """

    name = "occamy"

    def __init__(self, reserve_num: int = 1, reserve_den: int = 16):
        if reserve_num < 0 or reserve_den <= 0 or reserve_num >= reserve_den:
            raise ConfigError("reserve must be a ratio in [0, 1)")
        self.reserve_num = reserve_num
        self.reserve_den = reserve_den

    def on_context_switch(self, view: SwitchView) -> Optional[dict]:
        if not view.jobs or view.in_job is None:
            return None
        p = view.config.num_processors
        reserve = view.recv_pool * self.reserve_num // self.reserve_den
        props = {}
        stored_total = 0
        for j in view.jobs:
            if j.job_id != view.in_job:
                props[j.job_id] = max(j.recv_occupancy, p)
                stored_total += props[j.job_id]
        props[view.in_job] = max(p, view.recv_pool - reserve - stored_total)
        return self._package(view, props)


class BShareDelay(_FairShareDynamic):
    """Delay-driven sharing: allocation follows observed queueing delay.

    Each job's weight is ``1 + mean per-packet wait (us)`` over the
    closing epoch, so a job whose receivers lag (deep queues, slow
    extraction) attracts buffer, while idle jobs decay back toward the
    fair share.  The +1 keeps silent jobs from starving and makes the
    no-traffic epoch degenerate exactly to the fair share.
    """

    name = "bshare"

    def on_context_switch(self, view: SwitchView) -> Optional[dict]:
        if not view.jobs:
            return None
        weights = {}
        for j in view.jobs:
            mean_wait_us = j.recv_wait_us // j.recv_dequeues if j.recv_dequeues else 0
            weights[j.job_id] = 1 + mean_wait_us
        total = sum(weights.values())
        props = {job_id: view.recv_pool * w // total
                 for job_id, w in weights.items()}
        return self._package(view, props)
