"""Buffer policy interface: geometry plus runtime reallocation hooks.

A :class:`BufferPolicy` maps the global buffer configuration (the 1 MB
pinned receive region and the ~400 KB NIC-SRAM send region of
Section 4.2) to per-context queue sizes and credit windows.  The paper's
two schemes are *static*: geometry is fixed at context creation.  The
dynamic policies in :mod:`repro.fm.policies.dynamic` additionally
observe live queue activity (`on_enqueue`/`on_dequeue`) and propose new
allocations at every gang switch (`on_context_switch`), which the
:class:`~repro.fm.policies.engine.PolicyEngine` normalises and applies
inside the flushed switch window — the only instant the network is
globally silent and a reallocation cannot race in-flight packets.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.fm.config import FMConfig

#: queue-kind tags handed to the enqueue/dequeue hooks
SEND = "send"
RECV = "recv"


@dataclass(frozen=True)
class ContextGeometry:
    """Queue sizes and the credit window one context receives."""

    recv_packets: int
    send_packets: int
    initial_credits: int

    def __post_init__(self):
        if self.recv_packets < 0 or self.send_packets < 0 or self.initial_credits < 0:
            raise ConfigError("context geometry values must be >= 0")


@dataclass(frozen=True)
class JobView:
    """Per-job live state a policy decides from (one gang-switch instant).

    Occupancies and capacities are the *maximum* over the job's contexts
    (worst rank governs safety); wait statistics are sums over the job's
    receive queues since the previous reallocation (the epoch).
    """

    job_id: int
    running: bool              # this job is the one being switched IN
    recv_capacity: int         # current per-context receive allocation
    send_capacity: int
    recv_occupancy: int        # max packets resident in any rank's recv queue
    send_occupancy: int
    credit_window: int         # max live per-peer window (C0) over ranks
    recv_wait_us: int          # integrated queueing delay, microseconds
    recv_dequeues: int         # packets extracted this epoch
    recv_enqueues: int         # packets delivered this epoch


@dataclass(frozen=True)
class SwitchView:
    """Everything a policy sees at a reallocation point."""

    config: FMConfig
    recv_pool: int             # total receive-region packets (Br)
    send_pool: int             # total NIC-SRAM send packets (Bs)
    in_job: Optional[int]
    out_job: Optional[int]
    jobs: tuple[JobView, ...]  # sorted by job_id — deterministic order


class BufferPolicy(abc.ABC):
    """Maps the global buffer configuration to per-context geometry.

    Static policies implement only :meth:`geometry`.  Dynamic policies
    set ``dynamic = True`` and additionally implement
    :meth:`on_context_switch` (and optionally the enqueue/dequeue hooks);
    the engine then resizes live queues and retargets credit windows at
    every flushed gang switch.
    """

    name: str = "abstract"
    #: True: the PolicyEngine attaches queue observers and reallocates at
    #: gang switches.  False: geometry is fixed for the context lifetime.
    dynamic: bool = False

    @abc.abstractmethod
    def geometry(self, config: FMConfig) -> ContextGeometry:
        """Queue sizes / credits for one context under this policy."""

    def validate(self, config: FMConfig) -> ContextGeometry:
        """Config-time check: raises :class:`ConfigError` on geometry a
        context could never communicate with (policy-dependent)."""
        return self.geometry(config)

    def describe(self, config: FMConfig) -> str:
        g = self.geometry(config)
        return (
            f"{self.name}: recvQ={g.recv_packets}pkt sendQ={g.send_packets}pkt "
            f"C0={g.initial_credits} (n={config.max_contexts}, p={config.num_processors})"
        )

    # -- dynamic hooks (no-ops for static policies) -------------------------
    def on_enqueue(self, job_id: int, kind: str, occupancy: int,
                   now: float) -> None:
        """A packet entered one of the job's queues (hot path — keep O(1))."""

    def on_dequeue(self, job_id: int, kind: str, occupancy: int,
                   waited: float, now: float) -> None:
        """A packet left one of the job's queues after ``waited`` seconds."""

    def on_context_switch(self, view: SwitchView) -> Optional[dict]:
        """Propose new per-job geometry at a flushed gang switch.

        Returns ``{job_id: ContextGeometry}`` *proposals* (the engine
        clamps them to occupancy floors, live credit exposure, and the
        physical pools) or None for "leave everything as is".
        """
        return None
