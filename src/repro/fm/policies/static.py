"""The paper's two fixed-geometry schemes (Sections 2.2 and 3.3).

*Original FM* (:class:`StaticPartition`): the card's send buffer and the
pinned receive buffer are divided **equally among the maximum number of
contexts**, whether or not they are active (Section 2.2, Figure 1).  The
worst case "everyone sends to one node" sizing then gives each pair

    C0 = (Br / n) / (n * p)  =  Br / (n^2 * p)

credits — the inverse-square collapse that produces Figure 5.

*The paper's scheme* (:class:`FullBuffer`): gang scheduling guarantees
only one job communicates per node at a time, so the running process gets
the whole buffer and only its own job's p processes can send to it:

    C0 = Br / p

independent of the number of time-sliced jobs (Section 3.3).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fm.config import FMConfig
from repro.fm.policies.base import BufferPolicy, ContextGeometry

#: accepted ``on_zero_credit`` modes for :class:`StaticPartition`
ZERO_CREDIT_MODES = ("error", "clamp", "report")


class StaticPartition(BufferPolicy):
    """Original FM: divide by the fixed maximum number of contexts.

    When ``Br < n^2 * p`` the inverse-square sizing yields
    ``initial_credits == 0`` — every sender would fail before the first
    packet.  Historically this was silent (callers discovered it as zero
    bandwidth); ``on_zero_credit`` now controls what happens:

    - ``"error"`` (default): raise :class:`ConfigError` at geometry time,
      i.e. before any context is built on the doomed configuration;
    - ``"clamp"``: round the window up to 1 and count the event in
      :attr:`clamp_events`.  This forfeits the worst-case "everyone sends
      to one node" overflow guarantee (n*p senders x 1 credit can exceed
      the Br/n partition), which is exactly why it is opt-in;
    - ``"report"``: keep the legacy zero-credit geometry so experiments
      can measure the collapse (Figure 5's n >= 7 rows).
    """

    name = "static-partition"

    def __init__(self, on_zero_credit: str = "error"):
        if on_zero_credit not in ZERO_CREDIT_MODES:
            raise ConfigError(
                f"on_zero_credit must be one of {ZERO_CREDIT_MODES}, "
                f"got {on_zero_credit!r}")
        self.on_zero_credit = on_zero_credit
        #: zero-credit geometries rounded up to 1 (mode "clamp" only)
        self.clamp_events = 0

    def geometry(self, config: FMConfig) -> ContextGeometry:
        n, p = config.max_contexts, config.num_processors
        recv = config.recv_queue_packets // n
        send = config.send_queue_packets // n
        credits = recv // (n * p)
        if credits == 0:
            if self.on_zero_credit == "error":
                raise ConfigError(
                    f"static partition yields a zero credit window: "
                    f"Br={config.recv_queue_packets} < n^2*p={n * n * p} "
                    f"(n={n} contexts, p={p} processors) — no sender could "
                    f"ever transmit.  Use fewer contexts, FullBuffer, or "
                    f"StaticPartition(on_zero_credit='report') to measure "
                    f"the collapse deliberately")
            if self.on_zero_credit == "clamp":
                self.clamp_events += 1
                credits = 1
        return ContextGeometry(recv_packets=recv, send_packets=send,
                               initial_credits=credits)


class FullBuffer(BufferPolicy):
    """The paper's scheme: the running process owns the entire buffers.

    Safe only under gang scheduling with buffer switching; at most p
    senders (the job's own processes) target any receive queue.
    """

    name = "full-buffer"

    def geometry(self, config: FMConfig) -> ContextGeometry:
        recv = config.recv_queue_packets
        send = config.send_queue_packets
        credits = recv // config.num_processors
        return ContextGeometry(recv_packets=recv, send_packets=send,
                               initial_credits=credits)
