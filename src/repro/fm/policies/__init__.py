"""Buffer-sharing policy package: interface, catalogue, and engine.

``POLICIES`` is the runtime registry behind ``FMConfig.buffer_policy``
and the ``figure_policies`` sweep; :func:`make_policy` builds a fresh
instance by name (policies carry mutable statistics, so instances are
never shared between simulations).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fm.policies.base import (BufferPolicy, ContextGeometry, JobView,
                                    SwitchView)
from repro.fm.policies.dynamic import (BShareDelay, DynamicThreshold,
                                       OccamyPreemptive)
from repro.fm.policies.engine import PolicyEngine, QueueWaitObserver
from repro.fm.policies.static import StaticPartition, FullBuffer

#: name -> class; every entry constructs with no arguments
POLICIES: dict[str, type] = {
    StaticPartition.name: StaticPartition,
    FullBuffer.name: FullBuffer,
    DynamicThreshold.name: DynamicThreshold,
    OccamyPreemptive.name: OccamyPreemptive,
    BShareDelay.name: BShareDelay,
}


def policy_names() -> list[str]:
    return sorted(POLICIES)


def make_policy(name: str, **kwargs) -> BufferPolicy:
    """Construct a registered policy by name.

    Keyword arguments pass through to the policy constructor (e.g.
    ``make_policy("static-partition", on_zero_credit="report")``).
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown buffer policy {name!r}; available: "
            f"{', '.join(policy_names())}") from None
    return cls(**kwargs)


__all__ = [
    "BufferPolicy", "ContextGeometry", "JobView", "SwitchView",
    "StaticPartition", "FullBuffer",
    "DynamicThreshold", "OccamyPreemptive", "BShareDelay",
    "PolicyEngine", "QueueWaitObserver",
    "POLICIES", "make_policy", "policy_names",
]
