"""Runtime reallocation engine for dynamic buffer policies.

The engine owns the *mechanism*; policies own the *policy*.  It

- registers every live context and attaches waiting-time observers to
  its queues (zero-cost for static policies, which never construct an
  engine);
- at each gang switch builds a :class:`~repro.fm.policies.base.SwitchView`
  snapshot, asks the policy for proposals, and **normalises** them into a
  feasible plan: every job is floored at its live occupancy, at p slots
  (a credit window of >= 1), and at the credit exposure that could not be
  reclaimed from in-flight windows; grants are fitted into the physical
  pools by proportional scaling of the above-floor excess;
- applies the plan per node inside the flushed switch window — the only
  instant the network is globally silent — shrinking windows first, then
  resizing queues smallest-delta-first, then growing windows, so the
  per-node pools are never over-committed even transiently.

The plan for a switch ``sequence`` is computed once (by whichever node's
swap runs first — the global flush barrier guarantees every queue is
frozen by then, so the snapshot is identical no matter which node
computes it) and memoised; the remaining nodes apply their share of the
same plan.

Safety argument for the floors: a job's receive allocation always
satisfies ``alloc >= max(occupancy, p x achieved_window)``.  Occupancy
covers packets already delivered; ``p x window`` covers the worst-case
credit exposure (at most p peer processes, each holding at most
``window`` credits toward any rank).  Feasibility (sum of floors <= pool)
holds inductively: each floor is bounded by the context's *current*
allocation — achieved windows only ever shrink toward targets backed by
reclaimed credits, occupancy can never exceed the capacity that admitted
it, and every published window is capped at ``grant / p`` so the
``alloc >= c0 x p`` bound survives each reallocation — and current
allocations summed to at most the pool.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.fm.config import FMConfig
from repro.fm.policies.base import (RECV, SEND, BufferPolicy, ContextGeometry,
                                    JobView, SwitchView)

# NOTE: contexts are typed loosely (any FMContext-shaped object) rather
# than importing repro.fm.context, which would close an import cycle
# through repro.fm.buffers.


class QueueWaitObserver:
    """Per-queue waiting-time tap (installed as ``queue.wait_observer``).

    Stamps enqueue times FIFO (the queue is FIFO, so the head stamp
    always belongs to the popped packet) and integrates per-packet
    waiting time.  Epoch counters are reset by the engine at each
    reallocation; stamps persist across epochs so a packet that waits
    through a descheduled quantum is charged its full delay.
    """

    __slots__ = ("policy", "job_id", "kind", "_stamps", "wait_total",
                 "dequeues", "enqueues")

    def __init__(self, policy: BufferPolicy, job_id: int, kind: str):
        self.policy = policy
        self.job_id = job_id
        self.kind = kind
        self._stamps: list[float] = []
        self.wait_total = 0.0
        self.dequeues = 0
        self.enqueues = 0

    def enqueued(self, now: float, occupancy: int) -> None:
        self._stamps.append(now)
        self.enqueues += 1
        self.policy.on_enqueue(self.job_id, self.kind, occupancy, now)

    def dequeued(self, now: float, occupancy: int) -> None:
        waited = now - self._stamps.pop(0) if self._stamps else 0.0
        self.wait_total += waited
        self.dequeues += 1
        self.policy.on_dequeue(self.job_id, self.kind, occupancy, waited, now)

    def drained(self) -> None:
        self._stamps.clear()

    def reset_epoch(self) -> None:
        self.wait_total = 0.0
        self.dequeues = 0
        self.enqueues = 0


class PolicyEngine:
    """Applies a dynamic :class:`BufferPolicy` to live contexts."""

    #: memoised plans kept around (each switch completes globally before
    #: the next begins; a handful is ample slack)
    PLAN_KEEP = 4

    def __init__(self, sim, policy: BufferPolicy, config: FMConfig,
                 tracer=None):
        self.sim = sim
        self.policy = policy
        self.config = config
        #: optional Tracer (falsy NullTracer when observability is off);
        #: plan/apply/window records feed the causal layer's reallocation
        #: spans and window timelines
        self.tracer = tracer
        self.recv_pool = config.recv_queue_packets
        self.send_pool = config.send_queue_packets
        #: baseline per-context geometry; the pool share reserved for
        #: every configured context that has not registered yet
        self._base = policy.geometry(config)
        self._jobs_seen: set[int] = set()
        self._contexts: dict[tuple[int, int], FMContext] = {}
        self._observers: dict[tuple[int, int], tuple] = {}
        # (job, node) -> [recv_alloc, send_alloc]; the conservation ledger
        self._alloc: dict[tuple[int, int], list[int]] = {}
        self._plans: dict[int, dict] = {}       # sequence -> plan
        self._applied: set[tuple[int, int]] = set()
        self._auto_seq = -1
        # statistics (deterministic; harvested into telemetry)
        self.reallocations = 0
        self.plans_computed = 0
        self.recv_packets_reclaimed = 0
        self.recv_packets_granted = 0
        self.credits_reclaimed = 0
        self.credits_granted = 0
        self.min_window_seen: Optional[int] = None
        self.max_window_seen: Optional[int] = None

    # ------------------------------------------------------------------ registry
    def register(self, ctx: FMContext) -> None:
        key = (ctx.job_id, ctx.node_id)
        if key in self._contexts:
            raise ProtocolError(f"context {key} already registered with the "
                                f"policy engine")
        self._contexts[key] = ctx
        send_obs = QueueWaitObserver(self.policy, ctx.job_id, SEND)
        recv_obs = QueueWaitObserver(self.policy, ctx.job_id, RECV)
        ctx.send_queue.wait_observer = send_obs
        ctx.recv_queue.wait_observer = recv_obs
        self._observers[key] = (send_obs, recv_obs)
        self._jobs_seen.add(ctx.job_id)
        self._alloc[key] = list(self._fit_newcomer(ctx))
        self._note_window(ctx.credits.c0)
        self._check_conservation(ctx.node_id)

    def _fit_newcomer(self, ctx: FMContext) -> tuple[int, int]:
        """Clamp a late-registering context into the node's remaining room.

        Planning reserves a baseline share for every configured context
        that has not registered yet, so in the normal lifecycle the
        baseline geometry always fits.  Under churn (a job evicted and a
        new one admitted after the residents absorbed the pool) the
        newcomer is shrunk instead — it has no traffic yet, so its
        credit window and queue capacities can be cut safely — down to a
        floor of one credit slot.  Below that floor the baseline is kept
        and the conservation check reports the over-commit honestly.
        """
        node_id = ctx.node_id
        recv_used = send_used = 0
        for (jid, nid), (r, s) in self._alloc.items():
            if nid == node_id:
                recv_used += r
                send_used += s
        recv_room = self.recv_pool - recv_used
        send_room = self.send_pool - send_used
        recv = ctx.geometry.recv_packets
        send = ctx.geometry.send_packets
        if recv <= recv_room and send <= send_room:
            return recv, send
        p = self.config.num_processors
        new_recv = min(recv, recv_room)
        new_send = min(send, send_room)
        if new_recv < p or new_send < 1:
            return recv, send   # pool exhausted; let conservation raise
        window = max(1, min(ctx.credits.c0, new_recv // p))
        ctx.credits.set_window(window)
        ctx.recv_queue.set_capacity(new_recv)
        ctx.send_queue.set_capacity(new_send)
        ctx.geometry = ContextGeometry(
            recv_packets=new_recv, send_packets=new_send,
            initial_credits=ctx.credits.c0)
        return new_recv, new_send

    def forget(self, job_id: int, node_id: int) -> None:
        key = (job_id, node_id)
        ctx = self._contexts.pop(key, None)
        if ctx is None:
            return
        ctx.send_queue.wait_observer = None
        ctx.recv_queue.wait_observer = None
        self._observers.pop(key, None)
        self._alloc.pop(key, None)

    def _note_window(self, window: int) -> None:
        if self.min_window_seen is None or window < self.min_window_seen:
            self.min_window_seen = window
        if self.max_window_seen is None or window > self.max_window_seen:
            self.max_window_seen = window

    # ------------------------------------------------------------------ ledger
    def conservation_report(self) -> dict:
        """Per-node allocation sums vs pools (the SRAM/host-region ledger)."""
        nodes: dict[int, list[int]] = {}
        for (job_id, node_id), (recv, send) in self._alloc.items():
            cell = nodes.setdefault(node_id, [0, 0])
            cell[0] += recv
            cell[1] += send
        report = {}
        for node_id in sorted(nodes):
            recv, send = nodes[node_id]
            report[node_id] = {
                "recv_allocated": recv, "recv_pool": self.recv_pool,
                "send_allocated": send, "send_pool": self.send_pool,
                "ok": recv <= self.recv_pool and send <= self.send_pool,
            }
        return report

    def _check_conservation(self, node_id: int) -> None:
        recv = send = 0
        for (jid, nid), (r, s) in self._alloc.items():
            if nid == node_id:
                recv += r
                send += s
        if recv > self.recv_pool or send > self.send_pool:
            raise ProtocolError(
                f"policy {self.policy.name} over-committed node {node_id}: "
                f"recv {recv}/{self.recv_pool}, send {send}/{self.send_pool}")

    # ------------------------------------------------------------------ switch hook
    def on_context_switch(self, node_id: int, sequence: Optional[int],
                          out_job: Optional[int],
                          in_job: Optional[int]) -> None:
        """Reallocate at a flushed gang switch (idempotent per node/seq).

        Called from ``COMM_context_switch`` after the outgoing context is
        off the NIC and before the incoming one is installed — the only
        point a context's send-SRAM footprint may legally change.
        """
        if sequence is None:
            self._auto_seq += 1
            sequence = -1 - self._auto_seq  # private key space, never masterd's
        if (sequence, node_id) in self._applied:
            return
        plan = self._plans.get(sequence)
        tracer = self.tracer
        if plan is None:
            plan = self._compute_plan(out_job, in_job)
            self._plans[sequence] = plan
            while len(self._plans) > self.PLAN_KEEP:
                del self._plans[min(self._plans)]
            if tracer and plan:
                tracer.record(
                    "realloc-plan", node=node_id, sequence=sequence,
                    jobs=len({j for j, _ in plan}),
                    windows=[[j, w] for (j, n), (_, _, w)
                             in sorted(plan.items()) if n == node_id])
        self._applied.add((sequence, node_id))
        if plan:
            self._apply_node(node_id, plan, sequence)

    # ------------------------------------------------------------------ planning
    def _job_ids(self) -> list[int]:
        return sorted({job_id for job_id, _ in self._contexts})

    def _contexts_of(self, job_id: int) -> list[FMContext]:
        return [self._contexts[key] for key in sorted(self._contexts)
                if key[0] == job_id]

    def _effective_pools(self) -> tuple[int, int]:
        """Pools minus the baseline share of contexts still to come.

        A job that has not registered yet arrives with the baseline
        geometry; reallocating its share to the residents first would
        over-commit the node the moment it shows up.  Reserving per
        *never-seen* job (not per currently-registered one) means the
        reserve only shrinks — once every configured context has
        appeared, the full pool is in play forever.
        """
        pending = max(0, self.config.max_contexts - len(self._jobs_seen))
        return (self.recv_pool - pending * self._base.recv_packets,
                self.send_pool - pending * self._base.send_packets)

    def _build_view(self, out_job: Optional[int],
                    in_job: Optional[int]) -> SwitchView:
        views = []
        for job_id in self._job_ids():
            ctxs = self._contexts_of(job_id)
            recv_wait = 0.0
            dequeues = enqueues = 0
            for key in sorted(self._observers):
                if key[0] != job_id:
                    continue
                recv_obs = self._observers[key][1]
                recv_wait += recv_obs.wait_total
                dequeues += recv_obs.dequeues
                enqueues += recv_obs.enqueues
            views.append(JobView(
                job_id=job_id,
                running=(job_id == in_job),
                recv_capacity=max(c.recv_queue.capacity for c in ctxs),
                send_capacity=max(c.send_queue.capacity for c in ctxs),
                recv_occupancy=max(len(c.recv_queue) for c in ctxs),
                send_occupancy=max(len(c.send_queue) for c in ctxs),
                credit_window=max(c.credits.c0 for c in ctxs),
                recv_wait_us=int(recv_wait * 1e6),
                recv_dequeues=dequeues,
                recv_enqueues=enqueues,
            ))
        recv_pool, send_pool = self._effective_pools()
        return SwitchView(config=self.config, recv_pool=recv_pool,
                          send_pool=send_pool, in_job=in_job,
                          out_job=out_job, jobs=tuple(views))

    @staticmethod
    def _fit(proposals: dict, floors: dict, pool: int, order: list) -> dict:
        """Fit per-job wants into ``pool``, never below ``floors``.

        Feasibility (sum of floors <= pool) is the caller's invariant.
        Above-floor excess is scaled proportionally; rounding remainder
        goes to jobs in ``order`` (ascending job id) one slot at a time —
        deterministic and independent of dict iteration order.
        """
        want = {j: max(proposals.get(j, floors[j]), floors[j]) for j in order}
        if sum(want.values()) <= pool:
            return want
        floor_total = sum(floors.values())
        extra_budget = pool - floor_total
        extras = {j: want[j] - floors[j] for j in order}
        extra_total = sum(extras.values())
        grant = {j: floors[j] + extras[j] * extra_budget // extra_total
                 for j in order}
        remainder = pool - sum(grant.values())
        for j in order:
            if remainder <= 0:
                break
            room = want[j] - grant[j]
            take = min(room, remainder)
            grant[j] += take
            remainder -= take
        return grant

    def _compute_plan(self, out_job: Optional[int],
                      in_job: Optional[int]) -> dict:
        """One feasible allocation per registered context.

        Returns ``{(job, node): (recv, send, window)}`` — empty when the
        policy declines to reallocate.
        """
        view = self._build_view(out_job, in_job)
        proposals = self.policy.on_context_switch(view)
        for obs_pair in self._observers.values():
            obs_pair[0].reset_epoch()
            obs_pair[1].reset_epoch()
        if not proposals:
            return {}
        self.plans_computed += 1
        p = self.config.num_processors
        order = self._job_ids()
        job_view = {v.job_id: v for v in view.jobs}
        recv_pool, send_pool = self._effective_pools()

        recv_props = {j: g.recv_packets for j, g in proposals.items()}
        send_props = {j: g.send_packets for j, g in proposals.items()}

        # Preliminary recv grants -> window targets.
        floors0 = {j: max(job_view[j].recv_occupancy, p) for j in order}
        prelim = self._fit(recv_props, floors0, recv_pool, order)
        targets = {j: max(1, prelim[j] // p) for j in order}

        # Per-context achieved windows: shrink is limited by what can be
        # reclaimed right now (minimum availability across peers — in
        # flight or parked credits stay counted until they return).
        windows: dict[tuple[int, int], int] = {}
        achieved_max = {}
        for j in order:
            ach = 0
            for ctx in self._contexts_of(j):
                target = targets[j]
                c0 = ctx.credits.c0
                if target < c0:
                    reclaimable = min(
                        (ctx.credits.available(peer)
                         for peer in ctx.credits.peers), default=c0 - target)
                    w = c0 - min(c0 - target, reclaimable)
                else:
                    w = target
                windows[(j, ctx.node_id)] = w
                ach = max(ach, w)
            achieved_max[j] = ach

        floors = {j: max(job_view[j].recv_occupancy, p, achieved_max[j] * p)
                  for j in order}
        recv_grants = self._fit(recv_props, floors, recv_pool, order)
        send_floors = {j: job_view[j].send_occupancy for j in order}
        send_grants = self._fit(send_props, send_floors, send_pool, order)

        # Cap growth at what the *final* grant can back: the final fit can
        # squeeze a growing job below its preliminary grant (other jobs'
        # achieved-window floors eat the excess), and publishing
        # c0 > grant/p would break the alloc >= c0 x p invariant the next
        # plan's floors rely on.  Shrinking jobs are unaffected — their
        # floor already guarantees grant >= achieved x p.
        for key in windows:
            windows[key] = max(1, min(windows[key], recv_grants[key[0]] // p))

        plan = {}
        for (j, node_id), w in windows.items():
            plan[(j, node_id)] = (recv_grants[j], send_grants[j], w)
        return plan

    # ------------------------------------------------------------------ applying
    def _apply_node(self, node_id: int, plan: dict,
                    sequence: Optional[int] = None) -> None:
        local = [(key, self._contexts[key]) for key in sorted(self._contexts)
                 if key[1] == node_id and key in plan]
        if not local:
            return
        tracer = self.tracer
        old_geometry = None
        if tracer:
            old_geometry = {key: (ctx.recv_queue.capacity,
                                  ctx.send_queue.capacity, ctx.credits.c0)
                            for key, ctx in local}
        # 1. shrink credit windows (frees exposure before capacity moves)
        for key, ctx in local:
            _, _, window = plan[key]
            if window < ctx.credits.c0:
                self.credits_reclaimed += ctx.credits.c0 - window
                achieved = ctx.credits.set_window(window)
                if achieved != window:
                    raise ProtocolError(
                        f"planned window {window} for job {key[0]} on node "
                        f"{node_id} but achieved {achieved}: plan raced "
                        f"live traffic (network not flushed?)")
        # 2. resize receive regions, shrinks first so the pool never
        #    over-commits even transiently
        for idx in (0, 1):  # 0 = recv, 1 = send
            resizes = []
            for key, ctx in local:
                new = plan[key][idx]
                queue = ctx.recv_queue if idx == 0 else ctx.send_queue
                resizes.append((new - queue.capacity, key, ctx, queue, new))
            resizes.sort(key=lambda item: (item[0], item[1]))
            for delta, key, ctx, queue, new in resizes:
                if delta == 0:
                    continue
                if idx == 0:
                    if delta < 0:
                        self.recv_packets_reclaimed += -delta
                    else:
                        self.recv_packets_granted += delta
                queue.set_capacity(new)
                self._alloc[key][idx] = new
                self._check_conservation(node_id)
        # 3. grow credit windows (capacity is in place to back them)
        for key, ctx in local:
            _, _, window = plan[key]
            if window > ctx.credits.c0:
                self.credits_granted += window - ctx.credits.c0
                ctx.credits.set_window(window)
            self._note_window(ctx.credits.c0)
        # 4. publish the new geometry (what firmware install / the switch
        #    algorithms / the audits read)
        for key, ctx in local:
            recv, send, _ = plan[key]
            ctx.geometry = ContextGeometry(
                recv_packets=recv, send_packets=send,
                initial_credits=ctx.credits.c0)
        self.reallocations += 1
        if tracer:
            for key, ctx in local:
                old_recv, old_send, old_window = old_geometry[key]
                new_recv = ctx.recv_queue.capacity
                new_send = ctx.send_queue.capacity
                new_window = ctx.credits.c0
                if (old_recv, old_send, old_window) != (new_recv, new_send,
                                                        new_window):
                    tracer.record("window-set", node=node_id, job=key[0],
                                  window=new_window, recv=new_recv,
                                  send=new_send, old_window=old_window,
                                  old_recv=old_recv, old_send=old_send)
            tracer.record("realloc-apply", node=node_id, sequence=sequence,
                          contexts=len(local))

    # ------------------------------------------------------------------ telemetry
    def counters(self) -> dict:
        """Deterministic counters for the telemetry harvest."""
        return {
            "reallocations": self.reallocations,
            "plans_computed": self.plans_computed,
            "recv_packets_reclaimed": self.recv_packets_reclaimed,
            "recv_packets_granted": self.recv_packets_granted,
            "credits_reclaimed": self.credits_reclaimed,
            "credits_granted": self.credits_granted,
            "min_window": (self.min_window_seen
                           if self.min_window_seen is not None else 0),
            "max_window": (self.max_window_seen
                           if self.max_window_seen is not None else 0),
        }
