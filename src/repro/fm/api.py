"""The host-side FM library linked into each application process.

``FMLibrary`` is what the paper calls "a library that is linked to user
applications and contains an initialization routine and the basic
routines for sending and receiving messages".  ``send`` and ``extract``
are generators: application workloads are simulated processes and yield
through these calls, which charge host CPU time (the ~80 MB/s
write-combining PIO write is the sender-side bottleneck that caps peak
bandwidth) and interact with the context's queues and credits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, CreditError
from repro.fm.context import FMContext
from repro.fm.firmware import LanaiFirmware
from repro.fm.packet import Packet, PacketType
from repro.hardware.node import HostNode
from repro.sim.trace import NullTracer, Tracer


@dataclass(frozen=True)
class Message:
    """A fully reassembled application message.

    ``tag`` and ``payload`` exist for the benefit of higher layers (the
    MPI shim in :mod:`repro.mpi`): the simulation models bytes and
    timing, but applications may attach an opaque Python object that
    rides the last fragment, plus an integer tag for matching.
    """

    src_rank: int
    nbytes: int
    msg_id: int
    completed_at: float
    tag: int = 0
    payload: object = None


class FMLibrary:
    """One process's view of FM: FM_send / FM_extract over its context."""

    _msg_ids = itertools.count(1)

    def __init__(self, host: HostNode, firmware: LanaiFirmware, context: FMContext,
                 tracer: Optional[Tracer] = None):
        if firmware.nic.node_id != host.node_id:
            raise ConfigError("FMLibrary host and firmware NIC must be the same node")
        self.sim = host.sim
        self.host = host
        self.firmware = firmware
        self.context = context
        self.config = context.config
        self.tracer = tracer if tracer is not None else NullTracer()
        self._reassembly: dict[tuple[int, int], int] = {}  # (src_rank,msg_id) -> frags seen
        # Hot-path constants: FMConfig is frozen, so resolve the derived
        # geometry (a property) and the per-call costs once per library.
        cfg = self.config
        self._payload_cap = cfg.payload_bytes
        # statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------ sending
    def send(self, dst_rank: int, nbytes: int, tag: int = 0, payload=None):
        """FM_send: fragment, acquire credits, PIO into the send queue.

        A generator — drive it with ``yield from`` inside a simulated
        process.  Blocks (simulated) on credits and on send-queue space.
        Raises :class:`CreditError` immediately when the credit window is
        zero, i.e. when this buffer partitioning cannot communicate at all.

        ``tag``/``payload`` are carried for higher layers; they have no
        effect on timing.
        """
        ctx = self.context
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        if dst_rank == ctx.rank:
            raise ConfigError("FM does not support self-sends")
        if ctx.geometry.initial_credits == 0:
            raise CreditError(
                "zero credits per peer: no communication possible "
                f"(C0=0 for n={self.config.max_contexts} contexts)"
            )
        dst_node = ctx.node_of_rank(dst_rank)
        cfg = self.config
        payload_cap = self._payload_cap
        msg_id = next(self._msg_ids)
        payload_obj = payload  # the loop variable below shadows the name

        # Hot path: this generator body runs once per packet in every
        # bandwidth experiment, so loop invariants live in locals.
        send_queue = ctx.send_queue
        credits = ctx.credits
        busy = self.host.cpu.busy
        sim = self.sim
        src_node, job_id, src_rank = ctx.node_id, ctx.job_id, ctx.rank
        tracer = self.tracer
        # Causal-tracing gates, resolved once per message: off-run cost is
        # one falsy check; a kinds-filtered tracer pays three set lookups.
        if tracer:
            want_start = tracer.wants("msg-start")
            want_enq = tracer.wants("pkt-enq")
            want_stall = tracer.wants("stall")
        else:
            want_start = want_enq = want_stall = False
        if nbytes <= payload_cap:
            # Single-fragment fast path — every small-message point in the
            # bandwidth figures lands here.  Message and packet overheads
            # are one continuous host occupancy: a single sleep.
            if want_start:
                tracer.record("msg-start", node=src_node, job=job_id,
                              msg=msg_id, dst=dst_node, dst_rank=dst_rank,
                              nbytes=nbytes, frags=1)
            yield busy(cfg.host_msg_overhead + cfg.host_packet_overhead
                       + nbytes / cfg.pio_rate)
            stall_start = -1.0
            while send_queue.is_full:
                if want_stall and stall_start < 0.0:
                    stall_start = sim.now
                yield send_queue.wait_space()
            if stall_start >= 0.0:
                tracer.record("stall", node=src_node, job=job_id, msg=msg_id,
                              cause="buffer-full", dur=sim.now - stall_start)
            stall_start = -1.0
            while not credits.try_acquire_send(dst_node):
                if want_stall and stall_start < 0.0:
                    stall_start = sim.now
                yield credits.wait_send(dst_node)
            if stall_start >= 0.0:
                tracer.record("stall", node=src_node, job=job_id, msg=msg_id,
                              cause="credit", dur=sim.now - stall_start)
            packet = Packet(
                PacketType.DATA,
                src_node=src_node, dst_node=dst_node,
                job_id=job_id, src_rank=src_rank, dst_rank=dst_rank,
                payload_bytes=nbytes, msg_id=msg_id,
                piggyback_refill=credits.take_piggyback(dst_node),
                tag=tag, payload_obj=payload_obj,
            )
            send_queue.append(packet)
            if want_enq:
                tracer.record("pkt-enq", node=src_node, job=job_id,
                              msg=msg_id, frag=0, seq=packet.seq,
                              dst=dst_node)
            self.messages_sent += 1
            self.bytes_sent += nbytes
            if tracer:
                tracer.record("msg-send", node=src_node, job=job_id,
                              dst_rank=dst_rank, nbytes=nbytes, msg_id=msg_id)
            return

        nfrags = -(-nbytes // payload_cap)  # == cfg.packets_for(nbytes) here
        pio_rate = cfg.pio_rate
        packet_overhead = cfg.host_packet_overhead
        last = nfrags - 1
        if want_start:
            tracer.record("msg-start", node=src_node, job=job_id,
                          msg=msg_id, dst=dst_node, dst_rank=dst_rank,
                          nbytes=nbytes, frags=nfrags)
        # The per-message overhead is folded into the first fragment's
        # busy period: the host is continuously occupied across both, so
        # one sleep for the sum is timing-exact and saves an event.
        overhead = cfg.host_msg_overhead
        remaining = nbytes
        for index in range(nfrags):
            payload = remaining if remaining < payload_cap else payload_cap
            yield busy(overhead + packet_overhead + payload / pio_rate)
            overhead = 0.0
            stall_start = -1.0
            while send_queue.is_full:
                if want_stall and stall_start < 0.0:
                    stall_start = sim.now
                yield send_queue.wait_space()
            if stall_start >= 0.0:
                tracer.record("stall", node=src_node, job=job_id, msg=msg_id,
                              cause="buffer-full", dur=sim.now - stall_start)
            # Level-triggered credit wait with an atomic take on wakeup:
            # this process can be SIGSTOPped at any yield, and a taken
            # credit must always be accounted for by a visible queued
            # packet (the credit-conservation audits check exactly that).
            stall_start = -1.0
            while not credits.try_acquire_send(dst_node):
                if want_stall and stall_start < 0.0:
                    stall_start = sim.now
                yield credits.wait_send(dst_node)
            if stall_start >= 0.0:
                tracer.record("stall", node=src_node, job=job_id, msg=msg_id,
                              cause="credit", dur=sim.now - stall_start)
            packet = Packet(
                PacketType.DATA,
                src_node=src_node, dst_node=dst_node,
                job_id=job_id, src_rank=src_rank, dst_rank=dst_rank,
                payload_bytes=payload, msg_id=msg_id,
                frag_index=index, frag_count=nfrags,
                piggyback_refill=credits.take_piggyback(dst_node),
                tag=tag,
                payload_obj=payload_obj if index == last else None,
            )
            send_queue.append(packet)
            if want_enq:
                tracer.record("pkt-enq", node=src_node, job=job_id,
                              msg=msg_id, frag=index, seq=packet.seq,
                              dst=dst_node)
            remaining -= payload

        self.messages_sent += 1
        self.bytes_sent += nbytes
        if tracer:
            tracer.record("msg-send", node=src_node, job=job_id,
                          dst_rank=dst_rank, nbytes=nbytes, msg_id=msg_id)

    # ------------------------------------------------------------------ receiving
    def extract(self):
        """FM_extract: consume one packet from the receive queue.

        A generator whose return value is the completed :class:`Message`
        if this packet finished one, else ``None``.  Blocks (simulated)
        until a packet is available.  Handles credit bookkeeping: the
        consume is recorded, and when the sender's credits (as seen from
        here) fall below the low-water mark an explicit refill control
        packet is emitted.
        """
        ctx = self.context
        cfg = self.config
        recv_queue = ctx.recv_queue
        # Level-triggered wait + atomic pop: the packet stays visible in
        # the queue until this process actually runs (SIGSTOP-safe).
        packet = recv_queue.try_pop()
        while packet is None:
            yield recv_queue.wait_nonempty()
            packet = recv_queue.try_pop()
        # Note the consume atomically with the dequeue (see credits.py).
        credits = ctx.credits
        src_node = packet.src_node
        credits.note_consumed(src_node)
        yield self.host.cpu.busy(
            cfg.extract_packet_overhead + packet.payload_bytes / cfg.extract_copy_rate
        )

        if credits.refill_due(src_node):
            yield self.host.cpu.busy(cfg.refill_send_overhead)
            tracer = self.tracer
            want_stall = bool(tracer) and tracer.wants("stall")
            stall_start = -1.0
            while ctx.send_queue.is_full:
                if want_stall and stall_start < 0.0:
                    stall_start = self.sim.now
                yield ctx.send_queue.wait_space()
            if stall_start >= 0.0:
                tracer.record("stall", node=ctx.node_id, job=ctx.job_id,
                              msg=-1, cause="refill-queue",
                              dur=self.sim.now - stall_start)
            refill = credits.take_refill(src_node)
            if refill:
                ctx.send_queue.append(Packet(
                    PacketType.REFILL,
                    src_node=ctx.node_id, dst_node=src_node,
                    job_id=ctx.job_id, refill_credits=refill,
                ))

        frag_count = packet.frag_count
        if frag_count == 1:
            # Single-fragment fast path: no reassembly bookkeeping.
            nbytes = packet.payload_bytes
        else:
            key = (packet.src_rank, packet.msg_id)
            seen = self._reassembly.get(key, 0) + 1
            if seen < frag_count:
                self._reassembly[key] = seen
                return None
            del self._reassembly[key]
            nbytes = (frag_count - 1) * self._payload_cap + packet.payload_bytes
        self.messages_received += 1
        self.bytes_received += nbytes
        message = Message(src_rank=packet.src_rank, nbytes=nbytes,
                          msg_id=packet.msg_id, completed_at=self.sim.now,
                          tag=packet.tag, payload=packet.payload_obj)
        if self.tracer:
            self.tracer.record("msg-recv", node=ctx.node_id, job=ctx.job_id,
                               src_rank=packet.src_rank, nbytes=nbytes,
                               msg=packet.msg_id, src=packet.src_node)
        return message

    def extract_messages(self, count: int):
        """Extract until ``count`` complete messages have been received."""
        messages = []
        while len(messages) < count:
            msg = yield from self.extract()
            if msg is not None:
                messages.append(msg)
        return messages

    @property
    def pending_packets(self) -> int:
        """Packets waiting in the receive queue right now."""
        return len(self.context.recv_queue)
