"""The master daemon.

The masterd runs on the cluster host (which "is not used by the user
applications"): it owns the gang matrix, allocates nodes for submitted
jobs (DHC placement), coordinates the Figure-2 loading protocol, rotates
time slots round-robin, and retires finished jobs.

All global operations — load a job, switch slots, end a job — are
serialised through one operation queue: the real masterd is a
single-threaded daemon, and this serialisation is also what guarantees a
slot switch never races a job load (the noded's install-now decision
depends on a stable notion of the active slot).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import AllocationError, SchedulingError
from repro.hardware.ethernet import ControlNetwork
from repro.parpar.dhc import DHCAllocator
from repro.parpar.job import JobSpec, JobState, ParallelJob
from repro.parpar.matrix import GangMatrix
from repro.sim.core import Event, Simulator
from repro.sim.primitives import Store


class MasterDaemon:
    """masterd: matrix owner and global coordinator."""

    ENDPOINT = 999

    def __init__(self, sim: Simulator, control_net: ControlNetwork,
                 num_nodes: int, num_slots: int, quantum: float):
        if quantum <= 0:
            raise SchedulingError(f"quantum must be positive, got {quantum}")
        self.sim = sim
        self.control_net = control_net
        self.quantum = quantum
        self.matrix = GangMatrix(num_nodes, num_slots)
        self.allocator = DHCAllocator(self.matrix)
        self.worker_ids = list(range(num_nodes))
        self.active_slot = 0
        self.jobs: dict[int, ParallelJob] = {}
        self.switches_completed = 0

        self._job_ids = itertools.count(1)
        self._ops: Store = Store(sim)
        self._rotation_paused = False
        self._switch_queued = False
        self._switch_seq = 0
        self._switch_acks: set[int] = set()
        self._switch_event: Optional[Event] = None
        self._switch_watchers: list[tuple[int, Event]] = []
        self._loaded_events: dict[int, Event] = {}
        self._end_acks: dict[int, set[int]] = {}
        self._end_events: dict[int, Event] = {}
        self._done_events: dict[int, Event] = {}

        control_net.register(self.ENDPOINT, self._on_message)
        self._main_proc = sim.process(self._main(), name="masterd")
        self._timer_proc = sim.process(self._quantum_timer(), name="masterd-quantum")

    # ------------------------------------------------------------------ dispatch
    def _on_message(self, src: int, message) -> None:
        kind = message[0]
        if kind == "submit":
            _, spec, reply, reply_endpoint = message
            self._ops.put(("load", spec, reply, reply_endpoint))
        elif kind == "loaded":
            self._on_loaded(message[1], src)
        elif kind == "switch-done":
            self._on_switch_done(message[1], src)
        elif kind == "job-finished":
            self._on_job_finished(message[1], src, message[3], message[4])
        elif kind == "ended":
            self._on_ended(message[1], src)
        else:
            raise SchedulingError(f"masterd: unknown message {message!r}")

    # ------------------------------------------------------------------ main loop
    def _main(self):
        while True:
            op = yield self._ops.get()
            if op[0] == "load":
                yield from self._do_load(op[1], op[2], op[3])
            elif op[0] == "switch":
                yield from self._do_switch()
            elif op[0] == "end":
                yield from self._do_end(op[1])
            else:  # pragma: no cover - defensive
                raise SchedulingError(f"masterd: unknown op {op!r}")

    def _quantum_timer(self):
        while True:
            yield self.quantum
            if self._rotation_paused:
                continue
            if not self._switch_queued:
                self._switch_queued = True
                self._ops.put(("switch",))

    def pause_rotation(self) -> None:
        """Stop initiating slot switches (drain/maintenance mode).

        Switches already queued or in flight still complete; the timer
        simply stops arming new ones until :meth:`resume_rotation`.
        """
        self._rotation_paused = True

    def resume_rotation(self) -> None:
        self._rotation_paused = False

    # ------------------------------------------------------------------ loading
    def _do_load(self, spec: JobSpec, reply: Event, reply_endpoint: int):
        try:
            job_id = next(self._job_ids)
            slot, nodes = self.allocator.allocate(job_id, spec.num_procs)
        except AllocationError as err:
            self.control_net.send(self.ENDPOINT, reply_endpoint,
                                  ("submit-reply", reply, err))
            return
        job = ParallelJob(job_id=job_id, spec=spec, slot=slot,
                          node_ids=tuple(nodes), state=JobState.LOADING,
                          submitted_at=self.sim.now)
        self.jobs[job_id] = job
        self._loaded_events[job_id] = Event(self.sim)
        self._done_events[job_id] = Event(self.sim)
        rank_to_node = job.rank_to_node
        for rank, node in enumerate(nodes):
            self.control_net.send(self.ENDPOINT, node,
                                  ("load-job", job_id, slot, rank, rank_to_node,
                                   spec.workload))
        # Wait for every noded to report the fork succeeded...
        yield self._loaded_events[job_id]
        # ...then give the global synchronisation point (Figure 2).
        self.control_net.multicast(self.ENDPOINT, nodes, ("job-sync", job_id))
        job.state = JobState.READY
        job.ready_at = self.sim.now
        self.control_net.send(self.ENDPOINT, reply_endpoint,
                              ("submit-reply", reply, job))

    def _on_loaded(self, job_id: int, node_id: int) -> None:
        job = self.jobs[job_id]
        job.loaded_nodes.add(node_id)
        if job.all_loaded:
            self._loaded_events[job_id].succeed()

    # ------------------------------------------------------------------ switching
    def _next_slot(self) -> Optional[int]:
        """Round-robin over occupied slots; None if no switch is needed."""
        occupied = self.matrix.occupied_slots
        if not occupied:
            return None
        after = [s for s in occupied if s > self.active_slot]
        nxt = after[0] if after else occupied[0]
        return None if nxt == self.active_slot else nxt

    def _do_switch(self):
        self._switch_queued = False
        nxt = self._next_slot()
        if nxt is None:
            return
        self._switch_seq += 1
        self._switch_acks = set()
        self._switch_event = Event(self.sim)
        self.control_net.multicast(self.ENDPOINT, self.worker_ids,
                                   ("switch-slot", self._switch_seq,
                                    self.active_slot, nxt))
        yield self._switch_event
        self.active_slot = nxt
        self.switches_completed += 1
        if self._switch_watchers:
            ripe = [w for w in self._switch_watchers
                    if w[0] <= self.switches_completed]
            if ripe:
                self._switch_watchers = [w for w in self._switch_watchers
                                         if w[0] > self.switches_completed]
                for _, watcher in ripe:
                    watcher.succeed(self.switches_completed)

    def _on_switch_done(self, sequence: int, node_id: int) -> None:
        if sequence != self._switch_seq:
            raise SchedulingError(
                f"masterd: stale switch-done seq {sequence} from node {node_id}"
            )
        self._switch_acks.add(node_id)
        if len(self._switch_acks) == len(self.worker_ids):
            self._switch_event.succeed()

    # ------------------------------------------------------------------ retirement
    def _on_job_finished(self, job_id: int, node_id: int, rank: int, result) -> None:
        job = self.jobs[job_id]
        job.finished_nodes.add(node_id)
        job.results[rank] = result
        if job.all_finished:
            self._ops.put(("end", job_id))

    def _do_end(self, job_id: int):
        job = self.jobs[job_id]
        self.matrix.remove(job_id)
        self._end_acks[job_id] = set()
        self._end_events[job_id] = Event(self.sim)
        for node in job.node_ids:
            self.control_net.send(self.ENDPOINT, node, ("end-job", job_id))
        yield self._end_events[job_id]
        job.state = JobState.FINISHED
        job.finished_at = self.sim.now
        self._done_events[job_id].succeed(job)
        # If the active slot just emptied, the next quantum rotates away.

    def _on_ended(self, job_id: int, node_id: int) -> None:
        acks = self._end_acks[job_id]
        acks.add(node_id)
        if acks == set(self.jobs[job_id].node_ids):
            self._end_events[job_id].succeed()

    # ------------------------------------------------------------------ waiting
    def done_event(self, job_id: int) -> Event:
        """Event that fires when the job is fully retired."""
        try:
            return self._done_events[job_id]
        except KeyError:
            raise SchedulingError(f"masterd: unknown job {job_id}") from None

    def switch_count_event(self, count: int) -> Event:
        """Event that fires when ``switches_completed`` reaches ``count``.

        Lets drivers wait for N rotations through the kernel's fast run
        loop instead of polling the counter with per-event ``step()``
        calls.  Fires immediately if the count has already been reached.
        """
        watcher = Event(self.sim)
        if self.switches_completed >= count:
            watcher.succeed(self.switches_completed)
        else:
            self._switch_watchers.append((count, watcher))
        return watcher
