"""The master daemon.

The masterd runs on the cluster host (which "is not used by the user
applications"): it owns the gang matrix, allocates nodes for submitted
jobs (DHC placement), coordinates the Figure-2 loading protocol, rotates
time slots round-robin, and retires finished jobs.

All global operations — load a job, switch slots, end a job, evict or
reintegrate a node — are serialised through one operation queue: the
real masterd is a single-threaded daemon, and this serialisation is also
what guarantees a slot switch never races a job load (the noded's
install-now decision depends on a stable notion of the active slot) and
that reintegration never races a flush round.

With a :class:`~repro.parpar.recovery.RecoveryConfig` the masterd also
survives fail-stop nodes: noded heartbeats renew leases in a
:class:`~repro.parpar.recovery.FailureDetector`, the switch barrier gets
a timeout with bounded exponential-backoff retries, and a suspect node
that still won't ack is **evicted** — survivors drop it from the flush
protocol, its matrix column is excluded, and each job that lost a rank
gets its per-job policy: ``kill`` retires it dead, ``requeue`` restarts
it from scratch on a fresh DHC allocation.  A restarted noded registers
back in and is reintegrated (see :meth:`MasterDaemon._do_rejoin`).

One liveness subtlety is worth spelling out: the op queue means a wedged
*op* wedges the daemon.  A load or end protocol waiting on acks from a
node that died can only be freed from *outside* the queue — that is the
lease monitor's second job (see :meth:`_unwedge_waits`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import AllocationError, SchedulingError
from repro.hardware.ethernet import ControlNetwork
from repro.parpar.dhc import DHCAllocator
from repro.parpar.job import JobSpec, JobState, ParallelJob
from repro.parpar.matrix import GangMatrix
from repro.parpar.recovery import FailureDetector, RecoveryConfig, RecoveryStats
from repro.sim.core import Event, Simulator
from repro.sim.primitives import Store


class MasterDaemon:
    """masterd: matrix owner and global coordinator."""

    ENDPOINT = 999

    def __init__(self, sim: Simulator, control_net: ControlNetwork,
                 num_nodes: int, num_slots: int, quantum: float,
                 recovery: Optional[RecoveryConfig] = None,
                 recovery_stats: Optional[RecoveryStats] = None,
                 spans=None):
        if quantum <= 0:
            raise SchedulingError(f"quantum must be positive, got {quantum}")
        self.sim = sim
        self.control_net = control_net
        self.quantum = quantum
        self.matrix = GangMatrix(num_nodes, num_slots)
        self.allocator = DHCAllocator(self.matrix)
        self.worker_ids = list(range(num_nodes))
        self.active_slot = 0
        self.jobs: dict[int, ParallelJob] = {}
        self.switches_completed = 0
        #: Acks whose switch already completed (or a later one started).
        #: Tolerated and counted, never an error: with retries in play a
        #: retransmitted ack can always race its original.
        self.stale_switch_acks = 0
        #: Bumped on every eviction and reintegration; audit epochs.
        self.recovery_epoch = 0
        #: Jobs that lost a rank to an eviction (old incarnations only).
        self.failed_jobs: set[int] = set()

        self._job_ids = itertools.count(1)
        self._ops: Store = Store(sim)
        self._rotation_paused = False
        self._switch_queued = False
        self._switch_seq = 0
        self._switch_acks: set[int] = set()
        self._switch_event: Optional[Event] = None
        self._switch_watchers: list[tuple[int, Event]] = []
        self._loaded_events: dict[int, Event] = {}
        self._end_acks: dict[int, set[int]] = {}
        self._end_events: dict[int, Event] = {}
        self._done_events: dict[int, Event] = {}
        self._kill_expect: dict[int, set[int]] = {}
        self._kill_acks: dict[int, set[int]] = {}
        self._kill_events: dict[int, Event] = {}
        self._eviction_pending: set[int] = set()
        self._reint_node: Optional[int] = None
        self._reint_expect: set[int] = set()
        self._reint_acks: set[int] = set()
        self._reint_event: Optional[Event] = None

        self.recovery = recovery
        if recovery is not None:
            self.stats = (recovery_stats if recovery_stats is not None
                          else RecoveryStats(spans=spans))
            self.detector: Optional[FailureDetector] = FailureDetector(
                recovery, self.worker_ids, self.stats, now=sim.now)
        else:
            self.stats = recovery_stats
            self.detector = None

        control_net.register(self.ENDPOINT, self._on_message)
        self._main_proc = sim.process(self._main(), name="masterd")
        self._timer_proc = sim.process(self._quantum_timer(), name="masterd-quantum")
        if recovery is not None:
            self._monitor_proc = sim.process(self._lease_monitor(),
                                             name="masterd-lease")

    # ------------------------------------------------------------------ dispatch
    def _on_message(self, src: int, message) -> None:
        kind = message[0]
        if kind == "submit":
            _, spec, reply, reply_endpoint = message
            self._ops.put(("load", spec, reply, reply_endpoint))
        elif kind == "loaded":
            self._on_loaded(message[1], src)
        elif kind == "switch-done":
            self._on_switch_done(message[1], src)
        elif kind == "job-finished":
            self._on_job_finished(message[1], src, message[3], message[4])
        elif kind == "ended":
            self._on_ended(message[1], src)
        elif kind == "heartbeat":
            if self.detector is not None:
                self.detector.heartbeat(message[1], self.sim.now)
        elif kind == "killed":
            self._on_killed(message[1], src)
        elif kind == "register":
            self._on_register(message[1])
        elif kind == "reintegrated":
            self._on_reintegrated(src, message[2], message[3])
        else:
            raise SchedulingError(f"masterd: unknown message {message!r}")

    # ------------------------------------------------------------------ main loop
    def _main(self):
        while True:
            op = yield self._ops.get()
            if op[0] == "load":
                yield from self._do_load(op[1], op[2], op[3])
            elif op[0] == "switch":
                yield from self._do_switch()
            elif op[0] == "end":
                yield from self._do_end(op[1])
            elif op[0] == "recover":
                yield from self._do_recover(op[1], op[2])
            elif op[0] == "evict":
                self._do_evict(op[1])
            elif op[0] == "rejoin":
                yield from self._do_rejoin(op[1])
            else:  # pragma: no cover - defensive
                raise SchedulingError(f"masterd: unknown op {op!r}")

    def _quantum_timer(self):
        while True:
            yield self.quantum
            if self._rotation_paused:
                continue
            if not self._switch_queued:
                self._switch_queued = True
                self._ops.put(("switch",))

    def pause_rotation(self) -> None:
        """Stop initiating slot switches (drain/maintenance mode).

        Switches already queued or in flight still complete; the timer
        simply stops arming new ones until :meth:`resume_rotation`.
        """
        self._rotation_paused = True

    def resume_rotation(self) -> None:
        self._rotation_paused = False

    @staticmethod
    def _succeed_once(event: Event) -> None:
        """Ack paths may complete an event the unwedger already fired."""
        if not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------ loading
    def _launch_job(self, spec: JobSpec):
        """Allocate, load and sync one job (generator; returns the job).

        Raises :class:`AllocationError` — before any state is created —
        when no DHC placement exists.  Shared by first submission and by
        the requeue policy, so a restarted job runs the very same
        Figure-2 protocol as a fresh one.
        """
        job_id = next(self._job_ids)
        slot, nodes = self.allocator.allocate(job_id, spec.num_procs)
        job = ParallelJob(job_id=job_id, spec=spec, slot=slot,
                          node_ids=tuple(nodes), state=JobState.LOADING,
                          submitted_at=self.sim.now)
        self.jobs[job_id] = job
        self._loaded_events[job_id] = Event(self.sim)
        self._done_events[job_id] = Event(self.sim)
        rank_to_node = job.rank_to_node
        for rank, node in enumerate(nodes):
            self.control_net.send(self.ENDPOINT, node,
                                  ("load-job", job_id, slot, rank, rank_to_node,
                                   spec.workload))
        # Wait for every noded to report the fork succeeded...
        yield self._loaded_events[job_id]
        # ...then give the global synchronisation point (Figure 2).
        self.control_net.multicast(self.ENDPOINT, nodes, ("job-sync", job_id))
        job.state = JobState.READY
        job.ready_at = self.sim.now
        return job

    def _do_load(self, spec: JobSpec, reply: Event, reply_endpoint: int):
        try:
            job = yield from self._launch_job(spec)
        except AllocationError as err:
            self.control_net.send(self.ENDPOINT, reply_endpoint,
                                  ("submit-reply", reply, err))
            return
        self.control_net.send(self.ENDPOINT, reply_endpoint,
                              ("submit-reply", reply, job))

    def _on_loaded(self, job_id: int, node_id: int) -> None:
        job = self.jobs[job_id]
        job.loaded_nodes.add(node_id)
        if job.all_loaded:
            self._succeed_once(self._loaded_events[job_id])

    # ------------------------------------------------------------------ switching
    def _next_slot(self) -> Optional[int]:
        """Round-robin over occupied slots; None if no switch is needed."""
        occupied = self.matrix.occupied_slots
        if not occupied:
            return None
        after = [s for s in occupied if s > self.active_slot]
        nxt = after[0] if after else occupied[0]
        return None if nxt == self.active_slot else nxt

    def _do_switch(self):
        self._switch_queued = False
        nxt = self._next_slot()
        if nxt is None:
            return
        self._switch_seq += 1
        self._switch_acks = set()
        self._switch_event = Event(self.sim)
        message = ("switch-slot", self._switch_seq, self.active_slot, nxt)
        self.control_net.multicast(self.ENDPOINT, self.worker_ids, message)
        if self.recovery is None:
            yield self._switch_event
        else:
            yield from self._guarded_barrier(message)
        self._switch_event = None
        self.active_slot = nxt
        self.switches_completed += 1
        if self._switch_watchers:
            ripe = [w for w in self._switch_watchers
                    if w[0] <= self.switches_completed]
            if ripe:
                self._switch_watchers = [w for w in self._switch_watchers
                                         if w[0] > self.switches_completed]
                for _, watcher in ripe:
                    watcher.succeed(self.switches_completed)

    def _guarded_barrier(self, message):
        """Wait for all switch acks — with timeout, retries, and eviction.

        The barrier is the deadlock wedge of the unguarded protocol: a
        node that dies mid-switch never acks, and its surviving peers
        are themselves stuck inside the flush waiting for its HALT.
        Each lap waits ``switch_timeout * backoff**attempt`` (capped);
        on expiry the masterd re-multicasts to the laggards, and once
        the retry budget is spent it evicts those the failure detector
        *independently* suspects — eviction tells survivors to drop the
        dead node from the flush set, which unwedges their rounds and
        lets the barrier complete with the surviving quorum.  Laggards
        with fresh leases (a stalled daemon, not a dead node) just get
        more patience.
        """
        cfg = self.recovery
        event = self._switch_event
        attempt = 0
        while not event.triggered:
            timeout = cfg.switch_timeout * (cfg.switch_backoff ** attempt)
            if timeout > cfg.max_switch_timeout:
                timeout = cfg.max_switch_timeout
            yield self.sim.any_of([event, self.sim.timeout(timeout)])
            if event.triggered:
                break
            pending = [n for n in self.worker_ids
                       if n not in self._switch_acks]
            # Re-multicast on *every* lap, not just the budgeted retries:
            # the nodeds dedupe by sequence and late acks are tolerated,
            # so at-least-once delivery is free — and it is what saves a
            # laggard that lost the original multicast (e.g. a node that
            # died and restarted between two laps).
            self.control_net.multicast(self.ENDPOINT, pending, message)
            if attempt < cfg.max_switch_retries:
                attempt += 1
                self.stats.switch_retries += 1
                continue
            suspects = [n for n in pending if self.detector.is_suspect(n)]
            if suspects:
                self._evict(suspects)

    def _on_switch_done(self, sequence: int, node_id: int) -> None:
        if self._switch_event is None or sequence != self._switch_seq:
            # A late ack: its switch already completed (retry raced the
            # original, or the ack of an evicted node was in flight).
            self.stale_switch_acks += 1
            if self.stats is not None:
                self.stats.stale_switch_acks += 1
            return
        self._switch_acks.add(node_id)
        self._check_switch_complete()

    def _check_switch_complete(self) -> None:
        event = self._switch_event
        if event is None or event.triggered:
            return
        if set(self.worker_ids) <= self._switch_acks:
            event.succeed()

    # ------------------------------------------------------------------ recovery
    def _lease_monitor(self):
        """Sweep the failure detector once per heartbeat interval.

        Runs outside the op queue, which makes it the only context that
        can free a main loop wedged *inside* an op (see module
        docstring) — hence the ``_unwedge_waits`` call here rather than
        in the eviction op.
        """
        interval = self.recovery.heartbeat_interval
        while True:
            yield interval
            now = self.sim.now
            self.detector.sweep(now)
            for node in self.detector.overdue(now):
                if node not in self.worker_ids:
                    continue
                self._unwedge_waits(node)
                if node not in self._eviction_pending:
                    self._eviction_pending.add(node)
                    self._ops.put(("evict", node))

    def _do_evict(self, node: int) -> None:
        """Idle-path eviction op (no switch barrier involved)."""
        self._eviction_pending.discard(node)
        if node not in self.worker_ids:
            return  # a switch barrier got there first
        if not self.detector.is_suspect(node):
            return  # heartbeats resumed while the op was queued
        self._evict([node])

    def _evict(self, nodes) -> None:
        """Remove dead nodes from the cluster view, synchronously.

        Safe to call mid-switch: survivors are told to drop the nodes
        from the flush protocol (``evict-node`` unwedges any in-progress
        round), the matrix columns are excluded, and the per-job failure
        policies are deferred to a follow-up ``recover`` op — they
        involve waiting for teardown acks, which must not happen inside
        the switch barrier.
        """
        for node in nodes:
            if node not in self.worker_ids:
                continue
            self.worker_ids.remove(node)
            self.detector.mark_evicted(node)
            self.recovery_epoch += 1
            self.stats.evictions += 1
            self.stats.begin_evict(node)
            if self.worker_ids:
                self.control_net.multicast(self.ENDPOINT, list(self.worker_ids),
                                           ("evict-node", node))
            affected = self.matrix.evict_node(node)
            self.failed_jobs.update(affected)
            for job_id in affected:
                self.jobs[job_id].failed_node = node
            self._unwedge_waits(node)
            self._ops.put(("recover", node, tuple(affected)))
        self._check_switch_complete()

    def _do_recover(self, node: int, affected):
        """Apply per-job failure policies after ``node`` was evicted."""
        for job_id in affected:
            job = self.jobs[job_id]
            yield from self._retire_failed(job)
            if job.spec.on_failure == "requeue":
                fresh = yield from self._requeue(job)
                if fresh is not None:
                    job.state = JobState.REQUEUED
                    job.requeued_as = fresh.job_id
                    self.stats.jobs_requeued += 1
                    # The original's waiters resolve when the fresh
                    # incarnation does.
                    done = self._done_events[job_id]
                    self._done_events[fresh.job_id].add_callback(
                        lambda _ev, _done=done, _job=job: (
                            None if _done.triggered else _done.succeed(_job)))
                    continue
                self.stats.requeue_failures += 1
            job.state = JobState.KILLED
            job.finished_at = self.sim.now
            self.stats.jobs_killed += 1
            self._succeed_once(self._done_events[job_id])
        self.stats.end_evict(node, jobs=len(affected))

    def _retire_failed(self, job: ParallelJob):
        """Tear the failed job down on its surviving nodes (generator)."""
        survivors = [n for n in job.node_ids if n in self.worker_ids]
        if not survivors:
            return
        job_id = job.job_id
        self._kill_expect[job_id] = set(survivors)
        self._kill_acks[job_id] = set()
        event = self._kill_events[job_id] = Event(self.sim)
        for node in survivors:
            self.control_net.send(self.ENDPOINT, node, ("kill-job", job_id))
        yield event

    def _requeue(self, failed: ParallelJob):
        """Requeue policy: fresh incarnation on a fresh DHC allocation.

        Returns the new job, or None when the shrunken cluster has no
        feasible placement (the caller falls back to kill).
        """
        try:
            fresh = yield from self._launch_job(failed.spec)
        except AllocationError:
            return None
        return fresh

    def _on_killed(self, job_id: int, node_id: int) -> None:
        acks = self._kill_acks.get(job_id)
        if acks is None:
            return
        acks.add(node_id)
        if acks >= self._kill_expect[job_id]:
            self._succeed_once(self._kill_events[job_id])

    def _unwedge_waits(self, node: int) -> None:
        """Synthesise the acks a dead node will never send.

        Every multi-node wait the masterd runs — load, end, kill
        teardown, reintegration — otherwise wedges forever when a
        participant dies mid-protocol.  The jobs involved are not
        quietly blessed: any job with a rank on the dead node is retired
        for real by the eviction policies; this only restores liveness.
        """
        for job_id, event in self._loaded_events.items():
            if event.triggered:
                continue
            job = self.jobs[job_id]
            if node in job.node_ids:
                job.loaded_nodes.add(node)
                self.stats.unwedged_waits += 1
                if job.all_loaded:
                    self._succeed_once(event)
        for job_id, event in self._end_events.items():
            if event.triggered:
                continue
            job = self.jobs[job_id]
            if node in job.node_ids:
                acks = self._end_acks[job_id]
                if node not in acks:
                    acks.add(node)
                    self.stats.unwedged_waits += 1
                if acks == set(job.node_ids):
                    self._succeed_once(event)
        for job_id, event in self._kill_events.items():
            if event.triggered:
                continue
            expect = self._kill_expect[job_id]
            if node in expect:
                expect.discard(node)
                self.stats.unwedged_waits += 1
                if self._kill_acks[job_id] >= expect:
                    self._succeed_once(event)
        if (self._reint_event is not None
                and not self._reint_event.triggered
                and node in self._reint_expect):
            self._reint_expect.discard(node)
            self.stats.unwedged_waits += 1
            if self._reint_expect <= self._reint_acks:
                self._succeed_once(self._reint_event)

    # ------------------------------------------------------------------ rejoin
    def _on_register(self, node_id: int) -> None:
        if self.recovery is None:
            raise SchedulingError(
                f"masterd: node {node_id} registered but recovery is disabled")
        if node_id in self.worker_ids:
            # Fast rejoin: the node restarted before the detector evicted
            # it, so its resumed heartbeats are about to clear the very
            # suspicion an in-flight guarded barrier would need to evict
            # it — while the node, having lost the switch multicast, can
            # never ack.  Evict synchronously (safe mid-switch) so the
            # barrier completes with the survivors; the rejoin op below
            # then reintegrates through the same path as a slow rejoin.
            self._evict([node_id])
        self.stats.begin_reintegrate(node_id)
        self._ops.put(("rejoin", node_id))

    def _do_rejoin(self, node: int):
        """Reintegrate a restarted node (an op, serialised like any other).

        By the time this runs no switch is in flight and no flush round
        is open — exactly the window in which every participant's flush
        protocol may be reset.  The restarted node restores its stored
        contexts from the backing store (the residual-integrity audit),
        discards the dead jobs, and only after *every* participant acked
        the new epoch does the node become allocatable again.
        """
        if node in self.worker_ids:
            # Fast rejoin: the node restarted before the detector evicted
            # it.  Its processes died all the same — evict first so both
            # paths share one reintegration (the recover op this queues
            # runs after the present op and may even place requeued jobs
            # on the readmitted node).
            self._evict([node])
        self.recovery_epoch += 1
        participants = tuple(sorted(self.worker_ids + [node]))
        dead_jobs = tuple(sorted(
            job_id for job_id in self.failed_jobs
            if node in self.jobs[job_id].node_ids))
        self._reint_node = node
        self._reint_expect = set(participants)
        self._reint_acks = set()
        self._reint_event = Event(self.sim)
        for peer in self.worker_ids:
            self.control_net.send(self.ENDPOINT, peer,
                                  ("reintegrate", node, participants))
        self.control_net.send(self.ENDPOINT, node,
                              ("rejoin-ack", self.active_slot, participants,
                               dead_jobs))
        yield self._reint_event
        acks = self._reint_acks
        self._reint_event = None
        self._reint_node = None
        if node in acks:
            self.worker_ids.append(node)
            self.worker_ids.sort()
            self.matrix.readmit_node(node)
            self.detector.reinstate(node, self.sim.now)
            self.stats.reintegrations += 1
        # else: the node died again before completing reintegration; it
        # stays evicted and may register anew.
        self.stats.end_reintegrate(node, readmitted=node in acks)

    def _on_reintegrated(self, src: int, restored: int, discarded: int) -> None:
        if self._reint_event is None:
            return
        self.stats.contexts_restored += restored
        self.stats.contexts_discarded += discarded
        self._reint_acks.add(src)
        if self._reint_expect <= self._reint_acks:
            self._succeed_once(self._reint_event)

    def resolve_job(self, job_id: int) -> ParallelJob:
        """Follow the requeue chain to the final incarnation of a job."""
        job = self.jobs[job_id]
        while job.requeued_as is not None:
            job = self.jobs[job.requeued_as]
        return job

    # ------------------------------------------------------------------ retirement
    def _on_job_finished(self, job_id: int, node_id: int, rank: int, result) -> None:
        job = self.jobs[job_id]
        if job.state in (JobState.KILLED, JobState.REQUEUED):
            return  # in-flight finish from a rank of a failed job
        job.finished_nodes.add(node_id)
        job.results[rank] = result
        if job.all_finished:
            self._ops.put(("end", job_id))

    def _do_end(self, job_id: int):
        job = self.jobs[job_id]
        if job_id in self.failed_jobs or job.state in (JobState.KILLED,
                                                       JobState.REQUEUED):
            return  # an eviction retired it while this op sat queued
        self.matrix.remove(job_id)
        self._end_acks[job_id] = set()
        self._end_events[job_id] = Event(self.sim)
        for node in job.node_ids:
            self.control_net.send(self.ENDPOINT, node, ("end-job", job_id))
        yield self._end_events[job_id]
        job.state = JobState.FINISHED
        job.finished_at = self.sim.now
        self._succeed_once(self._done_events[job_id])
        # If the active slot just emptied, the next quantum rotates away.

    def _on_ended(self, job_id: int, node_id: int) -> None:
        acks = self._end_acks[job_id]
        acks.add(node_id)
        if acks == set(self.jobs[job_id].node_ids):
            self._succeed_once(self._end_events[job_id])

    # ------------------------------------------------------------------ waiting
    def done_event(self, job_id: int) -> Event:
        """Event that fires when the job is fully retired."""
        try:
            return self._done_events[job_id]
        except KeyError:
            raise SchedulingError(f"masterd: unknown job {job_id}") from None

    def switch_count_event(self, count: int) -> Event:
        """Event that fires when ``switches_completed`` reaches ``count``.

        Lets drivers wait for N rotations through the kernel's fast run
        loop instead of polling the counter with per-event ``step()``
        calls.  Fires immediately if the count has already been reached.
        """
        watcher = Event(self.sim)
        if self.switches_completed >= count:
            watcher.succeed(self.switches_completed)
        else:
            self._switch_watchers.append((count, watcher))
        return watcher
