"""Job descriptions and runtime state.

A :class:`JobSpec` is what the user hands the job representative: a name,
a process count, and the *workload* — a callable that, given the rank's
:class:`~repro.fm.harness.Endpoint`, returns the generator the simulated
process runs after ``FM_initialize`` completes.  The generator's return
value is kept as that rank's result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import SchedulingError
from repro.fm.harness import Endpoint

Workload = Callable[[Endpoint], Generator]


#: Valid per-job failure policies (applied when a hosting node fail-stops).
FAILURE_POLICIES = ("kill", "requeue")


@dataclass(frozen=True)
class JobSpec:
    """What the user submits."""

    name: str
    num_procs: int
    workload: Workload
    #: What the masterd does with this job when a node hosting one of its
    #: ranks is evicted: ``"kill"`` retires it dead, ``"requeue"``
    #: restarts it from scratch on a fresh DHC allocation (falling back
    #: to kill if no capacity remains).
    on_failure: str = "kill"

    def __post_init__(self):
        if self.num_procs <= 0:
            raise SchedulingError(f"job {self.name!r}: num_procs must be positive")
        if self.on_failure not in FAILURE_POLICIES:
            raise SchedulingError(
                f"job {self.name!r}: on_failure must be one of "
                f"{FAILURE_POLICIES}, got {self.on_failure!r}")


class JobState(enum.Enum):
    SUBMITTED = "submitted"
    LOADING = "loading"       # nodeds are forking processes
    READY = "ready"           # all processes up, sync byte delivered
    FINISHED = "finished"
    KILLED = "killed"         # a hosting node fail-stopped; policy = kill
    REQUEUED = "requeued"     # restarted as a fresh incarnation elsewhere


@dataclass
class ParallelJob:
    """Masterd-side record of one running job."""

    job_id: int
    spec: JobSpec
    slot: int
    node_ids: tuple[int, ...]
    state: JobState = JobState.SUBMITTED
    submitted_at: float = 0.0
    ready_at: Optional[float] = None
    finished_at: Optional[float] = None
    loaded_nodes: set = field(default_factory=set)
    finished_nodes: set = field(default_factory=set)
    results: dict[int, Any] = field(default_factory=dict)  # rank -> workload return
    endpoints: dict[int, Endpoint] = field(default_factory=dict)  # rank -> endpoint
    #: Set when a node eviction hit this job: the evicted node id.
    failed_node: Optional[int] = None
    #: Fresh incarnation's job id when the requeue policy restarted it.
    requeued_as: Optional[int] = None

    @property
    def rank_to_node(self) -> dict[int, int]:
        return {rank: node for rank, node in enumerate(self.node_ids)}

    @property
    def all_loaded(self) -> bool:
        return len(self.loaded_nodes) == self.spec.num_procs

    @property
    def all_finished(self) -> bool:
        return len(self.finished_nodes) == self.spec.num_procs

    @property
    def is_finished(self) -> bool:
        return self.state is JobState.FINISHED

    def result_of(self, rank: int) -> Any:
        if rank not in self.results:
            raise SchedulingError(f"job {self.job_id}: no result for rank {rank} yet")
        return self.results[rank]
