"""DHC-style placement into the gang matrix.

ParPar maps applications into the matrix "based on the DHC scheme"
[Feitelson & Rudolph 1990] — Distributed Hierarchical Control organises
the processors as a buddy hierarchy and allocates each job a (power-of-
two-sized) block of the tree, so jobs sharing a slot occupy disjoint,
aligned sub-trees.  We implement the allocation geometry of DHC:

- a job of size s is rounded up to the enclosing buddy size 2^ceil(log2 s);
- candidate positions are the aligned blocks of that size;
- slots are scanned in order, and within a slot the leftmost free block
  is taken; a new slot is opened only when no existing slot fits
  (packing before spreading, which is what keeps the matrix dense).

The controller hierarchy's *distributed* aspects (per-level controllers,
load balancing between subtrees) are beyond what the paper exercises and
are not modelled; only the resulting placement discipline matters here.
"""

from __future__ import annotations

from repro.errors import AllocationError, SchedulingError
from repro.parpar.matrix import GangMatrix


def buddy_size(size: int) -> int:
    """The enclosing power-of-two block size for a job of ``size``."""
    if size <= 0:
        raise SchedulingError(f"job size must be positive, got {size}")
    block = 1
    while block < size:
        block *= 2
    return block


class DHCAllocator:
    """Buddy placement over a :class:`GangMatrix`."""

    def __init__(self, matrix: GangMatrix):
        self.matrix = matrix

    def find(self, size: int) -> tuple[int, list[int]]:
        """A (slot, nodes) placement for a job of ``size`` processes.

        Raises :class:`AllocationError` when no slot can hold the job.
        """
        if size > self.matrix.num_nodes:
            raise AllocationError(
                f"job of {size} processes exceeds the {self.matrix.num_nodes}-node cluster"
            )
        block = buddy_size(size)
        # Non-power-of-two machines have an incomplete buddy tree whose
        # root is the whole machine; a job larger than the biggest full
        # buddy block simply takes the root.
        if block > self.matrix.num_nodes:
            block = self.matrix.num_nodes
        for slot in range(self.matrix.num_slots):
            nodes = self._fit_in_slot(slot, size, block)
            if nodes is not None:
                return slot, nodes
        raise AllocationError(
            f"no free buddy block of {block} nodes in any of "
            f"{self.matrix.num_slots} slots"
        )

    def allocate(self, job_id: int, size: int) -> tuple[int, list[int]]:
        """find() + place(): the masterd's allocation step."""
        slot, nodes = self.find(size)
        self.matrix.place(job_id, slot, nodes)
        return slot, nodes

    def _fit_in_slot(self, slot: int, size: int, block: int):
        free = set(self.matrix.free_nodes_in_slot(slot))
        for base in range(0, self.matrix.num_nodes - block + 1, block):
            cells = range(base, base + block)
            if all(n in free for n in cells):
                return list(cells)[:size]
        return None
