"""Cluster failure detection, eviction, and recovery.

The paper's cluster is managed by daemons ("one master daemon... and a
node daemon on each node") and its protocols — flush, three-stage switch,
Figure-2 loading — all assume every participant eventually answers.  A
single fail-stop node therefore wedges the whole machine: the masterd's
switch barrier waits for an ack that will never come, and every surviving
node blocks inside the flush protocol waiting for the dead node's HALT.

This module is the policy layer that removes that single point of
failure.  It deliberately contains **no asynchrony of its own** — the
mechanisms live where the state lives (masterd: barrier hardening and
eviction; noded: fail-stop, heartbeats, reintegration; flush protocol:
``force_remove_node``/``reset``) — and what is collected here is:

- :class:`RecoveryConfig` — the detector and barrier knobs;
- :class:`FailureDetector` — a lease table over noded heartbeats: a node
  silent past the miss budget becomes *suspect*; suspicion is a
  precondition for eviction (a slow ack alone never evicts), and a
  heartbeat from a suspect clears it as a counted false suspicion;
- :class:`RecoveryStats` — the counters, detection-latency samples, and
  detect/evict/reintegrate span bookkeeping that chaos reports and the
  telemetry layer fold in;
- :func:`failstop_process` — the seed-driven injector that turns one
  :class:`~repro.faults.model.FailStop` entry into a genuine silence
  (and optional rebirth) at the scheduled times.

Everything is deterministic: heartbeats ride the reliable control
Ethernet (no randomness), detection latencies are simulated-time deltas,
and the injector fires at times fixed by the campaign seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RecoveryConfig:
    """Detector and barrier-hardening knobs (times in seconds)."""

    #: noded lease renewal period over the control network.
    heartbeat_interval: float = 0.002
    #: Consecutive missed heartbeats before a node is declared *suspect*.
    miss_budget: int = 3
    #: Further silence (in heartbeat intervals, beyond the miss budget)
    #: before a suspect is evicted outside a switch barrier — the idle
    #: path for deaths that never block a switch (paused rotation,
    #: single occupied slot).
    eviction_budget: int = 9
    #: Base switch-barrier ack timeout before the masterd re-multicasts.
    switch_timeout: float = 0.010
    #: Exponential growth of the barrier timeout per retry.
    switch_backoff: float = 2.0
    #: Cap on any single barrier wait.
    max_switch_timeout: float = 0.080
    #: Re-multicasts before the masterd turns to eviction.  Only nodes
    #: the detector already suspects are evicted; a silent-but-fresh
    #: node gets further (capped) timer laps instead.
    max_switch_retries: int = 2

    def __post_init__(self):
        for name in ("heartbeat_interval", "switch_timeout", "switch_backoff",
                     "max_switch_timeout"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.miss_budget < 1:
            raise ConfigError("miss_budget must be >= 1")
        if self.eviction_budget <= self.miss_budget:
            raise ConfigError("eviction_budget must exceed miss_budget")
        if self.max_switch_retries < 0:
            raise ConfigError("max_switch_retries must be >= 0")

    @property
    def suspect_after(self) -> float:
        """Silence (seconds) after which a node becomes suspect.

        One interval of slack on top of the miss budget absorbs control
        latency and sweep phase — a live node is never suspected.
        """
        return self.heartbeat_interval * (self.miss_budget + 1)

    @property
    def evict_after(self) -> float:
        """Silence (seconds) after which a suspect is evicted outright."""
        return self.heartbeat_interval * (self.eviction_budget + 1)


class RecoveryStats:
    """Counters and span bookkeeping for one cluster's recovery layer.

    All values derive from simulated time and deterministic event order,
    so serial and parallel chaos campaigns agree bit-for-bit.
    """

    COUNTER_FIELDS = (
        "failstops_injected", "rejoins_injected",
        "suspicions", "false_suspicions",
        "evictions", "reintegrations",
        "jobs_killed", "jobs_requeued", "requeue_failures",
        "switch_retries", "stale_switch_acks", "unwedged_waits",
        "contexts_restored", "contexts_discarded",
    )

    def __init__(self, spans=None):
        self.spans = spans
        for name in self.COUNTER_FIELDS:
            setattr(self, name, 0)
        #: fail-stop injection -> detector suspicion, per detected death.
        self.detection_latencies: list[float] = []
        self._detect_spans: dict[int, int] = {}
        self._evict_spans: dict[int, int] = {}
        self._reint_spans: dict[int, int] = {}

    # -- spans ---------------------------------------------------------------
    def _begin(self, table: dict, name: str, node: int) -> None:
        if self.spans:
            table[node] = self.spans.begin(name, category="recovery", node=node)

    def _end(self, table: dict, node: int, **args) -> None:
        span = table.pop(node, None)
        if self.spans and span is not None:
            self.spans.end(span, **args)

    def begin_detect(self, node: int) -> None:
        self._begin(self._detect_spans, "recovery-detect", node)

    def end_detect(self, node: int, **args) -> None:
        self._end(self._detect_spans, node, **args)

    def begin_evict(self, node: int) -> None:
        self._begin(self._evict_spans, "recovery-evict", node)

    def end_evict(self, node: int, **args) -> None:
        self._end(self._evict_spans, node, **args)

    def begin_reintegrate(self, node: int) -> None:
        self._begin(self._reint_spans, "recovery-reintegrate", node)

    def end_reintegrate(self, node: int, **args) -> None:
        self._end(self._reint_spans, node, **args)

    # -- reporting -----------------------------------------------------------
    def counters(self) -> dict:
        """Flat dict for chaos reports and telemetry harvesting."""
        out = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        out["detection_latency_count"] = len(self.detection_latencies)
        out["detection_latency_total"] = sum(self.detection_latencies)
        return out


class FailureDetector:
    """Lease table over noded heartbeats (masterd side).

    ``heartbeat`` and ``sweep`` are the hot entry points; both are plain
    table updates — the detector never talks to the network itself.
    ``fail_times`` is ground truth fed by the fault injector, used only
    to measure detection latency; the detector's decisions rest solely
    on heartbeat silence.
    """

    def __init__(self, config: RecoveryConfig, node_ids, stats: RecoveryStats,
                 now: float = 0.0):
        self.config = config
        self.stats = stats
        self.last_seen: dict[int, float] = {n: now for n in node_ids}
        self.suspects: set[int] = set()
        self.evicted: set[int] = set()
        self.fail_times: dict[int, float] = {}

    def heartbeat(self, node: int, now: float) -> None:
        if node in self.evicted or node not in self.last_seen:
            return  # an evicted node must re-register, not just breathe
        self.last_seen[node] = now
        if node in self.suspects:
            self.suspects.discard(node)
            self.stats.false_suspicions += 1

    def note_failure(self, node: int, now: float) -> None:
        """Injector ground truth — telemetry only, never a decision input."""
        self.fail_times[node] = now

    def sweep(self, now: float) -> list[int]:
        """Mark nodes silent past the miss budget; returns the newcomers."""
        threshold = self.config.suspect_after
        newly = []
        for node in sorted(self.last_seen):
            if node in self.evicted or node in self.suspects:
                continue
            if now - self.last_seen[node] > threshold:
                self.suspects.add(node)
                newly.append(node)
                self.stats.suspicions += 1
                failed_at = self.fail_times.get(node)
                if failed_at is not None:
                    self.stats.detection_latencies.append(now - failed_at)
                    self.stats.end_detect(node, latency=now - failed_at)
        return newly

    def overdue(self, now: float) -> list[int]:
        """Suspects silent past the eviction budget (idle-path eviction)."""
        threshold = self.config.evict_after
        return [n for n in sorted(self.suspects)
                if n not in self.evicted
                and now - self.last_seen[n] > threshold]

    def is_suspect(self, node: int) -> bool:
        return node in self.suspects

    def mark_evicted(self, node: int) -> None:
        self.evicted.add(node)
        self.suspects.discard(node)

    def reinstate(self, node: int, now: float) -> None:
        """Reintegration: a fresh lease, a clean slate."""
        self.evicted.discard(node)
        self.suspects.discard(node)
        self.last_seen[node] = now
        self.fail_times.pop(node, None)


def failstop_process(sim, entry, noded, detector: Optional[FailureDetector],
                     stats: RecoveryStats):
    """Drive one :class:`~repro.faults.model.FailStop` schedule entry.

    A generator for ``sim.process``: silences the noded at ``fail_at``
    and, if the entry has a ``rejoin_at``, restarts it then.  Times come
    from the (seed-derived) entry, so campaigns replay exactly.
    """
    yield sim.timeout(entry.fail_at)
    stats.failstops_injected += 1
    stats.begin_detect(entry.node_id)
    if detector is not None:
        detector.note_failure(entry.node_id, sim.now)
    noded.fail_stop()
    if entry.rejoin_at is not None:
        yield sim.timeout(entry.rejoin_at - entry.fail_at)
        stats.rejoins_injected += 1
        noded.rejoin()
