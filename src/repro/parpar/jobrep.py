"""The job representative.

"When a user wishes to run a parallel application he contacts the masterd
using a third program called the job representative, jobrep, which
negotiates the loading of the applications with the masterd."
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.hardware.ethernet import ControlNetwork
from repro.parpar.job import JobSpec, ParallelJob
from repro.parpar.masterd import MasterDaemon
from repro.sim.core import Event, Simulator


class JobRepresentative:
    """Submission client: one per cluster is enough for the simulation."""

    ENDPOINT = 998

    def __init__(self, sim: Simulator, control_net: ControlNetwork):
        self.sim = sim
        self.control_net = control_net
        control_net.register(self.ENDPOINT, self._on_message)

    def _on_message(self, src: int, message) -> None:
        if message[0] != "submit-reply":
            raise SchedulingError(f"jobrep: unknown message {message!r}")
        _, reply, payload = message
        if isinstance(payload, Exception):
            reply.fail(payload)
        else:
            reply.succeed(payload)

    def submit(self, spec: JobSpec):
        """Negotiate loading with the masterd (a generator).

        Returns the :class:`ParallelJob` once every process is forked and
        the global sync point has been given; raises
        :class:`~repro.errors.AllocationError` if the matrix cannot hold
        the job.
        """
        reply = Event(self.sim)
        self.control_net.send(self.ENDPOINT, MasterDaemon.ENDPOINT,
                              ("submit", spec, reply, self.ENDPOINT))
        job: ParallelJob = yield reply
        return job
