"""Cluster assembly: the whole simulated ParPar system in one object.

``ParParCluster`` wires the hardware (nodes, Myrinet fabric, control
Ethernet), the per-node software (glueFM, noded), and the global daemons
(masterd, jobrep) according to a :class:`ClusterConfig`, and offers a
small synchronous driver API for experiments:

    cluster = ParParCluster(ClusterConfig(num_nodes=4, time_slots=2))
    job = cluster.submit(JobSpec("bw", 2, workload))
    cluster.run_until_finished([job])

Two operating modes reproduce the paper's comparison axis:

- ``buffer_switching=True`` (the paper's system): FullBuffer contexts,
  three-stage switches at every quantum;
- ``buffer_switching=False`` (the original-FM baseline): statically
  partitioned contexts resident on the NIC, gang switches are pure
  SIGSTOP/SIGCONT.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import ConfigError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSpec
from repro.faults.retransmit import ReliableFirmware, RetransmitPolicy
from repro.faults.strategies import DEFAULT_STRATEGY, STRATEGY_NAMES
from repro.fm.buffers import BufferPolicy, FullBuffer, StaticPartition
from repro.fm.config import FMConfig
from repro.gluefm.api import GlueFM
from repro.gluefm.switch import SwitchAlgorithm, ValidOnlyCopy
from repro.hardware.ethernet import ControlNetwork, EthernetSpec
from repro.hardware.link import LinkSpec
from repro.hardware.network import MyrinetFabric
from repro.hardware.node import HostNode, NodeSpec
from repro.metrics.counters import SwitchRecorder
from repro.parpar.job import JobSpec, ParallelJob
from repro.parpar.jobrep import JobRepresentative
from repro.parpar.masterd import MasterDaemon
from repro.parpar.noded import NodeDaemon
from repro.parpar.recovery import RecoveryConfig, RecoveryStats, failstop_process
from repro.sim.core import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import NullTracer, Tracer


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up a simulated ParPar cluster."""

    num_nodes: int = 16
    time_slots: int = 4
    quantum: float = 0.020      # scaled; the paper used 1-3 s (see DESIGN.md)
    buffer_switching: bool = True
    #: explicit buffer policy instance; overrides both the
    #: ``fm.buffer_policy`` name and the ``buffer_switching`` default
    policy: Optional[BufferPolicy] = None
    switch_algorithm: Optional[SwitchAlgorithm] = None  # default ValidOnlyCopy
    fm: Optional[FMConfig] = None   # default derived from nodes/slots
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    ethernet: EthernetSpec = field(default_factory=EthernetSpec)
    strict_no_loss: bool = True
    seed: int = 0
    trace: bool = False
    #: Unified telemetry (metrics registry + kernel profiler + span
    #: tracing).  Implies tracing; off by default because observability
    #: must never tax the measured runs — see the determinism contract in
    #: :mod:`repro.telemetry.session`.
    telemetry: bool = False
    #: Alternative node-daemon class (ablations, e.g. SHARE-style
    #: unflushed switching); must subclass NodeDaemon.
    noded_class: Optional[type] = None
    #: Fault model (chaos campaigns).  Enabling any fault automatically
    #: loads the reliability firmware — faults without retransmission
    #: would just crash the strict no-loss checks.
    faults: Optional[FaultSpec] = None
    #: Ack/retransmit schedule; set (or defaulted by ``faults``) to load
    #: :class:`~repro.faults.retransmit.ReliableFirmware` on every NIC.
    retransmit: Optional[RetransmitPolicy] = None
    #: ACK/NACK strategy name (see ``repro.faults.strategies``).  Empty
    #: string defers to ``fm.reliability_strategy``, then the default
    #: (``per-packet``).  Only takes effect when the reliability
    #: firmware is loaded.
    reliability_strategy: str = ""
    #: Failure detection / eviction / reintegration knobs.  Defaulted
    #: automatically whenever ``faults`` schedules a fail-stop — a node
    #: death without recovery would simply wedge the cluster.
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self):
        if self.num_nodes <= 0 or self.time_slots <= 0:
            raise ConfigError("num_nodes and time_slots must be positive")
        if self.quantum <= 0:
            raise ConfigError("quantum must be positive")
        if self.faults is not None:
            for entry in self.faults.failstop:
                if entry.node_id >= self.num_nodes:
                    raise ConfigError(
                        f"failstop node {entry.node_id} outside the cluster "
                        f"(num_nodes={self.num_nodes})")

    def resolved_fm(self) -> FMConfig:
        """The FM configuration, with n and p tied to the cluster shape."""
        if self.fm is not None:
            return self.fm
        return FMConfig(max_contexts=self.time_slots,
                        num_processors=self.num_nodes)

    def resolved_policy(self) -> BufferPolicy:
        """Buffer policy resolution: explicit instance > named > mode default.

        The mode default preserves the paper's comparison axis: buffer
        switching pairs with FullBuffer, resident mode with the original
        static partition.  Dynamic policies (``policy`` instance or an
        ``fm.buffer_policy`` name from the registry) need the flushed
        switch window to reallocate, so they require
        ``buffer_switching=True``.
        """
        if self.policy is not None:
            resolved = self.policy
        elif self.resolved_fm().buffer_policy:
            from repro.fm.policies import make_policy
            resolved = make_policy(self.resolved_fm().buffer_policy)
        else:
            return FullBuffer() if self.buffer_switching else StaticPartition()
        if getattr(resolved, "dynamic", False) and not self.buffer_switching:
            raise ConfigError(
                f"dynamic buffer policy {resolved.name!r} requires "
                f"buffer_switching=True (reallocation happens inside the "
                f"flushed switch window)")
        return resolved

    def resolved_strategy(self) -> str:
        """Reliability strategy resolution: cluster > fm > default name."""
        name = self.reliability_strategy or self.resolved_fm().reliability_strategy
        if not name:
            return DEFAULT_STRATEGY
        if name not in STRATEGY_NAMES:
            raise ConfigError(
                f"unknown reliability strategy {name!r}; "
                f"choose from {', '.join(STRATEGY_NAMES)}")
        return name

    def resolved_switch(self) -> SwitchAlgorithm:
        return (self.switch_algorithm if self.switch_algorithm is not None
                else ValidOnlyCopy())

    def resolved_recovery(self) -> Optional[RecoveryConfig]:
        """The recovery config — defaulted when fail-stops are scheduled."""
        if self.recovery is not None:
            return self.recovery
        if self.faults is not None and self.faults.node_faults:
            return RecoveryConfig()
        return None

    def with_overrides(self, **kwargs) -> "ClusterConfig":
        return replace(self, **kwargs)


class ParParCluster:
    """A fully assembled, running cluster simulation."""

    def __init__(self, config: ClusterConfig = ClusterConfig(),
                 sim: Optional[Simulator] = None):
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        self.fm_config = config.resolved_fm()
        self.policy = config.resolved_policy()
        # Telemetry first: the policy engine (below) threads the tracer
        # through its reallocation records.
        if config.telemetry:
            from repro.telemetry.session import Telemetry
            self.telemetry: Optional["Telemetry"] = Telemetry(
                clock=lambda: self.sim.now)
            self.tracer = self.telemetry.tracer
            self.spans = self.telemetry.spans
            self.sim.profiler = self.telemetry.profiler
        else:
            self.telemetry = None
            self.spans = None
            self.tracer = (Tracer(clock=lambda: self.sim.now) if config.trace
                           else NullTracer())
        if getattr(self.policy, "dynamic", False):
            from repro.fm.policies.engine import PolicyEngine
            self.policy_engine: Optional[PolicyEngine] = PolicyEngine(
                self.sim, self.policy, self.fm_config, tracer=self.tracer)
        else:
            self.policy_engine = None
        self.rng = RandomStreams(config.seed)
        self.recorder = SwitchRecorder()

        self.fabric = MyrinetFabric(self.sim, config.link)
        self.control_net = ControlNetwork(self.sim, config.ethernet, rng=self.rng)
        self.nodes: list[HostNode] = []
        self.glue: list[GlueFM] = []
        self.nodeds: list[NodeDaemon] = []

        # Fault-injection & reliability wiring (chaos campaigns).
        retransmit = config.retransmit
        if (retransmit is None and config.faults is not None
                and config.faults.enabled):
            retransmit = RetransmitPolicy()
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None and config.faults.enabled:
            self.fault_injector = FaultInjector(
                config.faults, self.rng.fork("faults"),
                tracer=self.tracer, link=config.link)
            if config.faults.link_faults:
                self.fabric.fault_injector = self.fault_injector
        firmware_class = ReliableFirmware if retransmit is not None else None
        firmware_kwargs = ({"retransmit": retransmit,
                            "strategy": config.resolved_strategy()}
                           if retransmit is not None else None)

        self.recovery = config.resolved_recovery()
        self.recovery_stats: Optional[RecoveryStats] = (
            RecoveryStats(spans=self.spans) if self.recovery is not None
            else None)

        noded_class = config.noded_class if config.noded_class is not None else NodeDaemon
        participants = list(range(config.num_nodes))
        for node_id in participants:
            node = HostNode(self.sim, node_id, config.node_spec)
            self.nodes.append(node)
            self.fabric.register(node.nic)
            glue = GlueFM(self.sim, node, self.fabric, self.fm_config,
                          switch_algorithm=config.resolved_switch(),
                          tracer=self.tracer,
                          strict_no_loss=config.strict_no_loss,
                          firmware_class=firmware_class,
                          firmware_kwargs=firmware_kwargs,
                          policy_engine=self.policy_engine)
            glue.COMM_init_node(participants)
            self.glue.append(glue)
            self.nodeds.append(noded_class(
                self.sim, node, glue, self.control_net, MasterDaemon.ENDPOINT,
                policy=self.policy, recorder=self.recorder,
                resident_mode=not config.buffer_switching,
                fault_injector=self.fault_injector,
                spans=self.spans,
                recovery=self.recovery,
            ))
            if (self.fault_injector is not None
                    and config.faults.sram_flip_rate > 0):
                self.sim.process(
                    self.fault_injector.sram_flip_process(glue.firmware),
                    name=f"sram-faults-{node_id}")

        self.masterd = MasterDaemon(self.sim, self.control_net,
                                    num_nodes=config.num_nodes,
                                    num_slots=config.time_slots,
                                    quantum=config.quantum,
                                    recovery=self.recovery,
                                    recovery_stats=self.recovery_stats,
                                    spans=self.spans)
        self.jobrep = JobRepresentative(self.sim, self.control_net)

        # Seed-scheduled fail-stop deaths (and rebirths).
        if config.faults is not None:
            for entry in config.faults.failstop:
                self.sim.process(
                    failstop_process(self.sim, entry,
                                     self.nodeds[entry.node_id],
                                     self.masterd.detector,
                                     self.recovery_stats),
                    name=f"failstop-{entry.node_id}")

    # ------------------------------------------------------------------ driving
    def submit(self, spec: JobSpec, max_events: int = 10_000_000) -> ParallelJob:
        """Submit and run the simulation until the job is loaded and synced."""
        result = {}

        def submitter():
            result["job"] = yield from self.jobrep.submit(spec)

        proc = self.sim.process(submitter(), name=f"jobrep-{spec.name}")
        self.sim.run_until_processed(proc, max_events=max_events)
        return result["job"]

    def run_until_finished(self, jobs: Sequence[ParallelJob],
                           max_events: int = 200_000_000) -> None:
        """Advance the simulation until every listed job is retired.

        Drives the kernel through :meth:`Simulator.run_until_processed`
        (the inlined hot loop) rather than per-event ``step()`` calls —
        the difference is ~2x wall-clock on a large cluster run.
        """
        remaining = max_events
        for job in jobs:
            event = self.masterd.done_event(job.job_id)
            if event.processed:
                continue
            before = self.sim.processed_events
            try:
                self.sim.run_until_processed(event, max_events=remaining)
            except SimulationError as exc:
                message = str(exc)
                if "deadlock" in message:
                    raise SimulationError(
                        "cluster went idle before jobs finished") from None
                if message.startswith("exceeded max_events"):
                    raise SimulationError(
                        f"exceeded max_events={max_events}") from None
                raise
            remaining -= self.sim.processed_events - before

    def run_for(self, seconds: float, max_events: int = 200_000_000) -> None:
        """Advance the simulation by ``seconds`` of simulated time."""
        self.sim.run(until=self.sim.now + seconds, max_events=max_events)

    # ------------------------------------------------------------------ inspection
    def endpoint_of(self, job: ParallelJob, rank: int):
        """The Endpoint of ``rank`` (available after FM_initialize ran)."""
        node_id = job.rank_to_node[rank]
        return self.nodeds[node_id].local_job(job.job_id).endpoint

    def total_dropped(self) -> int:
        return sum(len(g.firmware.dropped_packets) for g in self.glue)

    def telemetry_snapshot(self, include_wall: bool = False) -> dict:
        """Harvest component counters and return the unified snapshot.

        Requires ``ClusterConfig(telemetry=True)``; call after the runs
        of interest (harvesting folds in cumulative totals, so call it
        once — it is not idempotent on a live registry).
        """
        if self.telemetry is None:
            raise ConfigError(
                "telemetry_snapshot() requires ClusterConfig(telemetry=True)")
        from repro.telemetry.session import harvest_cluster
        harvest_cluster(self.telemetry, self)
        return self.telemetry.snapshot(include_wall=include_wall)

    @property
    def matrix(self):
        return self.masterd.matrix
