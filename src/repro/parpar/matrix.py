"""The gang-scheduling matrix.

"Allocation is based on a gang scheduling matrix with 16 columns
(representing the 16 nodes) and n rows, where n is the number of time
slots required.  Each cell in the matrix represents a process of a
specific parallel application associated with a physical node.  This way
several parallel applications can run in the same slot, as long as the
sum of nodes they require does not exceed the total number of nodes."
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import AllocationError, SchedulingError


class GangMatrix:
    """slots x nodes grid of job IDs (None = idle cell)."""

    def __init__(self, num_nodes: int, num_slots: int):
        if num_nodes <= 0 or num_slots <= 0:
            raise SchedulingError("matrix dimensions must be positive")
        self.num_nodes = num_nodes
        self.num_slots = num_slots
        self._grid: list[list[Optional[int]]] = [
            [None] * num_nodes for _ in range(num_slots)
        ]
        self._placements: dict[int, tuple[int, tuple[int, ...]]] = {}  # job -> (slot, nodes)
        #: Columns of evicted (fail-stopped) nodes: unusable in every
        #: slot until the node is readmitted.
        self._excluded: set[int] = set()

    # ------------------------------------------------------------------ queries
    def job_at(self, slot: int, node: int) -> Optional[int]:
        self._check(slot, node)
        return self._grid[slot][node]

    def placement_of(self, job_id: int) -> tuple[int, tuple[int, ...]]:
        try:
            return self._placements[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id} not in the matrix") from None

    def jobs_in_slot(self, slot: int) -> dict[int, list[int]]:
        """job_id -> node list for every job in ``slot``."""
        self._check(slot, 0)
        out: dict[int, list[int]] = {}
        for node, job in enumerate(self._grid[slot]):
            if job is not None:
                out.setdefault(job, []).append(node)
        return out

    def free_nodes_in_slot(self, slot: int) -> list[int]:
        self._check(slot, 0)
        excluded = self._excluded
        return [n for n, job in enumerate(self._grid[slot])
                if job is None and n not in excluded]

    @property
    def jobs(self) -> list[int]:
        return sorted(self._placements)

    @property
    def excluded_nodes(self) -> list[int]:
        return sorted(self._excluded)

    @property
    def live_nodes(self) -> list[int]:
        return [n for n in range(self.num_nodes) if n not in self._excluded]

    @property
    def occupied_slots(self) -> list[int]:
        return [s for s in range(self.num_slots) if any(self._grid[s])]

    def utilization(self) -> float:
        """Fraction of matrix cells occupied."""
        used = sum(1 for row in self._grid for cell in row if cell is not None)
        return used / (self.num_nodes * self.num_slots)

    # ------------------------------------------------------------------ mutation
    def place(self, job_id: int, slot: int, nodes: Iterable[int]) -> None:
        nodes = tuple(sorted(nodes))
        if not nodes:
            raise AllocationError(f"job {job_id}: empty node set")
        if job_id in self._placements:
            raise AllocationError(f"job {job_id} already placed")
        for node in nodes:
            self._check(slot, node)
            if node in self._excluded:
                raise AllocationError(
                    f"node {node} is evicted; cannot place job {job_id} on it"
                )
            if self._grid[slot][node] is not None:
                raise AllocationError(
                    f"cell (slot {slot}, node {node}) already holds job "
                    f"{self._grid[slot][node]}"
                )
        for node in nodes:
            self._grid[slot][node] = job_id
        self._placements[job_id] = (slot, nodes)

    def remove(self, job_id: int) -> tuple[int, tuple[int, ...]]:
        slot, nodes = self.placement_of(job_id)
        for node in nodes:
            self._grid[slot][node] = None
        del self._placements[job_id]
        return slot, nodes

    # ------------------------------------------------------------------ recovery
    def evict_node(self, node: int) -> list[int]:
        """Remove a fail-stopped node's column from the schedule.

        Every job with a rank on the node is removed from the matrix (its
        fate — kill or requeue — is the masterd's per-job policy, not the
        matrix's concern) and the column becomes unusable in every slot
        until :meth:`readmit_node`.  Returns the affected job ids, sorted
        for deterministic policy application.
        """
        self._check(0, node)
        if node in self._excluded:
            raise SchedulingError(f"node {node} already evicted")
        affected = sorted(job_id for job_id, (_slot, nodes)
                          in self._placements.items() if node in nodes)
        for job_id in affected:
            self.remove(job_id)
        self._excluded.add(node)
        return affected

    def readmit_node(self, node: int) -> None:
        """Reintegration: the node's column becomes allocatable again."""
        self._check(0, node)
        if node not in self._excluded:
            raise SchedulingError(f"node {node} is not evicted")
        self._excluded.discard(node)

    def _check(self, slot: int, node: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise SchedulingError(f"slot {slot} out of range [0, {self.num_slots})")
        if not 0 <= node < self.num_nodes:
            raise SchedulingError(f"node {node} out of range [0, {self.num_nodes})")

    def render(self) -> str:
        """ASCII view of the matrix for logs and examples."""
        width = max(3, max((len(str(j)) for j in self._placements), default=1) + 1)
        lines = []
        header = "slot" + "".join(f"{n:>{width}}" for n in range(self.num_nodes))
        lines.append(header)
        for s, row in enumerate(self._grid):
            cells = "".join(
                f"{'x' if n in self._excluded else '.' if j is None else j:>{width}}"
                for n, j in enumerate(row)
            )
            lines.append(f"{s:>4}{cells}")
        return "\n".join(lines)
