"""The node daemon.

One noded runs on every worker node.  It fields masterd messages from the
control network and performs the node-local halves of the protocols:

- **job loading** (paper Figure 2): call ``COMM_init_job`` *before*
  forking (so early packets can already be received), fork the
  application process with the FM_* environment, notify the masterd, and
  deliver the global-sync "pipe byte" when the masterd says everyone is
  up; the process's modified ``FM_initialize`` completes only then.
- **context switching**: on a slot-switch notification, SIGSTOP the
  outgoing process, run glueFM's three stages (halt / buffer switch /
  release), SIGCONT the incoming process, and report per-stage timings —
  these records are the raw data of Figures 7, 8 and 9.
- **job teardown**: ``COMM_end_job`` when the masterd retires a job.

In ``resident`` mode (the original-FM baseline) contexts stay installed
on the NIC permanently — the static partitioning makes them all fit — and
a slot switch is just SIGSTOP/SIGCONT with no network flush or copying.

With recovery enabled the noded also renews its lease (heartbeats), and
implements the node-local halves of the failure protocols: *fail-stop*
(processes die, installed contexts are paged out, the NIC powers off,
and the daemon goes silent mid-anything), *eviction of a peer* (drop it
from the flush set, possibly unwedging an in-progress round), *job
kill* (teardown ordered by the masterd's failure policy), and
*reintegration* (restore-verify stored contexts, reset the flush
protocol to the new participant set, resynchronise the active slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import InterruptError, SchedulingError
from repro.fm.api import FMLibrary
from repro.fm.buffers import BufferPolicy
from repro.fm.context import FMContext
from repro.fm.harness import Endpoint
from repro.gluefm.api import GlueFM
from repro.gluefm.env import parse_environment
from repro.hardware.ethernet import ControlNetwork
from repro.hardware.node import HostNode
from repro.metrics.counters import SwitchRecord, SwitchRecorder
from repro.parpar.job import Workload
from repro.parpar.recovery import RecoveryConfig
from repro.sim.core import Event, Simulator
from repro.sim.process import Process
from repro.units import US


@dataclass
class _LocalJob:
    """The noded's record of one process it hosts."""

    job_id: int
    slot: int
    rank: int
    context: FMContext
    workload: Workload
    sync_event: Event
    process: Optional[Process] = None
    endpoint: Optional[Endpoint] = None
    result: Any = None
    finished: bool = field(default=False)


class NodeDaemon:
    """noded for one worker node."""

    FORK_TIME = 400 * US       # fork + exec + environment setup
    FM_INIT_TIME = 80 * US     # open the LANai, map the queues
    SIGNAL_TIME = 5 * US       # SIGSTOP/SIGCONT delivery

    def __init__(self, sim: Simulator, node: HostNode, glue: GlueFM,
                 control_net: ControlNetwork, master_endpoint: int,
                 policy: BufferPolicy, recorder: SwitchRecorder,
                 resident_mode: bool = False, fault_injector=None,
                 spans=None, recovery: Optional[RecoveryConfig] = None):
        self.sim = sim
        #: Chaos-campaign hook: consulted once per switch for daemon
        #: stall/crash disruptions (see repro.faults.injector).
        self.fault_injector = fault_injector
        #: Telemetry hook: a SpanEmitter (truthy when recording) that
        #: `_switch` uses to trace the three-stage protocol.
        self.spans = spans
        self.node = node
        self.glue = glue
        self.control_net = control_net
        self.master_endpoint = master_endpoint
        self.policy = policy
        self.recorder = recorder
        self.resident_mode = resident_mode
        self.recovery = recovery
        self.current_slot = 0
        #: True between fail_stop() and rejoin(): the daemon is dead —
        #: inbound control traffic is dropped, nothing is ever sent.
        self.failed = False
        self.dropped_messages = 0
        self._slot_jobs: dict[int, int] = {}   # slot -> job_id on this node
        self._jobs: dict[int, _LocalJob] = {}  # job_id -> local record
        #: In-flight daemon operations (loads, switches, teardowns);
        #: interrupted wholesale at fail-stop — a dead daemon finishes
        #: nothing.  Application processes are suspended, not tracked
        #: here.
        self._daemon_procs: list[Process] = []
        self._switching = False
        self._switch_idle_waiters: list[Event] = []
        self._switches_started: set[int] = set()
        self._switches_done: set[int] = set()
        #: Tombstones for jobs the masterd killed; checked by a load
        #: still in flight when the kill arrived.
        self._killed_jobs: set[int] = set()
        control_net.register(node.node_id, self._on_message)
        if recovery is not None:
            sim.process(self._heartbeat_loop(),
                        name=f"noded{node.node_id}-heartbeat")

    # ------------------------------------------------------------------ dispatch
    def _on_message(self, src: int, message) -> None:
        if self.failed:
            self.dropped_messages += 1
            return
        kind = message[0]
        if kind == "load-job":
            _, job_id, slot, rank, rank_to_node, workload = message
            self._spawn(self._load_job(job_id, slot, rank, rank_to_node, workload),
                        name=f"noded{self.node.node_id}-load-j{job_id}")
        elif kind == "job-sync":
            self._jobs[message[1]].sync_event.succeed()
        elif kind == "switch-slot":
            _, sequence, old_slot, new_slot = message
            self._spawn(self._switch(sequence, old_slot, new_slot),
                        name=f"noded{self.node.node_id}-switch{sequence}")
        elif kind == "end-job":
            self._spawn(self._end_job(message[1]),
                        name=f"noded{self.node.node_id}-end-j{message[1]}")
        elif kind == "kill-job":
            self._spawn(self._kill_job(message[1]),
                        name=f"noded{self.node.node_id}-kill-j{message[1]}")
        elif kind == "evict-node":
            # A peer died: drop it from the flush set.  This may complete
            # a round this node is currently blocked in.
            self.glue.flush.force_remove_node(message[1])
        elif kind == "reintegrate":
            _, new_node, participants = message
            self.glue.flush.reset(list(participants))
            self._send_master(("reintegrated", self.node.node_id, 0, 0))
        elif kind == "rejoin-ack":
            _, active_slot, participants, dead_jobs = message
            self._spawn(self._reintegrate(active_slot, participants, dead_jobs),
                        name=f"noded{self.node.node_id}-reintegrate")
        else:
            raise SchedulingError(f"noded {self.node.node_id}: unknown message "
                                  f"{message!r}")

    def _spawn(self, gen, name: str) -> Process:
        """Run a daemon operation as a process, tracked for fail-stop."""
        if len(self._daemon_procs) > 32:
            self._daemon_procs = [p for p in self._daemon_procs if p.is_alive]
        proc = self.sim.process(self._guarded(gen), name=name)
        self._daemon_procs.append(proc)
        return proc

    @staticmethod
    def _guarded(gen):
        try:
            yield from gen
        except InterruptError:
            pass  # fail-stop: the daemon died mid-operation

    def _send_master(self, message) -> None:
        if self.failed:
            return  # a dead daemon answers nothing
        self.control_net.send(self.node.node_id, self.master_endpoint, message)

    def _record_sched(self, kind: str, job_id: int) -> None:
        """Trace a SIGSTOP/SIGCONT edge (``job-stop``/``job-go``).

        The causal layer folds these into per-(node, job) descheduled
        windows; a repeated stop (fail-stop over an already-parked slot)
        is tolerated there, so this stays an unconditional record.
        """
        spans = self.spans
        if spans:
            spans.tracer.record(kind, node=self.node.node_id, job=job_id)

    # ------------------------------------------------------------------ job loading
    def _load_job(self, job_id: int, slot: int, rank: int,
                  rank_to_node: dict[int, int], workload: Workload):
        if slot in self._slot_jobs:
            raise SchedulingError(
                f"noded {self.node.node_id}: slot {slot} already hosts job "
                f"{self._slot_jobs[slot]}"
            )
        install = self.resident_mode or slot == self.current_slot
        ctx, env = yield from self.glue.COMM_init_job(
            job_id, rank, rank_to_node, self.policy, install=install)
        yield self.node.cpu.busy(self.FORK_TIME)
        if job_id in self._killed_jobs:
            # The masterd killed this job while the fork was in flight
            # (a co-hosting node died).  Unwind quietly; the masterd
            # already counts this node out of the job.
            yield from self.glue.COMM_end_job(job_id)
            return
        local = _LocalJob(job_id=job_id, slot=slot, rank=rank, context=ctx,
                          workload=workload, sync_event=Event(self.sim))
        proc = self.sim.process(self._app_main(local, env),
                                name=f"app-j{job_id}-r{rank}")
        if not self.resident_mode and slot != self.current_slot:
            proc.suspend()  # the job's gang slot is not running
            self._record_sched("job-stop", job_id)
        proc.add_callback(lambda ev: self._on_app_done(local, ev))
        local.process = proc
        self._jobs[job_id] = local
        self._slot_jobs[slot] = job_id
        self._send_master(("loaded", job_id, self.node.node_id))

    def _app_main(self, local: _LocalJob, env: dict[str, str]):
        """The forked user process: FM_initialize, then the workload."""
        penv = parse_environment(env)  # what crosses the fork boundary
        yield self.node.cpu.busy(self.FM_INIT_TIME)
        # Block on the pipe until the noded forwards the masterd's
        # all-up signal; only then is sending safe.
        yield local.sync_event
        lib = FMLibrary(self.node, self.glue.firmware, local.context,
                        tracer=self.glue.tracer)
        local.endpoint = Endpoint(local.context, lib)
        result = yield from local.workload(local.endpoint)
        return result

    def _on_app_done(self, local: _LocalJob, event: Event) -> None:
        if event.ok is False:
            raise event.value  # surface workload crashes loudly
        local.finished = True
        local.result = event.value
        self._send_master(("job-finished", local.job_id, self.node.node_id,
                           local.rank, local.result))

    # ------------------------------------------------------------------ switching
    def _switch(self, sequence: int, old_slot: int, new_slot: int):
        if sequence in self._switches_started:
            # A masterd barrier retry.  If the original already finished,
            # its ack raced the retry — just re-ack; otherwise the switch
            # is still in progress and will ack when done.
            if sequence in self._switches_done:
                self._send_master(("switch-done", sequence, self.node.node_id))
            return
        self._switches_started.add(sequence)
        self._switching = True
        try:
            yield from self._run_switch(sequence, old_slot, new_slot)
            self._switches_done.add(sequence)
            self._send_master(("switch-done", sequence, self.node.node_id))
        finally:
            self._switching = False
            if self._switch_idle_waiters:
                waiters, self._switch_idle_waiters = self._switch_idle_waiters, []
                for waiter in waiters:
                    waiter.succeed()

    def _switch_idle(self):
        """Wait until no switch is in flight on this node (generator)."""
        while self._switching:
            gate = Event(self.sim)
            self._switch_idle_waiters.append(gate)
            yield gate

    def _run_switch(self, sequence: int, old_slot: int, new_slot: int):
        injector = self.fault_injector
        if injector is not None:
            # Daemon disruption: the switch message sat in a stalled (or
            # crashed-and-restarted) noded before the protocol started.
            # The gang quantum shrinks but the three-stage protocol below
            # runs unchanged — its safety must not depend on the daemon
            # being prompt.
            kind, delay = injector.daemon_disruption(self.node.node_id)
            if kind is not None:
                if delay > 0:
                    yield self.sim.timeout(delay)
                if kind == "crash":
                    yield self.node.cpu.busy(
                        injector.spec.daemon_restart_time)
        out_job = self._slot_jobs.get(old_slot)
        in_job = self._slot_jobs.get(new_slot)
        started = self.sim.now
        spans = self.spans
        switch_span = None
        if spans:
            switch_span = spans.begin(
                "gang-switch", category="switch", node=self.node.node_id,
                sequence=sequence, out_job=out_job, in_job=in_job)

        out_local = self._jobs.get(out_job) if out_job is not None else None
        in_local = self._jobs.get(in_job) if in_job is not None else None

        if out_local is not None and out_local.process is not None:
            yield self.node.cpu.busy(self.SIGNAL_TIME)
            out_local.process.suspend()  # SIGSTOP
            self._record_sched("job-stop", out_job)

        if self.resident_mode:
            halt_s = switch_s = release_s = 0.0
            out_send = out_recv = 0
        else:
            if spans:
                stage = spans.begin("halt", category="switch",
                                    parent=switch_span,
                                    node=self.node.node_id)
            halt_s = yield from self.glue.COMM_halt_network()
            if spans:
                spans.end(stage)
                stage = spans.begin("swap", category="switch",
                                    parent=switch_span,
                                    node=self.node.node_id)
            report = yield from self.glue.COMM_context_switch(
                out_job, in_job, sequence=sequence)
            switch_s = report.duration
            out_send, out_recv = report.out_send_valid, report.out_recv_valid
            if spans:
                spans.end(stage, out_send_valid=out_send,
                          out_recv_valid=out_recv)
                stage = spans.begin("release", category="switch",
                                    parent=switch_span,
                                    node=self.node.node_id)
            release_s = yield from self.glue.COMM_release_network()
            if spans:
                spans.end(stage)

        if in_local is not None and in_local.process is not None:
            yield self.node.cpu.busy(self.SIGNAL_TIME)
            in_local.process.resume()  # SIGCONT
            self._record_sched("job-go", in_job)

        if spans and switch_span is not None:
            spans.end(switch_span)
        self.current_slot = new_slot
        self.recorder.add(SwitchRecord(
            node_id=self.node.node_id, sequence=sequence,
            old_slot=old_slot, new_slot=new_slot,
            halt_seconds=halt_s, switch_seconds=switch_s,
            release_seconds=release_s,
            out_job=out_job, in_job=in_job,
            out_send_valid=out_send, out_recv_valid=out_recv,
            algorithm=("resident" if self.resident_mode
                       else self.glue.switch_algorithm.name),
            started_at=started,
        ))

    # ------------------------------------------------------------------ teardown
    def _end_job(self, job_id: int):
        # The record is kept (jobs ids are never reused) so experiments can
        # inspect endpoints post-mortem; only the slot mapping is cleared.
        local = self._jobs.get(job_id)
        if local is None or self._slot_jobs.get(local.slot) != job_id:
            raise SchedulingError(f"noded {self.node.node_id}: end-job for "
                                  f"unknown job {job_id}")
        del self._slot_jobs[local.slot]
        yield from self.glue.COMM_end_job(job_id)
        self._send_master(("ended", job_id, self.node.node_id))

    def _kill_job(self, job_id: int):
        """Masterd-ordered teardown of a job that lost a rank elsewhere.

        Serialised after any in-flight switch: the context teardown must
        not race ``COMM_context_switch`` on this node.
        """
        yield from self._switch_idle()
        self._killed_jobs.add(job_id)
        local = self._jobs.get(job_id)
        if local is None:
            # The kill raced the load-job; _load_job sees the tombstone
            # and unwinds itself.  Ack now — there is nothing to tear down.
            self._send_master(("killed", job_id, self.node.node_id))
            return
        if self._slot_jobs.get(local.slot) == job_id:
            del self._slot_jobs[local.slot]
        proc = local.process
        if proc is not None and proc.is_alive:
            yield self.node.cpu.busy(self.SIGNAL_TIME)
            proc.suspend()  # SIGKILL: stopped and never continued
            self._record_sched("job-stop", job_id)
        if self.glue.has_job(job_id):
            yield from self.glue.COMM_end_job(job_id)
        self._send_master(("killed", job_id, self.node.node_id))

    # ------------------------------------------------------------------ fail-stop
    def fail_stop(self) -> None:
        """Kill the node: daemon ops die, processes stop, the NIC goes dark.

        Installed contexts are paged out to the backing store *before*
        the card powers off, so the stored images fingerprint the queues
        exactly as they were at the moment of death — reintegration
        later restore-verifies against these (the residual-integrity
        audit).  The store models state on the node's local disk, which
        survives the crash.  Idempotent.
        """
        if self.failed:
            return
        self.failed = True
        for proc in self._daemon_procs:
            if proc.is_alive:
                proc.interrupt("fail-stop")
        self._daemon_procs.clear()
        for local in self._jobs.values():
            if local.process is not None and local.process.is_alive:
                local.process.suspend()
                self._record_sched("job-stop", local.job_id)
        self._switching = False
        self._switch_idle_waiters.clear()
        self.glue.flush.abandon_round()
        self.glue.page_out_installed()
        self.glue.firmware.power_off()

    def rejoin(self) -> None:
        """Restart after a fail-stop: power the NIC and re-register.

        The masterd answers with ``rejoin-ack`` carrying the active
        slot, the new participant set, and the jobs this node hosted
        that died with it; :meth:`_reintegrate` finishes the protocol.
        Idempotent (no-op unless failed).
        """
        if not self.failed:
            return
        self.failed = False
        self.glue.firmware.power_on()
        self._send_master(("register", self.node.node_id))

    def _reintegrate(self, active_slot: int, participants, dead_jobs):
        """Node-local half of reintegration (a daemon process).

        Every stored context is restore-verified against the image paged
        out at death — a mismatch raises ContextSwitchError, failing the
        run loudly — then discarded: the cluster already applied the
        failure policies, so these incarnations are gone regardless.
        """
        restored = discarded = 0
        for job_id in dead_jobs:
            local = self._jobs.get(job_id)
            if local is not None and self._slot_jobs.get(local.slot) == job_id:
                del self._slot_jobs[local.slot]
            self._killed_jobs.add(job_id)
            if not self.glue.has_job(job_id):
                continue
            if self.glue.backing.has_image(job_id):
                self.glue.backing.restore(self.glue.context_of(job_id))
                restored += 1
            else:
                discarded += 1
            yield from self.glue.COMM_end_job(job_id)
        self.glue.flush.reset(list(participants))
        self.current_slot = active_slot
        self._send_master(("reintegrated", self.node.node_id,
                           restored, discarded))

    def _heartbeat_loop(self):
        """Lease renewal: one unicast per interval, silent while failed.

        Deliberately *not* a tracked daemon proc — it must survive the
        fail-stop (the ``failed`` flag gates it) so the restarted daemon
        resumes breathing without respawning anything.
        """
        interval = self.recovery.heartbeat_interval
        while True:
            yield interval
            if not self.failed:
                self.control_net.send(self.node.node_id, self.master_endpoint,
                                      ("heartbeat", self.node.node_id))

    # ------------------------------------------------------------------ inspection
    def local_job(self, job_id: int) -> _LocalJob:
        return self._jobs[job_id]

    @property
    def hosted_jobs(self) -> list[int]:
        return sorted(self._jobs)
