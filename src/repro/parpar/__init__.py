"""The ParPar cluster system (paper Section 2.1).

A software MPP: a master daemon (**masterd**) on the cluster host owns a
gang-scheduling matrix of 16 columns (nodes) by n rows (time slots) and
rotates slots round-robin; a node daemon (**noded**) on every worker
manages process loading, SIGSTOP/SIGCONT, and drives glueFM's three-stage
context switch; a job representative (**jobrep**) negotiates submissions.
Placement into the matrix follows the DHC buddy scheme.
"""

from repro.parpar.cluster import ClusterConfig, ParParCluster
from repro.parpar.dhc import DHCAllocator
from repro.parpar.job import JobSpec, ParallelJob
from repro.parpar.matrix import GangMatrix

__all__ = [
    "ClusterConfig",
    "DHCAllocator",
    "GangMatrix",
    "JobSpec",
    "ParallelJob",
    "ParParCluster",
]
