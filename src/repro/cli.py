"""Command-line experiment runner: ``python -m repro <figure> [options]``.

Regenerates any of the paper's figures from the shell without pytest:

    python -m repro figure5 --contexts 1 2 4 8 --sizes 1024 16384
    python -m repro figure7 --nodes 2 8 16
    python -m repro headline
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

#: Mirror of ``repro.faults.strategies.STRATEGY_NAMES`` — inlined so
#: building the parser stays import-free; a test pins the two in sync.
STRATEGY_CHOICES = ("per-packet", "cumulative", "nack", "adaptive")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quantum", type=float, default=None,
                        help="gang quantum in seconds (scaled; see DESIGN.md)")


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", metavar="OUT.json", default=None,
                        help="enable the unified telemetry layer and write "
                             "the merged snapshot (all sweep points) here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from Etsion & Feitelson, IPPS 2001.",
    )
    parser.add_argument("-j", "--jobs", dest="workers", type=int, default=1,
                        metavar="N",
                        help="run sweep points on N worker processes "
                             "(before the subcommand; results are "
                             "bit-identical to a serial run)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p5 = sub.add_parser("figure5", help="bandwidth collapse, static partition")
    p5.add_argument("--contexts", type=int, nargs="+",
                    default=list(range(1, 9)))
    p5.add_argument("--sizes", type=int, nargs="+", default=None)
    p5.add_argument("--packets", type=int, default=800,
                    help="target packets per data point")
    _add_telemetry(p5)

    p6 = sub.add_parser("figure6", help="total bandwidth, buffer switching")
    p6.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4, 8])
    p6.add_argument("--sizes", type=int, nargs="+", default=None)
    _add_common(p6)
    _add_telemetry(p6)

    pp = sub.add_parser("figure_policies",
                        help="buffer policy comparison: bandwidth vs jobs")
    pp.add_argument("--policies", nargs="+", default=None,
                    help="policy arms to sweep (default: all five)")
    pp.add_argument("--jobs", type=int, nargs="+", default=None,
                    help="competing job counts (default: 1 2 4 8)")
    pp.add_argument("--sizes", type=int, nargs="+", default=None,
                    help="message sizes in bytes (default: 1536)")
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument("--out", metavar="BENCH.json", default=None,
                    help="write the benchmark JSON document here")
    pp.add_argument("--smoke", action="store_true",
                    help="CI preset: small sweep, then re-run on a "
                         "2-worker pool and require byte-identical "
                         "results; exit non-zero otherwise")
    _add_common(pp)
    _add_telemetry(pp)

    pfr = sub.add_parser(
        "figure_reliability",
        help="reliability strategy comparison: goodput vs drop rate")
    pfr.add_argument("--strategies", nargs="+", default=None,
                     choices=STRATEGY_CHOICES,
                     help="strategy arms to sweep (default: all four)")
    pfr.add_argument("--drops", type=float, nargs="+", default=None,
                     help="packet drop rates (default: 0 0.02 0.05 0.1)")
    pfr.add_argument("--rounds", type=int, default=None,
                     help="all-to-all rounds per point (default: 20)")
    pfr.add_argument("--seed", type=int, default=0)
    pfr.add_argument("--out", metavar="BENCH.json", default=None,
                     help="write the benchmark JSON document here")
    pfr.add_argument("--smoke", action="store_true",
                     help="CI preset: small sweep over every arm, then "
                          "re-run on a 2-worker pool and require "
                          "byte-identical results; exit non-zero otherwise")
    _add_telemetry(pfr)

    for name, help_text in (("figure7", "switch stages, full copy"),
                            ("figure9", "switch stages, valid-only copy")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--nodes", type=int, nargs="+", default=[2, 4, 8, 16])
        p.add_argument("--switches", type=int, default=10)
        _add_telemetry(p)

    p8 = sub.add_parser("figure8", help="buffer occupancy at switch time")
    p8.add_argument("--nodes", type=int, nargs="+", default=[2, 4, 8, 16])
    p8.add_argument("--switches", type=int, default=10)
    _add_telemetry(p8)

    sub.add_parser("headline", help="Sec 4.2 headline overhead bounds")
    pn = sub.add_parser("nicmem", help="NIC memory sufficiency (Sec 4.1)")
    _add_telemetry(pn)
    sub.add_parser("perf", help="kernel performance smoke check")

    pt = sub.add_parser(
        "telemetry",
        help="traced gang-switch demo: Chrome trace + metrics snapshot")
    pt.add_argument("--out", metavar="TRACE.json", default=None,
                    help="Chrome trace_event output "
                         "(default: repro_trace.json)")
    pt.add_argument("--metrics", metavar="SNAP.json", default=None,
                    help="also write the unified snapshot JSON here")
    pt.add_argument("--nodes", type=int, default=4)
    pt.add_argument("--switches", type=int, default=4)
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--smoke", action="store_true",
                    help="CI preset: validate the snapshot against the "
                         "checked-in schema and require a complete "
                         "halt/swap/release switch; exit non-zero otherwise")

    px = sub.add_parser(
        "explain",
        help="causal latency attribution: where every microsecond went")
    px.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4],
                    help="competing gang-scheduled jobs per point")
    px.add_argument("--sizes", type=int, nargs="+", default=[1536],
                    help="message sizes in bytes")
    px.add_argument("--messages", type=int, default=None,
                    help="messages per job (default: sized to ~3 quanta)")
    px.add_argument("--policy", default=None,
                    help="buffer-sharing policy arm (adds reallocation "
                         "spans; see 'figure_policies')")
    px.add_argument("--seed", type=int, default=0)
    px.add_argument("--trace", metavar="TRACE.json", default=None,
                    help="analyze a saved repro-trace/1 document instead "
                         "of running the simulation")
    px.add_argument("--save-trace", dest="save_trace", metavar="OUT.json",
                    default=None,
                    help="write the normalized record streams here "
                         "(re-ingestable with --trace)")
    px.add_argument("--json", dest="json_out", metavar="OUT.json",
                    default=None,
                    help="write the repro-explain/1 attribution summary")
    px.add_argument("--chrome", metavar="OUT.json", default=None,
                    help="write a Chrome trace_event file with flow "
                         "arrows for the last point")
    px.add_argument("--top", type=int, default=5,
                    help="exemplar messages per point in the JSON summary")
    px.add_argument("--smoke", action="store_true",
                    help="CI preset: small sweep, serial vs -j2 must be "
                         "byte-identical and every cause partition must "
                         "sum exactly; exit non-zero otherwise")
    _add_common(px)

    pc = sub.add_parser("chaos", help="fault-injection campaign + safety audit")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--runs", type=int, default=1,
                    help="independent seeded runs (fan out with -j)")
    pc.add_argument("--nodes", type=int, default=4)
    pc.add_argument("--slots", type=int, default=2)
    pc.add_argument("--chaos-jobs", type=int, default=2, dest="chaos_jobs",
                    help="gang-scheduled all-to-all jobs (<= slots)")
    pc.add_argument("--rounds", type=int, default=30)
    pc.add_argument("--size", type=int, default=1024,
                    help="all-to-all message size in bytes")
    pc.add_argument("--quantum", type=float, default=0.004)
    pc.add_argument("--drop", type=float, default=0.0)
    pc.add_argument("--dup", type=float, default=0.0)
    pc.add_argument("--corrupt", type=float, default=0.0)
    pc.add_argument("--jitter", type=float, default=0.0)
    pc.add_argument("--sram", type=float, default=0.0,
                    help="SRAM bit flips per second per node")
    pc.add_argument("--stall", type=float, default=0.0,
                    help="per-switch daemon stall probability")
    pc.add_argument("--crash", type=float, default=0.0,
                    help="per-switch daemon crash probability")
    pc.add_argument("--failstop", type=int, default=0, metavar="N",
                    help="kill N nodes fail-stop at seed-drawn times; jobs "
                         "shrink to nodes/2 ranks so some survive")
    pc.add_argument("--rejoin", action="store_true",
                    help="restart each killed node 5 quanta after its death "
                         "and reintegrate it")
    pc.add_argument("--requeue", action="store_true",
                    help="requeue jobs that lose a rank instead of killing "
                         "them (falls back to kill without capacity)")
    pc.add_argument("--strategy", choices=STRATEGY_CHOICES,
                    default="per-packet",
                    help="ACK/NACK reliability strategy on every NIC "
                         "(default: per-packet)")
    pc.add_argument("--no-audit", action="store_true",
                    help="inject faults without the invariant auditor")
    pc.add_argument("--smoke", action="store_true",
                    help="fast CI preset; exits non-zero on any violation "
                         "(combine with --failstop for the recovery preset)")
    _add_telemetry(pc)

    pl = sub.add_parser(
        "lint",
        help="simlint: determinism & protocol-safety static analysis")
    pl.add_argument("paths", nargs="*", default=None, metavar="PATH",
                    help="files or directories to lint "
                         "(default: the repro package)")
    pl.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text",
                    help="report format (json is stable for CI diffing; "
                         "sarif is the SARIF 2.1.0 interchange document "
                         "for code-scanning annotations)")
    pl.add_argument("--changed", nargs="?", const="HEAD", default=None,
                    metavar="BASE",
                    help="only report findings in files git-changed "
                         "since BASE (default HEAD = uncommitted "
                         "changes); the whole tree is still indexed so "
                         "interprocedural rules see full context")
    pl.add_argument("--cache", nargs="?", const="auto", default=None,
                    metavar="FILE",
                    help="reuse results across runs via a JSON cache "
                         "keyed by file sha + rule inventory "
                         "(default location: .simlint_cache.json at "
                         "the repo root)")
    pl.add_argument("--no-cache", action="store_true",
                    help="ignore --cache (escape hatch for scripts)")
    pl.add_argument("--sarif-out", metavar="REPORT.sarif", default=None,
                    help="also write the SARIF 2.1.0 report here "
                         "(CI code-scanning artifact)")
    pl.add_argument("--fail-on", choices=("error", "warning"),
                    default="error", dest="fail_on",
                    help="exit non-zero when findings at or above this "
                         "severity survive the baseline")
    pl.add_argument("--baseline", metavar="FILE", default=None,
                    help="baseline JSON of accepted findings; only *new* "
                         "findings fail the gate "
                         "(default: schemas/simlint_baseline.json when "
                         "present)")
    pl.add_argument("--no-baseline", action="store_true",
                    help="ignore any baseline; every finding counts")
    pl.add_argument("--write-baseline", metavar="FILE", default=None,
                    help="write the current findings as the new baseline "
                         "and exit 0")
    pl.add_argument("--out", metavar="REPORT.json", default=None,
                    help="also write the JSON report here (CI artifact)")

    pr = sub.add_parser(
        "racecheck",
        help="dynamic buffer-ownership race detector over fault presets")
    pr.add_argument("--preset", choices=("chaos", "failstop"),
                    default="chaos",
                    help="which fault campaign to monitor")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--plant", action="store_true",
                    help="schedule a deliberate out-of-ownership-window "
                         "access (positive control; expects 1 race)")
    pr.add_argument("--plant-kind",
                    choices=("stored-access", "halted-send", "sram-stored"),
                    default="stored-access", dest="plant_kind",
                    help="which race class the planted probe commits "
                         "(with --plant)")
    pr.add_argument("--smoke", action="store_true",
                    help="CI gate: clean chaos+failstop presets must show "
                         "zero races, a planted access must be caught, "
                         "and monitoring must leave outputs bit-identical")
    pr.add_argument("--out", metavar="REPORT.json", default=None,
                    help="write the JSON report here (CI artifact)")
    return parser


EXPERIMENTS = {
    "figure5": "Fig. 5  bandwidth vs size x contexts, static FM division",
    "figure6": "Fig. 6  total bandwidth vs size x jobs, buffer switching",
    "figure_policies": "buffer policy comparison: bandwidth vs competing jobs",
    "figure_reliability": "reliability strategy comparison: goodput vs drop rate",
    "figure7": "Fig. 7  switch stage cycles vs nodes, full copy",
    "figure8": "Fig. 8  valid packets in buffers at switch time",
    "figure9": "Fig. 9  switch stage cycles vs nodes, valid-only copy",
    "headline": "Sec 4.2 headline overhead bounds",
    "nicmem": "Sec 4.1 NIC memory sufficiency",
    "perf": "DES kernel performance smoke check",
    "explain": "causal latency attribution + critical-path waterfalls",
    "chaos": "fault-injection campaign with no-loss/no-dup safety audit",
    "telemetry": "traced gang-switch demo (Chrome trace + metrics snapshot)",
    "lint": "simlint determinism & protocol-safety static analysis",
    "racecheck": "dynamic buffer-ownership race detector (gang-switch protocol)",
}


def _git_changed_py_files(repo_root, base):
    """Repo-relative posix paths of ``*.py`` files changed since ``base``.

    The union of tracked changes (``git diff --name-only <base>``) and
    untracked files, for ``repro lint --changed``.  Returns None when
    git is unavailable or the ref does not resolve — the caller falls
    back to reporting the full tree rather than silently reporting
    nothing.
    """
    import subprocess
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            cwd=repo_root, capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=repo_root, capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    names = set(diff.stdout.splitlines())
    names.update(untracked.stdout.splitlines())
    return sorted(n for n in names if n.endswith(".py"))


def _write_merged_telemetry(path: str, snapshots) -> None:
    """Merge per-point snapshots and write the aggregate (validated)."""
    import json

    from repro.telemetry.schema import validate_snapshot
    from repro.telemetry.session import merge_unified_snapshots

    merged = merge_unified_snapshots(s for s in snapshots if s is not None)
    problems = validate_snapshot(merged)
    if problems:  # pragma: no cover - contract drift is a bug
        raise RuntimeError("telemetry snapshot violates schema: "
                           + "; ".join(problems))
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"telemetry snapshot written to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name, desc in EXPERIMENTS.items():
            print(f"  {name:<9} {desc}")
        return 0

    if args.command == "figure5":
        from repro.experiments.common import FIG5_MESSAGE_SIZES
        from repro.experiments.figure5 import run_figure5
        from repro.experiments.report import render_figure5

        sizes = tuple(args.sizes) if args.sizes else FIG5_MESSAGE_SIZES
        points = run_figure5(contexts=tuple(args.contexts),
                             message_sizes=sizes,
                             target_packets=args.packets,
                             workers=args.workers,
                             telemetry=args.telemetry is not None)
        print(render_figure5(points))
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "figure6":
        from repro.experiments.common import FIG6_MESSAGE_SIZES
        from repro.experiments.figure6 import run_figure6
        from repro.experiments.report import render_figure6

        sizes = tuple(args.sizes) if args.sizes else FIG6_MESSAGE_SIZES
        kwargs = {}
        if args.quantum:
            kwargs["quantum"] = args.quantum
        points = run_figure6(jobs=tuple(args.jobs), message_sizes=sizes,
                             workers=args.workers,
                             telemetry=args.telemetry is not None, **kwargs)
        print(render_figure6(points))
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "figure_policies":
        import json

        from repro.experiments.figure_policies import (DEFAULT_JOBS,
                                                       DEFAULT_MESSAGE_BYTES,
                                                       POLICY_ARMS,
                                                       points_payload,
                                                       run_figure_policies)
        from repro.experiments.report import render_policies

        policies = tuple(args.policies) if args.policies else POLICY_ARMS
        jobs = tuple(args.jobs) if args.jobs else DEFAULT_JOBS
        sizes = tuple(args.sizes) if args.sizes else DEFAULT_MESSAGE_BYTES
        kwargs = {}
        if args.quantum:
            kwargs["quantum"] = args.quantum
        if args.smoke:
            # Small but exercises every arm, a gang-switching point, and
            # the zero-credit static cell — then proves the process-pool
            # fan-out is bit-identical to the serial path.
            jobs = tuple(args.jobs) if args.jobs else (1, 2)
            sizes = tuple(args.sizes) if args.sizes else (1536,)
            kwargs.setdefault("quanta_per_job", 1.5)
        points = run_figure_policies(policies=policies, jobs=jobs,
                                     message_sizes=sizes,
                                     root_seed=args.seed,
                                     workers=args.workers,
                                     telemetry=args.telemetry is not None,
                                     **kwargs)
        print(render_policies(points))
        payload = json.dumps(points_payload(points), indent=2, sort_keys=True)
        if args.smoke:
            parallel = run_figure_policies(policies=policies, jobs=jobs,
                                           message_sizes=sizes,
                                           root_seed=args.seed, workers=2,
                                           telemetry=args.telemetry is not None,
                                           **kwargs)
            parallel_payload = json.dumps(points_payload(parallel),
                                          indent=2, sort_keys=True)
            if parallel_payload != payload:
                print("FAIL: -j2 sweep diverged from the serial run")
                return 1
            print("smoke: serial and -j2 sweeps bit-identical "
                  f"({len(points)} points)")
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"benchmark JSON written to {args.out}")
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "figure_reliability":
        import json

        from repro.experiments.figure_reliability import (DEFAULT_DROPS,
                                                          STRATEGY_ARMS,
                                                          points_payload,
                                                          run_figure_reliability)
        from repro.experiments.report import render_reliability

        strategies = (tuple(args.strategies) if args.strategies
                      else STRATEGY_ARMS)
        drops = tuple(args.drops) if args.drops else DEFAULT_DROPS
        rounds = args.rounds if args.rounds else 20
        if args.smoke:
            # Every arm, a lossless anchor and a lossy cell, few rounds —
            # then prove the process-pool fan-out is bit-identical.
            drops = tuple(args.drops) if args.drops else (0.0, 0.05)
            rounds = args.rounds if args.rounds else 6
        points = run_figure_reliability(strategies=strategies, drops=drops,
                                        rounds=rounds, root_seed=args.seed,
                                        workers=args.workers,
                                        telemetry=args.telemetry is not None)
        print(render_reliability(points))
        payload = json.dumps(points_payload(points), indent=2, sort_keys=True)
        if args.smoke:
            parallel = run_figure_reliability(
                strategies=strategies, drops=drops, rounds=rounds,
                root_seed=args.seed, workers=2,
                telemetry=args.telemetry is not None)
            parallel_payload = json.dumps(points_payload(parallel),
                                          indent=2, sort_keys=True)
            if parallel_payload != payload:
                print("FAIL: -j2 sweep diverged from the serial run")
                return 1
            bad = [p for p in points if not p.audit_ok]
            if bad:
                print(f"FAIL: {len(bad)} points failed the invariant audit")
                return 1
            print("smoke: serial and -j2 sweeps bit-identical, audits "
                  f"green ({len(points)} points)")
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"benchmark JSON written to {args.out}")
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command in ("figure7", "figure9"):
        from repro.experiments.figure7 import run_figure7
        from repro.experiments.figure9 import run_figure9
        from repro.experiments.report import render_switch_overheads

        runner = run_figure7 if args.command == "figure7" else run_figure9
        points = runner(nodes=tuple(args.nodes), num_switches=args.switches,
                        workers=args.workers,
                        telemetry=args.telemetry is not None)
        print(render_switch_overheads(points, args.command[-1]))
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "figure8":
        from repro.experiments.figure8 import run_figure8
        from repro.experiments.report import render_figure8

        points = run_figure8(nodes=tuple(args.nodes),
                             num_switches=args.switches,
                             workers=args.workers,
                             telemetry=args.telemetry is not None)
        print(render_figure8(points))
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "headline":
        from repro.experiments.report import render_headline
        from repro.experiments.table_overhead import run_headline_overheads

        print(render_headline(run_headline_overheads()))
        return 0

    if args.command == "perf":
        from repro.sim.bench import run_smoke

        return run_smoke()

    if args.command == "explain":
        import json

        from repro.telemetry.explain import (explain_chrome_trace,
                                             explain_payload, load_trace,
                                             render_explain, run_explain,
                                             run_explain_smoke,
                                             trace_payload)

        if args.smoke:
            ok, text, json_doc, chrome_doc = run_explain_smoke(
                root_seed=args.seed)
            print(text)
            if args.json_out:
                with open(args.json_out, "w") as fh:
                    json.dump(json_doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            if args.chrome:
                with open(args.chrome, "w") as fh:
                    json.dump(chrome_doc, fh, indent=1, sort_keys=True)
                    fh.write("\n")
            return 0 if ok else 1

        if args.trace:
            with open(args.trace) as fh:
                results = load_trace(json.load(fh))
        else:
            kwargs = {}
            if args.quantum:
                kwargs["quantum"] = args.quantum
            results = run_explain(
                jobs=tuple(args.jobs), message_sizes=tuple(args.sizes),
                messages=args.messages, policy=args.policy,
                root_seed=args.seed, workers=args.workers,
                keep_records=args.save_trace is not None, **kwargs)
        print(render_explain(results))
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(explain_payload(results, top=args.top), fh,
                          indent=2, sort_keys=True)
                fh.write("\n")
            print(f"attribution summary written to {args.json_out}")
        if args.chrome:
            with open(args.chrome, "w") as fh:
                json.dump(explain_chrome_trace(results[-1]), fh, indent=1,
                          sort_keys=True)
                fh.write("\n")
            print(f"Chrome trace written to {args.chrome} "
                  "-- load it in chrome://tracing or "
                  "https://ui.perfetto.dev")
        if args.save_trace:
            with open(args.save_trace, "w") as fh:
                json.dump(trace_payload(results), fh, sort_keys=True)
                fh.write("\n")
            print(f"record streams written to {args.save_trace}")
        bad = sum(r["point"]["mismatches"] for r in results)
        return 1 if bad else 0

    if args.command == "chaos":
        import json

        from repro.faults.chaos import ChaosPoint, run_chaos_campaign

        point = ChaosPoint(
            seed=args.seed, nodes=args.nodes, time_slots=args.slots,
            jobs=args.chaos_jobs, quantum=args.quantum, rounds=args.rounds,
            message_bytes=args.size, drop=args.drop, dup=args.dup,
            corrupt=args.corrupt, jitter=args.jitter, sram=args.sram,
            stall=args.stall, crash=args.crash,
            failstops=args.failstop, rejoin=args.rejoin,
            requeue=args.requeue, audit=not args.no_audit,
            strategy=args.strategy,
            telemetry=args.telemetry is not None,
        )
        if args.smoke and args.failstop:
            # CI recovery preset: one fail-stop death with rejoin and
            # requeue, long-enough jobs to guarantee the death lands
            # mid-run — eviction, requeue, and reintegration all fire.
            point = ChaosPoint(
                seed=args.seed, nodes=4, time_slots=2, jobs=2,
                quantum=0.004, rounds=600, message_bytes=1024,
                failstops=1, rejoin=True, requeue=True,
                audit=not args.no_audit,
                strategy=args.strategy,
                telemetry=args.telemetry is not None,
            )
        elif args.smoke:
            # CI preset: every fault model lit, small cluster, < 60 s.
            point = ChaosPoint(
                seed=args.seed, nodes=4, time_slots=2, jobs=2,
                quantum=0.004, rounds=10, message_bytes=1024,
                drop=0.02, dup=0.01, corrupt=0.005, jitter=0.05,
                sram=200.0, stall=0.05, crash=0.02,
                audit=not args.no_audit,
                strategy=args.strategy,
                telemetry=args.telemetry is not None,
            )
        results = run_chaos_campaign(point, runs=args.runs,
                                     workers=args.workers)
        print(json.dumps(results if args.runs > 1 else results[0], indent=2))
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (r.get("telemetry") for r in results))
        if point.audit:
            bad = [r for r in results
                   if r.get("error") or not r["audit"]["ok"]]
            return 1 if bad else 0
        return 0

    if args.command == "lint":
        from pathlib import Path

        import repro
        from repro.analysis.simlint import (
            DEFAULT_CACHE_NAME, LintCache, all_rules,
            diff_against_baseline, lint_paths, load_baseline,
            render_baseline, render_json, render_sarif, render_text,
            rules_inventory_hash)

        package_dir = Path(repro.__file__).resolve().parent
        repo_root = package_dir.parent.parent
        paths = args.paths if args.paths else [package_dir]
        rules_hash = rules_inventory_hash()

        report_paths = None
        if args.changed:
            report_paths = _git_changed_py_files(repo_root, args.changed)
            if report_paths is None:
                print("simlint: --changed: git diff failed; "
                      "reporting the full tree", file=sys.stderr)

        cache = None
        if args.cache and not args.no_cache:
            cache_path = (repo_root / DEFAULT_CACHE_NAME
                          if args.cache == "auto" else Path(args.cache))
            cache = LintCache(cache_path)

        result = lint_paths(paths, root=repo_root, cache=cache,
                            report_paths=report_paths)
        if cache is not None:
            cache.save()

        if args.write_baseline:
            Path(args.write_baseline).write_text(
                render_baseline(result, rules_hash=rules_hash))
            print(f"simlint baseline written to {args.write_baseline} "
                  f"({len(result.findings)} findings)")
            return 0

        if args.format == "json":
            print(render_json(result), end="")
        elif args.format == "sarif":
            print(render_sarif(result), end="")
        else:
            print(render_text(result))
        if args.out:
            Path(args.out).write_text(render_json(result))
        if args.sarif_out:
            Path(args.sarif_out).write_text(render_sarif(result))

        baseline = {}
        if not args.no_baseline:
            baseline_path = (Path(args.baseline) if args.baseline
                             else repo_root / "schemas" / "simlint_baseline.json")
            baseline = load_baseline(baseline_path, rules_hash=rules_hash)
        regressions = diff_against_baseline(result, baseline)

        gate = ({"error"} if args.fail_on == "error"
                else {"error", "warning"})
        severity_of = {r.code: r.severity for r in all_rules()}
        failing = [r for r in regressions
                   if severity_of.get(r[0].rsplit("::", 1)[-1]) in gate]
        for key, allowed, now in failing:
            print(f"simlint: NEW finding {key}: {now} (baseline {allowed})",
                  file=sys.stderr)
        if result.parse_errors:
            return 1
        return 1 if failing else 0

    if args.command == "racecheck":
        import json

        from repro.analysis.simlint.racecheck import (
            run_racecheck, run_racecheck_smoke)

        if args.smoke:
            summary = run_racecheck_smoke(seed=args.seed)
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(summary, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            for check in summary["checks"]:
                verdict = "OK " if check["ok"] else "FAIL"
                detail = {k: v for k, v in check.items()
                          if k not in ("check", "ok")}
                print(f"racecheck {verdict} {check['check']} {detail}")
            print("racecheck smoke:", "PASS" if summary["ok"] else "FAIL")
            return 0 if summary["ok"] else 1

        result = run_racecheck(preset=args.preset, seed=args.seed,
                               plant=args.plant,
                               plant_kind=args.plant_kind)
        doc = result.to_dict()
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(json.dumps(doc["monitor"], indent=2, sort_keys=True))
        expected = 1 if args.plant else 0
        return 0 if result.race_count == expected else 1

    if args.command == "nicmem":
        from repro.experiments.nic_memory import (
            contexts_supported, knee_of, run_nic_memory_sweep)
        from repro.experiments.report import format_table

        points = run_nic_memory_sweep(workers=args.workers,
                                      telemetry=args.telemetry is not None)
        knee = knee_of(points)
        rows = [(p.send_buffer_kib, p.credits, f"{p.mbps:.1f}",
                 "<- knee" if p is knee else "") for p in points]
        print(format_table(["sendbuf[KiB]", "C0", "MB/s", ""], rows))
        print(f"knee at {knee.send_buffer_kib} KiB; a 512 KiB card supports "
              f"~{contexts_supported(432, knee.send_buffer_kib)} contexts")
        if args.telemetry:
            _write_merged_telemetry(args.telemetry,
                                    (p.telemetry for p in points))
        return 0

    if args.command == "telemetry":
        import json

        from repro.telemetry.demo import run_telemetry_demo
        from repro.telemetry.export import render_summary

        demo = run_telemetry_demo(nodes=args.nodes,
                                  num_switches=args.switches,
                                  seed=args.seed)
        out = args.out if args.out else "repro_trace.json"
        with open(out, "w") as fh:
            json.dump(demo.trace, fh, indent=1)
            fh.write("\n")
        if args.metrics:
            with open(args.metrics, "w") as fh:
                json.dump(demo.snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(render_summary(demo.snapshot))
        print(f"\n{demo.switches} gang switches captured; Chrome trace "
              f"({len(demo.trace['traceEvents'])} events) written to {out} "
              "-- load it in chrome://tracing or https://ui.perfetto.dev")
        if demo.problems:
            for problem in demo.problems:
                print(f"telemetry check FAILED: {problem}", file=sys.stderr)
            return 1
        if args.smoke:
            print("telemetry smoke: snapshot schema OK, "
                  "halt/swap/release spans OK")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
