"""Synthetic traffic patterns beyond the paper's two benchmarks.

Used by tests (diverse communication shapes exercise different queue and
credit states) and by the ablation benchmarks:

- :func:`ring_benchmark` — nearest-neighbour ring exchange, the classic
  halo pattern;
- :func:`uniform_random_benchmark` — each round, every rank sends to one
  uniformly chosen peer (deterministic per seed and rank);
- :func:`burst_benchmark` — alternating burst/quiet phases, stressing
  receive-queue occupancy like the bursts the paper blames for the
  receive buffer filling up.

All three terminate with the fence protocol of
:mod:`repro.workloads.alltoall`: ranks may extract a peer's fence while
still in their own data loop, so fences are classified at every
extraction site, not just in the final collection loop.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError
from repro.fm.harness import Endpoint
from repro.workloads.alltoall import (
    FENCE_BYTES,
    AllToAllStats,
    _collect_fences,
    _drain_pending,
    _Tally,
)


def _run_pattern(ep: Endpoint, rounds: int, destinations, message_bytes: int,
                 quiet_time: float = 0.0):
    """Shared skeleton: per-round sends, opportunistic drain, fence finish.

    ``destinations(round, rng_peers)`` yields the peers to message that
    round.
    """
    lib = ep.library
    peers = [r for r in sorted(ep.context.rank_to_node) if r != ep.rank]
    if not peers:
        raise ConfigError("pattern needs at least two processes")
    started = lib.sim.now
    tally = _Tally()
    sent = 0
    for round_index in range(rounds):
        for peer in destinations(round_index, peers):
            yield from lib.send(peer, message_bytes)
            sent += 1
        if quiet_time > 0:
            yield quiet_time
        yield from _drain_pending(lib, tally)
    for peer in peers:
        yield from lib.send(peer, FENCE_BYTES)
    yield from _collect_fences(lib, tally, len(peers))
    return AllToAllStats(rank=ep.rank, rounds=rounds, messages_sent=sent,
                         messages_received=tally.data, started_at=started,
                         finished_at=lib.sim.now)


def _check(rounds: int, message_bytes: int) -> None:
    if rounds <= 0:
        raise ConfigError("rounds must be positive")
    if message_bytes <= FENCE_BYTES:
        raise ConfigError(f"message_bytes must be > {FENCE_BYTES} "
                          "(fence messages use that size)")


def ring_benchmark(rounds: int, message_bytes: int):
    """Each round, rank r sends to (r+1) mod p and receives from (r-1)."""
    _check(rounds, message_bytes)

    def workload(ep: Endpoint):
        right = (ep.rank + 1) % ep.context.num_procs
        result = yield from _run_pattern(
            ep, rounds, lambda _round, _peers: [right], message_bytes)
        return result

    return workload


def uniform_random_benchmark(rounds: int, message_bytes: int, seed: int = 0):
    """Each round, send to one uniformly chosen peer (seeded per rank)."""
    _check(rounds, message_bytes)

    def workload(ep: Endpoint):
        digest = hashlib.sha256(f"{seed}:{ep.rank}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))

        def destinations(_round, peers):
            return [peers[int(rng.integers(len(peers)))]]

        result = yield from _run_pattern(ep, rounds, destinations, message_bytes)
        return result

    return workload


def burst_benchmark(bursts: int, burst_len: int, message_bytes: int,
                    quiet_time: float = 200e-6):
    """Alternate tight bursts toward the next rank with quiet gaps.

    Bursts overrun the receiver's extraction rate and pile packets into
    the receive queue — the condition under which Figure 8's occupancy
    samples become non-trivial.  ``burst_len`` must stay within the
    credit window C0 or all ranks block on credits simultaneously with
    no one extracting (flow-control deadlock by construction).
    """
    _check(bursts, message_bytes)
    if burst_len <= 0:
        raise ConfigError("burst_len must be positive")
    if quiet_time < 0:
        raise ConfigError("quiet_time must be >= 0")

    def workload(ep: Endpoint):
        if burst_len > ep.context.geometry.initial_credits:
            raise ConfigError(
                f"burst_len {burst_len} exceeds the credit window "
                f"C0={ep.context.geometry.initial_credits}: guaranteed deadlock"
            )
        right = (ep.rank + 1) % ep.context.num_procs
        result = yield from _run_pattern(
            ep, bursts, lambda _round, _peers: [right] * burst_len,
            message_bytes, quiet_time=quiet_time)
        return result

    return workload
