"""All-to-all benchmarks (paper Section 4.2).

"To measure the context switch overhead we used an all-to-all benchmark,
that will stress the buffers during the test."  Every process sends to
every other process each round, extracting opportunistically to keep the
credit windows recycling (two processes that never extract would wedge
each other's windows — a property the flow-control tests pin down).

Two variants:

- :func:`alltoall_benchmark` — a fixed number of rounds; finishes.
- :func:`alltoall_stream` — open-ended: keeps the buffers busy until a
  simulated-time deadline, which is what the switch-overhead experiments
  (Figures 7-9) run underneath the gang scheduler.  Ranks cross the
  deadline at different points, so termination uses 1-byte *fence*
  messages; a fence may arrive while its receiver is still in the data
  loop, so fences are classified wherever extraction happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fm.harness import Endpoint

#: Message size reserved for termination fences in the open-ended
#: workloads (data messages must be larger).
FENCE_BYTES = 1


@dataclass(frozen=True)
class AllToAllStats:
    """One rank's totals."""

    rank: int
    rounds: int
    messages_sent: int
    messages_received: int
    started_at: float
    finished_at: float

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class _Tally:
    """Extraction counters shared between the data and fence phases."""

    __slots__ = ("data", "fences")

    def __init__(self):
        self.data = 0
        self.fences = 0

    def classify(self, msg) -> None:
        if msg.nbytes == FENCE_BYTES:
            self.fences += 1
        else:
            self.data += 1


def _drain_pending(lib, tally: _Tally):
    """Extract whatever is in the receive queue right now."""
    while lib.pending_packets:
        msg = yield from lib.extract()
        if msg is not None:
            tally.classify(msg)


def _collect_fences(lib, tally: _Tally, expected: int):
    """Block until a fence from every peer has been extracted."""
    while tally.fences < expected:
        msg = yield from lib.extract()
        if msg is not None:
            tally.classify(msg)


def alltoall_benchmark(rounds: int, message_bytes: int):
    """Workload factory: ``rounds`` rounds of everyone-to-everyone."""
    if rounds <= 0:
        raise ConfigError(f"rounds must be positive, got {rounds}")
    if message_bytes < 0:
        raise ConfigError(f"message_bytes must be >= 0, got {message_bytes}")

    def workload(ep: Endpoint):
        lib = ep.library
        peers = [r for r in sorted(ep.context.rank_to_node) if r != ep.rank]
        if not peers:
            raise ConfigError("all-to-all needs at least two processes")
        target = rounds * len(peers)
        started = lib.sim.now
        tally = _Tally()
        for _ in range(rounds):
            # Send the whole round as a burst, then drain: the fan-in of
            # p-1 simultaneous senders is what loads the receive queues
            # ("the host processor cannot keep up with the bursts of
            # incoming packets", Sec. 4.2).
            for peer in peers:
                yield from lib.send(peer, message_bytes)
            yield from _drain_pending(lib, tally)
        while tally.data < target:
            msg = yield from lib.extract()
            if msg is not None:
                tally.classify(msg)
        return AllToAllStats(rank=ep.rank, rounds=rounds,
                             messages_sent=target, messages_received=tally.data,
                             started_at=started, finished_at=lib.sim.now)

    return workload


def alltoall_stream(until: float, message_bytes: int):
    """Workload factory: all-to-all rounds until simulated time ``until``.

    Designed to run *under* the gang scheduler: the deadline is absolute
    simulated time, so a process that spends most of its life suspended
    still stops promptly once its quantum passes the deadline.  Each rank
    sends a fence to every peer after its deadline and drains until it
    has collected a fence from each peer — per-pair FIFO then guarantees
    everything destined to it has been extracted.
    """
    if message_bytes <= FENCE_BYTES:
        raise ConfigError("alltoall_stream needs message_bytes >= 2 "
                          f"({FENCE_BYTES}-byte messages are the fences)")

    def workload(ep: Endpoint):
        lib = ep.library
        peers = [r for r in sorted(ep.context.rank_to_node) if r != ep.rank]
        if not peers:
            raise ConfigError("all-to-all needs at least two processes")
        started = lib.sim.now
        tally = _Tally()
        sent = 0
        rounds = 0
        while lib.sim.now < until:
            # Burst to every peer, then drain (see alltoall_benchmark).
            for peer in peers:
                yield from lib.send(peer, message_bytes)
                sent += 1
            yield from _drain_pending(lib, tally)
            rounds += 1
        for peer in peers:
            yield from lib.send(peer, FENCE_BYTES)
        yield from _collect_fences(lib, tally, len(peers))
        return AllToAllStats(rank=ep.rank, rounds=rounds,
                             messages_sent=sent, messages_received=tally.data,
                             started_at=started, finished_at=lib.sim.now)

    return workload
