"""The point-to-point bandwidth benchmark (paper Section 4.1).

"A parallel application which consists of two processes, a sender and a
receiver.  When run, the sender starts sending a given number of messages
of a specific size.  After all the messages are received by the receiver,
it sends a finish message to the sender and exits.  When the sender
receives the finish message it times it and calculates the bandwidth."

The finish-message overhead is amortised by the message count, exactly as
in the paper (it used 500,000 messages for small sizes; the simulation
scales that down — bandwidth is a steady-state rate, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, CreditError
from repro.fm.harness import Endpoint
from repro.units import mb_per_second


@dataclass(frozen=True)
class BandwidthResult:
    """The sender's measurement."""

    messages: int
    message_bytes: int
    started_at: float
    finished_at: float
    blocked: bool = False   # True when C0=0 made communication impossible

    @property
    def payload_bytes(self) -> int:
        return self.messages * self.message_bytes

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mbps(self) -> float:
        """Bandwidth in decimal MB/s (the paper's unit); 0 when blocked."""
        if self.blocked or self.elapsed <= 0:
            return 0.0
        return mb_per_second(self.payload_bytes, self.elapsed)


def bandwidth_benchmark(messages: int, message_bytes: int):
    """Workload factory: rank 0 sends, rank 1 receives + finishes.

    The sender's workload returns a :class:`BandwidthResult`; the
    receiver's returns the number of messages it consumed.  A zero-credit
    configuration (the static partitioning at >= 7 contexts) is reported
    as a ``blocked`` result with 0 MB/s rather than an exception — that
    *is* the data point the paper plots.
    """
    if messages <= 0:
        raise ConfigError(f"messages must be positive, got {messages}")
    if message_bytes < 0:
        raise ConfigError(f"message_bytes must be >= 0, got {message_bytes}")

    def workload(ep: Endpoint):
        if ep.context.num_procs != 2:
            raise ConfigError("the bandwidth benchmark is a two-process application")
        lib = ep.library
        if ep.rank == 0:
            started = lib.sim.now
            try:
                for _ in range(messages):
                    yield from lib.send(1, message_bytes)
            except CreditError:
                return BandwidthResult(messages, message_bytes,
                                       started_at=started, finished_at=lib.sim.now,
                                       blocked=True)
            # Wait for the receiver's finish message, then stop the clock.
            yield from lib.extract_messages(1)
            return BandwidthResult(messages, message_bytes,
                                   started_at=started, finished_at=lib.sim.now)
        else:
            received = 0
            if ep.context.geometry.initial_credits == 0:
                return 0  # mirror of the sender's blocked path
            while received < messages:
                msg = yield from lib.extract()
                if msg is not None:
                    received += 1
            yield from lib.send(0, 1)  # the finish message
            return received

    return workload
