"""Benchmark applications that run *on* the simulated cluster.

- :mod:`~repro.workloads.bandwidth` — the paper's point-to-point
  bandwidth benchmark (Section 4.1): a sender/receiver pair with a
  finish message, "based on the bandwidth benchmark that comes as part
  of the FM distribution";
- :mod:`~repro.workloads.alltoall` — the all-to-all stress benchmark of
  Section 4.2, "that will stress the buffers during the test";
- :mod:`~repro.workloads.synthetic` — extra traffic patterns (ring,
  uniform-random, bursts) used by tests and ablations.
"""

from repro.workloads.alltoall import AllToAllStats, alltoall_benchmark, alltoall_stream
from repro.workloads.bandwidth import BandwidthResult, bandwidth_benchmark
from repro.workloads.latency import LatencyResult, pingpong_benchmark
from repro.workloads.synthetic import burst_benchmark, ring_benchmark, uniform_random_benchmark

__all__ = [
    "AllToAllStats",
    "BandwidthResult",
    "LatencyResult",
    "alltoall_benchmark",
    "alltoall_stream",
    "bandwidth_benchmark",
    "burst_benchmark",
    "pingpong_benchmark",
    "ring_benchmark",
    "uniform_random_benchmark",
]
