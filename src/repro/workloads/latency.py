"""Ping-pong latency benchmark.

The paper only reports bandwidth, but FM's claim to fame was its
short-message latency (~11 us one-way on this hardware generation), and
any user of this library will want the number.  Classic methodology:
rank 0 sends, rank 1 echoes, half the mean round-trip is the one-way
latency; warm-up iterations are excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fm.harness import Endpoint


@dataclass(frozen=True)
class LatencyResult:
    """Rank 0's measurement."""

    iterations: int
    message_bytes: int
    mean_rtt: float
    min_rtt: float
    max_rtt: float

    @property
    def one_way(self) -> float:
        """The usual half-round-trip estimator (seconds)."""
        return self.mean_rtt / 2


def pingpong_benchmark(iterations: int, message_bytes: int, warmup: int = 5):
    """Workload factory: rank 0 measures, rank 1 echoes."""
    if iterations <= 0:
        raise ConfigError(f"iterations must be positive, got {iterations}")
    if message_bytes < 0:
        raise ConfigError(f"message_bytes must be >= 0, got {message_bytes}")
    if warmup < 0:
        raise ConfigError(f"warmup must be >= 0, got {warmup}")

    def workload(ep: Endpoint):
        if ep.context.num_procs != 2:
            raise ConfigError("ping-pong is a two-process application")
        lib = ep.library
        total = warmup + iterations
        if ep.rank == 0:
            rtts = []
            for i in range(total):
                t0 = lib.sim.now
                yield from lib.send(1, message_bytes)
                yield from lib.extract_messages(1)
                if i >= warmup:
                    rtts.append(lib.sim.now - t0)
            return LatencyResult(
                iterations=iterations, message_bytes=message_bytes,
                mean_rtt=sum(rtts) / len(rtts),
                min_rtt=min(rtts), max_rtt=max(rtts),
            )
        for _ in range(total):
            yield from lib.extract_messages(1)
            yield from lib.send(0, message_bytes)
        return total

    return workload
