"""Post-processing of simulation output: schedule timelines and switch
breakdowns rendered as text."""

from repro.analysis.timeline import ScheduleTimeline, render_switch_breakdown

__all__ = ["ScheduleTimeline", "render_switch_breakdown"]
