"""Gang-schedule timelines from switch records.

``ScheduleTimeline`` reconstructs, per node, which slot occupied the
machine over time from the :class:`~repro.metrics.counters.SwitchRecord`
stream, and renders an ASCII Gantt chart — the visual sanity check that
the gang property holds (all nodes in the same slot at the same time,
switch windows excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.metrics.counters import SwitchRecord


@dataclass(frozen=True)
class Interval:
    """One stretch of one node's time: running a slot or switching."""

    start: float
    end: float
    slot: Optional[int]      # None while inside a context switch

    @property
    def duration(self) -> float:
        return self.end - self.start


class ScheduleTimeline:
    """Per-node slot occupancy reconstructed from switch records."""

    def __init__(self, records: Sequence[SwitchRecord], end_time: float,
                 initial_slot: int = 0):
        if end_time <= 0:
            raise ConfigError("end_time must be positive")
        self.end_time = end_time
        self._per_node: dict[int, list[Interval]] = {}
        by_node: dict[int, list[SwitchRecord]] = {}
        for rec in records:
            by_node.setdefault(rec.node_id, []).append(rec)
        for node_id, recs in by_node.items():
            recs.sort(key=lambda r: r.started_at)
            intervals = []
            cursor = 0.0
            slot = initial_slot
            for rec in recs:
                if rec.started_at > cursor:
                    intervals.append(Interval(cursor, rec.started_at, slot))
                switch_end = rec.started_at + rec.total_seconds
                intervals.append(Interval(rec.started_at,
                                          min(switch_end, end_time), None))
                cursor = switch_end
                slot = rec.new_slot
            if cursor < end_time:
                intervals.append(Interval(cursor, end_time, slot))
            self._per_node[node_id] = intervals

    @property
    def nodes(self) -> list[int]:
        return sorted(self._per_node)

    def intervals(self, node_id: int) -> list[Interval]:
        return list(self._per_node.get(node_id, []))

    def slot_at(self, node_id: int, time: float) -> Optional[int]:
        """Which slot node ``node_id`` ran at ``time`` (None = switching)."""
        for iv in self._per_node.get(node_id, []):
            if iv.start <= time < iv.end:
                return iv.slot
        return None

    def slot_share(self, node_id: int) -> dict[Optional[int], float]:
        """Fraction of the horizon each slot (or switching) consumed."""
        shares: dict[Optional[int], float] = {}
        for iv in self._per_node.get(node_id, []):
            shares[iv.slot] = shares.get(iv.slot, 0.0) + iv.duration
        return {k: v / self.end_time for k, v in shares.items()}

    def gang_violations(self, sample_points: int = 200) -> list[float]:
        """Instants where two nodes ran *different* slots simultaneously.

        Gang scheduling promises this never happens outside switch
        windows; an empty list is the expected result.
        """
        violations = []
        for i in range(sample_points):
            t = self.end_time * (i + 0.5) / sample_points
            slots = {self.slot_at(n, t) for n in self.nodes}
            slots.discard(None)  # switching nodes are indeterminate
            if len(slots) > 1:
                violations.append(t)
        return violations

    def render(self, width: int = 72) -> str:
        """ASCII Gantt: one row per node, one column per time bucket."""
        lines = [f"gang schedule, 0 .. {self.end_time * 1000:.1f} ms "
                 f"('.'=switching)"]
        for node_id in self.nodes:
            cells = []
            for i in range(width):
                t = self.end_time * (i + 0.5) / width
                slot = self.slot_at(node_id, t)
                cells.append("." if slot is None else str(slot)[-1])
            lines.append(f"node {node_id:>3} |{''.join(cells)}|")
        return "\n".join(lines)


def render_switch_breakdown(records: Sequence[SwitchRecord],
                            clock_hz: float = 200e6) -> str:
    """Per-switch-round stage table (the Figure 7/9 raw data, readable)."""
    if not records:
        return "no switches recorded"
    by_seq: dict[int, list[SwitchRecord]] = {}
    for rec in records:
        by_seq.setdefault(rec.sequence, []).append(rec)
    lines = ["round  nodes  halt[max cyc]  switch[max cyc]  release[max cyc]"]
    for seq in sorted(by_seq):
        recs = by_seq[seq]
        halt = max(int(r.halt_seconds * clock_hz) for r in recs)
        switch = max(int(r.switch_seconds * clock_hz) for r in recs)
        release = max(int(r.release_seconds * clock_hz) for r in recs)
        lines.append(f"{seq:>5}  {len(recs):>5}  {halt:>13,}  {switch:>15,}  "
                     f"{release:>16,}")
    return "\n".join(lines)
