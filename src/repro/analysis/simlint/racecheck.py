"""Dynamic buffer-ownership race detector for the gang-switch protocol.

The paper's buffer-swapping design rests on an ownership discipline:
between ``COMM_halt_network`` and ``COMM_release_network`` only the
*incoming* job's context may touch NIC SRAM send slots and pinned
receive buffers; a switched-out (STORED) context's queues are frozen —
their fingerprint in the :class:`~repro.gluefm.backing.BackingStore`
must still match at restore time.  This module checks that discipline
*dynamically*, Eraser/FastTrack-style, while a real chaos or fail-stop
simulation runs.

**Happens-before.**  The simulation is a sequential DES, so sim-time
execution order is a linear extension of the event-causality partial
order (event scheduling edges plus the switch barrier acks) — if access
A executes before access B in the run, B cannot happen-before A.  Each
node carries an **ownership epoch**, bumped at every halt and release
barrier (the points where buffer ownership may legally change hands).
Every monitored access is tagged ``(sim_time, node_epoch)`` and judged
against the owning context's state at that instant:

- ``stored-access`` — any queue mutation (append/pop/drain/load) on a
  context in ``STORED`` state.  Nothing may order such an access into
  the context's ownership window: the save barrier already happened and
  the restore barrier has not, so the access races with the fingerprint.
- ``halted-send`` — a send-queue dequeue while the node's halt bit is
  set.  The send context must stop on a packet boundary; a pickup
  inside the halt window races with the flush protocol.
- ``sram-stored`` — an SRAM descriptor corruption landing in a STORED
  context's send queue (the fault injector must only target installed
  contexts, like real bit flips only hit resident state).

**Zero-cost / bit-identical.**  Instrumentation is installed by
monkey-patching the queue / NIC / backing-store methods and removed on
uninstall, so disabled runs execute the original bytecode untouched.
The monitor only *reads* simulation state and appends to its own
records — it schedules no events and draws no randomness — so enabled
runs are bit-identical to disabled ones (pinned by
``tests/analysis/simlint/test_racecheck.py``).

Run it with ``python -m repro racecheck`` over the chaos / fail-stop
presets; ``--plant`` schedules a deliberate out-of-window access that
must be caught (the detector's own positive control).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.fm.context import ContextState, FMContext
from repro.fm.packet import Packet, PacketType
from repro.fm.queues import PacketQueue, SendQueue
from repro.gluefm.backing import BackingStore
from repro.hardware.nic import MyrinetNIC

#: Queue operations that remove packets (the firmware pickup side).
_POP_OPS = frozenset({"try_pop", "_pop", "drain_all"})
#: All monitored queue mutators.
_QUEUE_OPS = ("append", "try_pop", "_pop", "drain_all", "load_all")


@dataclass(frozen=True)
class RaceRecord:
    """One access observed outside its context's ownership window."""

    kind: str        # stored-access | halted-send | sram-stored
    time: float      # sim time of the access
    node_id: int
    job_id: int
    rank: int
    queue: str       # queue name, e.g. "sendq[j3r0]"
    op: str          # the mutator that fired
    epoch: int       # node ownership epoch at access time

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "time": self.time, "node_id": self.node_id,
            "job_id": self.job_id, "rank": self.rank, "queue": self.queue,
            "op": self.op, "epoch": self.epoch,
        }

    def render(self) -> str:
        return (f"RACE[{self.kind}] t={self.time:.6f} node={self.node_id} "
                f"job={self.job_id} rank={self.rank} {self.queue}.{self.op}() "
                f"epoch={self.epoch}")


#: The installed monitor, or None.  Module-global so the patched methods
#: can find it without closing over a particular instance.
_ACTIVE: Optional["BufferOwnershipMonitor"] = None


class BufferOwnershipMonitor:
    """Owner-epoch race detector over queues, NIC halt bits and backings.

    Use as a context manager (``with BufferOwnershipMonitor() as mon:``)
    or call :meth:`install` / :meth:`uninstall` explicitly.  Only one
    monitor may be installed at a time.

    ``plant_at`` schedules a deliberate single out-of-ownership-window
    access at that sim time — the positive control proving the detector
    is live.  ``plant_kind`` picks which race class the probe commits:

    - ``stored-access`` — append to a STORED context's send queue;
    - ``halted-send`` — dequeue from an ACTIVE context's send queue
      while its node's halt bit is raised.  Halt windows are far
      shorter than any polling interval and only the early switches are
      guaranteed to have an installed context, so this probe triggers
      from the first halt transition that has one, ignoring
      ``plant_at``;
    - ``sram-stored`` — flip a descriptor sitting in a STORED context's
      send queue.

    Every probe undoes its own mutation surgically (with queue
    signalling suppressed) so the run completes normally: the only
    observable effect is the one race report.
    """

    PLANT_KINDS = ("stored-access", "halted-send", "sram-stored")

    def __init__(self, plant_at: Optional[float] = None,
                 plant_kind: str = "stored-access"):
        if plant_kind not in self.PLANT_KINDS:
            raise SimulationError(
                f"unknown plant kind {plant_kind!r}; "
                f"expected one of {self.PLANT_KINDS}")
        self.races: list = []
        self.checked_ops = 0
        self.saves = 0
        self.restores = 0
        self.planted = 0
        self._contexts: list = []
        self._queue_owner: dict = {}   # id(queue) -> FMContext
        self._halted: dict = {}        # node_id -> bool
        self._epoch: dict = {}         # node_id -> ownership epoch
        self._nics: dict = {}          # node_id -> MyrinetNIC, seen at halts
        self._plant_at = plant_at
        self._plant_kind = plant_kind
        self._probe_scheduled = False
        self._busy = False             # reentrancy guard (load_all→append)
        self._originals: Optional[dict] = None

    # ------------------------------------------------------------ lifecycle
    def install(self) -> "BufferOwnershipMonitor":
        global _ACTIVE
        if _ACTIVE is not None:
            raise SimulationError("a BufferOwnershipMonitor is already installed")
        self._originals = {
            "ctx_init": FMContext.__init__,
            "set_halt": MyrinetNIC.set_halt_bit,
            "clear_halt": MyrinetNIC.clear_halt_bit,
            "corrupt": MyrinetNIC.corrupt_descriptor,
            "save": BackingStore.save,
            "restore": BackingStore.restore,
        }
        for op in _QUEUE_OPS:
            self._originals[f"q_{op}"] = getattr(PacketQueue, op)
        _ACTIVE = self
        self._apply_patches()
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        if _ACTIVE is not self:
            raise SimulationError("this monitor is not installed")
        originals = self._originals
        FMContext.__init__ = originals["ctx_init"]
        MyrinetNIC.set_halt_bit = originals["set_halt"]
        MyrinetNIC.clear_halt_bit = originals["clear_halt"]
        MyrinetNIC.corrupt_descriptor = originals["corrupt"]
        BackingStore.save = originals["save"]
        BackingStore.restore = originals["restore"]
        for op in _QUEUE_OPS:
            setattr(PacketQueue, op, originals[f"q_{op}"])
        self._originals = None
        _ACTIVE = None

    def __enter__(self) -> "BufferOwnershipMonitor":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------ patches
    def _apply_patches(self) -> None:
        originals = self._originals

        ctx_init = originals["ctx_init"]

        def patched_init(ctx_self, *args, **kwargs):
            ctx_init(ctx_self, *args, **kwargs)
            mon = _ACTIVE
            if mon is not None:
                mon._register_context(ctx_self)

        FMContext.__init__ = patched_init

        def make_queue_patch(op, original):
            def patched(queue_self, *args, **kwargs):
                mon = _ACTIVE
                if mon is None or mon._busy:
                    return original(queue_self, *args, **kwargs)
                mon._on_queue_op(queue_self, op)
                mon._busy = True
                try:
                    return original(queue_self, *args, **kwargs)
                finally:
                    mon._busy = False
            return patched

        for op in _QUEUE_OPS:
            setattr(PacketQueue, op, make_queue_patch(op, originals[f"q_{op}"]))

        set_halt = originals["set_halt"]
        clear_halt = originals["clear_halt"]

        def patched_set_halt(nic_self):
            mon = _ACTIVE
            if mon is not None:
                mon._nics[nic_self.node_id] = nic_self
                mon._on_halt_transition(nic_self.node_id, halted=True)
            return set_halt(nic_self)

        def patched_clear_halt(nic_self):
            mon = _ACTIVE
            if mon is not None:
                mon._nics[nic_self.node_id] = nic_self
                mon._on_halt_transition(nic_self.node_id, halted=False)
            return clear_halt(nic_self)

        MyrinetNIC.set_halt_bit = patched_set_halt
        MyrinetNIC.clear_halt_bit = patched_clear_halt

        corrupt = originals["corrupt"]

        def patched_corrupt(nic_self, packet):
            mon = _ACTIVE
            if mon is not None:
                mon._on_sram_corrupt(nic_self, packet)
            return corrupt(nic_self, packet)

        MyrinetNIC.corrupt_descriptor = patched_corrupt

        save = originals["save"]
        restore = originals["restore"]

        def patched_save(store_self, ctx):
            mon = _ACTIVE
            if mon is not None:
                mon.saves += 1
            return save(store_self, ctx)

        def patched_restore(store_self, ctx):
            mon = _ACTIVE
            if mon is not None:
                mon.restores += 1
            return restore(store_self, ctx)

        BackingStore.save = patched_save
        BackingStore.restore = patched_restore

    # ------------------------------------------------------------ callbacks
    def _register_context(self, ctx: FMContext) -> None:
        self._contexts.append(ctx)
        self._queue_owner[id(ctx.send_queue)] = ctx
        self._queue_owner[id(ctx.recv_queue)] = ctx
        if self._plant_at is not None and not self._probe_scheduled \
                and self._plant_kind != "halted-send":
            # halted-send triggers from the halt transition itself; the
            # two STORED-window kinds poll from a scheduled probe.
            self._probe_scheduled = True
            ctx.sim.process(self._probe(ctx.sim, self._plant_at))

    def _record(self, kind: str, ctx: FMContext, queue_name: str,
                op: str) -> None:
        self.races.append(RaceRecord(
            kind=kind, time=ctx.sim.now, node_id=ctx.node_id,
            job_id=ctx.job_id, rank=ctx.rank, queue=queue_name, op=op,
            epoch=self._epoch.get(ctx.node_id, 0)))

    def _on_queue_op(self, queue: PacketQueue, op: str) -> None:
        self.checked_ops += 1
        ctx = self._queue_owner.get(id(queue))
        if ctx is None:
            return  # queue outside any registered context (unit scaffolding)
        if ctx.state is ContextState.STORED:
            self._record("stored-access", ctx, queue.name, op)
        elif (op in _POP_OPS and isinstance(queue, SendQueue)
                and self._halted.get(ctx.node_id, False)):
            self._record("halted-send", ctx, queue.name, op)

    def _on_halt_transition(self, node_id: int, halted: bool) -> None:
        self._halted[node_id] = halted
        self._epoch[node_id] = self._epoch.get(node_id, 0) + 1
        if (halted and self._plant_at is not None and self.planted == 0
                and self._plant_kind == "halted-send"):
            self._plant_halted_send(node_id)

    def _on_sram_corrupt(self, nic: MyrinetNIC, packet) -> None:
        # Attribute the flipped descriptor to whichever registered send
        # queue currently holds the packet (identity, not equality).
        for ctx in self._contexts:
            if any(p is packet for p in ctx.send_queue._items):
                if ctx.state is ContextState.STORED:
                    self._record("sram-stored", ctx, ctx.send_queue.name,
                                 "corrupt_descriptor")
                return

    # ------------------------------------------------------------ planted probe
    def _probe(self, sim, plant_at: float):
        """Wait for ``plant_at``, then retry briefly until a STORED
        context (and, for ``sram-stored``, a seen NIC) is available and
        commit the configured out-of-window access."""
        yield plant_at
        for _ in range(200):
            stored = [c for c in self._contexts
                      if c.state is ContextState.STORED
                      and not c.send_queue.is_full]
            if stored and (self._plant_kind != "sram-stored"
                           or self._nics):
                break
            yield 0.0005
        else:
            raise SimulationError(
                "racecheck --plant: no stored context became available")
        ctx = min(stored, key=lambda c: (c.job_id, c.rank, c.node_id))
        if self._plant_kind == "sram-stored":
            self._plant_sram_stored(ctx)
        else:
            self._plant_stored_access(ctx)

    class _FrozenSignalling:
        """Suspend a queue's wake-ups while a probe mutates and undoes.

        Saves and empties the nonempty callbacks/waiters, pending
        getters, space waiters and the wait observer, and restores the
        peak-occupancy stat — the planted mutation must be invisible to
        the firmware, to blocked processes, and to the stats."""

        def __init__(self, queue):
            self.queue = queue

        def __enter__(self):
            q = self.queue
            self.saved = (q._nonempty_callbacks, q._nonempty_waiters,
                          q._getters, q._space_waiters, q.wait_observer,
                          q.peak_occupancy)
            q._nonempty_callbacks = []
            q._nonempty_waiters = deque()
            q._getters = deque()
            q._space_waiters = deque()
            q.wait_observer = None
            return self

        def __exit__(self, *exc):
            q = self.queue
            (q._nonempty_callbacks, q._nonempty_waiters, q._getters,
             q._space_waiters, q.wait_observer, q.peak_occupancy) = self.saved

    def _plant_stored_access(self, ctx: FMContext) -> None:
        """Append to a STORED context's send queue, then undo.

        The append goes through the *monitored* path — exactly the
        access the ownership protocol forbids — then the packet is
        removed again so the backing fingerprint still verifies."""
        queue = ctx.send_queue
        with self._FrozenSignalling(queue):
            packet = Packet(ptype=PacketType.DATA, src_node=ctx.node_id,
                            dst_node=ctx.node_id, job_id=ctx.job_id)
            queue.append(packet)   # <-- the monitored out-of-window access
            self.planted += 1
            queue._items.pop()
            queue.total_appended -= 1

    def _plant_sram_stored(self, ctx: FMContext) -> None:
        """Corrupt a descriptor parked in a STORED context's send queue.

        The dummy packet is slipped directly into the ring (bypassing
        the monitored ``append`` — this probe must trip only the SRAM
        check), the flip goes through the monitored
        ``corrupt_descriptor`` path, then both the packet and the NIC's
        fault counter are restored."""
        nic = self._nics.get(ctx.node_id) \
            or self._nics[min(self._nics)]
        queue = ctx.send_queue
        packet = Packet(ptype=PacketType.DATA, src_node=ctx.node_id,
                        dst_node=ctx.node_id, job_id=ctx.job_id)
        queue._items.append(packet)
        try:
            nic.corrupt_descriptor(packet)   # <-- the monitored flip
            self.planted += 1
        finally:
            queue._items.pop()
            nic.sram_faults -= 1

    def _plant_halted_send(self, node_id: int) -> None:
        """Dequeue from an ACTIVE send queue inside the halt window.

        Called from the halt transition itself (the only instant the
        window is provably open).  The monitor records the forbidden
        pickup before the underlying ``try_pop`` runs; if a packet
        actually came off, it is put back with signalling suppressed."""
        active = [c for c in self._contexts
                  if c.node_id == node_id
                  and c.state is ContextState.ACTIVE]
        if not active:
            return
        ctx = min(active, key=lambda c: (c.job_id, c.rank))
        queue = ctx.send_queue
        with self._FrozenSignalling(queue):
            packet = queue.try_pop()   # <-- the monitored halted pickup
            self.planted += 1
            if packet is not None:
                queue._items.appendleft(packet)
                queue.total_removed -= 1

    # ------------------------------------------------------------ report
    def report(self) -> dict:
        return {
            "races": [r.to_dict() for r in self.races],
            "race_count": len(self.races),
            "checked_ops": self.checked_ops,
            "contexts": len(self._contexts),
            "saves": self.saves,
            "restores": self.restores,
            "halt_epochs": sum(self._epoch.values()),
            "planted": self.planted,
        }


# ---------------------------------------------------------------------- runner
def preset_point(preset: str, seed: int = 0):
    """The chaos / fail-stop smoke configurations racecheck runs under.

    Mirrors the ``repro chaos --smoke`` presets: ``chaos`` exercises the
    full fault mix (drops, dups, corruption, jitter, SRAM flips, daemon
    stalls/crashes); ``failstop`` exercises node death, eviction,
    requeue and rejoin — the paths that page contexts in and out
    hardest.
    """
    from repro.faults.chaos import ChaosPoint

    if preset == "chaos":
        return ChaosPoint(seed=seed, nodes=4, time_slots=2, jobs=2,
                          quantum=0.004, rounds=10, message_bytes=1024,
                          drop=0.02, dup=0.01, corrupt=0.005, jitter=0.05,
                          sram=200.0, stall=0.05, crash=0.02)
    if preset == "failstop":
        return ChaosPoint(seed=seed, nodes=4, time_slots=2, jobs=2,
                          quantum=0.004, rounds=600, message_bytes=1024,
                          failstops=1, rejoin=True, requeue=True)
    raise SimulationError(f"unknown racecheck preset {preset!r}")


@dataclass
class RacecheckResult:
    """One monitored run: the chaos report plus the monitor's verdict."""

    preset: str
    seed: int
    plant: bool
    monitor: dict = field(default_factory=dict)
    run: dict = field(default_factory=dict)

    @property
    def race_count(self) -> int:
        return self.monitor.get("race_count", 0)

    def to_dict(self) -> dict:
        return {"preset": self.preset, "seed": self.seed,
                "plant": self.plant, "monitor": self.monitor,
                "run": self.run}


def run_racecheck(preset: str = "chaos", seed: int = 0,
                  plant: bool = False, plant_at: float = 0.006,
                  plant_kind: str = "stored-access") -> RacecheckResult:
    """Run one preset under the ownership monitor."""
    from repro.faults.chaos import run_chaos_point

    point = preset_point(preset, seed)
    monitor = BufferOwnershipMonitor(plant_at=plant_at if plant else None,
                                     plant_kind=plant_kind)
    with monitor:
        run_report = run_chaos_point(point)
    return RacecheckResult(preset=preset, seed=seed, plant=plant,
                           monitor=monitor.report(), run=run_report)


def run_racecheck_smoke(seed: int = 0) -> dict:
    """The CI gate: clean presets stay silent, the plant is caught,
    and monitoring leaves the experiment output bit-identical.

    Returns a JSON-ready summary with an overall ``"ok"`` verdict.
    """
    from repro.faults.chaos import run_chaos_point

    checks: list = []

    clean = {}
    for preset in ("chaos", "failstop"):
        result = run_racecheck(preset=preset, seed=seed)
        clean[preset] = result
        checks.append({
            "check": f"clean-{preset}",
            "ok": result.race_count == 0,
            "races": result.race_count,
            "checked_ops": result.monitor["checked_ops"],
        })

    # Positive controls: each race class must be caught exactly once
    # when deliberately committed.
    for kind in BufferOwnershipMonitor.PLANT_KINDS:
        planted = run_racecheck(preset="chaos", seed=seed, plant=True,
                                plant_kind=kind)
        checks.append({
            "check": f"planted-{kind}",
            "ok": (planted.monitor["planted"] == 1
                   and planted.race_count == 1
                   and planted.monitor["races"][0]["kind"] == kind),
            "races": planted.race_count,
            "planted": planted.monitor["planted"],
        })

    # Bit-identity: the monitored clean chaos run must match an
    # unmonitored run of the same point byte for byte.
    bare = run_chaos_point(preset_point("chaos", seed))
    identical = (json.dumps(bare, sort_keys=True)
                 == json.dumps(clean["chaos"].run, sort_keys=True))
    checks.append({"check": "bit-identical", "ok": identical})

    return {
        "seed": seed,
        "checks": checks,
        "ok": all(c["ok"] for c in checks),
        "runs": {preset: r.to_dict() for preset, r in clean.items()},
    }
