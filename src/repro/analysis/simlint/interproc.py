"""Interprocedural rules: SIM011–SIM014.

These are the whole-program half of the rule set.  SIM011/SIM012 consume
the taint and blocking closures of
:class:`~repro.analysis.simlint.project.ProjectIndex` — they exist
because one helper function defeats the per-file rules entirely
(``def now(): return time.time()`` launders the host clock past SIM001
at every call site).  SIM013/SIM014 are protocol-pairing rules: resource
acquired in one place must provably be released on the paths that
matter (span begin/end over the per-function CFG; strategy timers armed
in hooks versus cancellation reachable from teardown).

SIM011, SIM012 and SIM014 are ``scope = "project"`` rules: they read
``module.project`` and yield nothing when a module is linted standalone
(conservative under-approximation — no cross-module context, no
cross-module claims).  SIM013 is per-function and stays module-scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.simlint.cfg import SpanPathAnalysis
from repro.analysis.simlint.core import (
    Finding,
    ModuleUnderLint,
    Rule,
    register,
)
from repro.analysis.simlint.rules import _TRACE_METHODS  # noqa: F401
from repro.analysis.simlint.rules import _trace_receiver


def _render_chain(chain) -> str:
    return " -> ".join(chain)


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


# ------------------------------------------------------------------ SIM011
@register
class TaintedHelperCallRule(Rule):
    """Calling a helper whose return value carries a banned source.

    The chain in the message is the syntactic call path from the helper
    down to the source read, so the report is actionable without
    re-deriving the flow by hand::

        call of tainted helper now(): value derives from wall-clock via
        repro.util.now -> time.monotonic()
    """

    code = "SIM011"
    name = "tainted-helper-call"
    severity = "error"
    description = ("call site of a helper whose return value derives "
                   "from wall-clock/entropy/set-order through the call "
                   "graph — the laundered value breaks serial == -jN "
                   "bit-identity at this use")
    scope = "project"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        project = module.project
        if project is None:
            return
        taint = project.taint
        if not taint:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = project.resolve_call(module, node)
            if target is None or target not in taint:
                continue
            caller = project.function_at(module, node)
            if caller is not None and caller.qualname in taint:
                # A propagator returning the value is not a consumer:
                # its own call sites carry the (longer) chain.
                continue
            kind, chain = taint[target]
            yield self.finding(
                module, node,
                f"call of tainted helper {_short(target)}(): value "
                f"derives from {kind} via {_render_chain(chain)} — "
                f"thread sim time / the seeded RNG instead")


# ------------------------------------------------------------------ SIM012
@register
class BlockingReachableRule(Rule):
    """Blocking host call reachable from a sim-process generator.

    The interprocedural extension of SIM007: the generator itself looks
    clean, but a callee (transitively) blocks the host.  Direct blocking
    calls inside the generator stay SIM007's — this rule only fires on
    resolved project-internal calls whose target is in the blocking
    closure, so the two never double-report one site.
    """

    code = "SIM012"
    name = "blocking-call-reachable"
    severity = "error"
    description = ("project-internal call inside a sim-process "
                   "generator whose target (transitively) performs a "
                   "blocking host call — the stall hits every simulated "
                   "node, one frame removed from SIM007")
    scope = "project"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        project = module.project
        if project is None:
            return
        blocking = project.blocking
        if not blocking:
            return
        for qual, info in sorted(project.functions.items()):
            if info.module_name != module.module_name \
                    or not info.is_generator:
                continue
            for target in sorted(info.calls):
                if target not in blocking:
                    continue
                node = info.call_sites.get(target)
                if node is None:
                    continue
                chain = blocking[target]
                yield self.finding(
                    module, node,
                    f"blocking host call reachable from sim-process "
                    f"body: {_short(qual)} -> {_render_chain(chain)} — "
                    f"yield a simulated delay instead")


# ------------------------------------------------------------------ SIM013
@register
class SpanPairingRule(Rule):
    """A ``spans.begin()`` result must reach ``spans.end()`` on every
    non-exception path.

    An open span truncates the emitted stream and breaks the
    ``build_spans`` audits; re-binding a handle while a prior span is
    still open silently drops the first one.  Handles that escape the
    function (returned, stored in a container, passed to another call)
    transfer ownership and are not reported — see
    :mod:`repro.analysis.simlint.cfg` for the path semantics.
    """

    code = "SIM013"
    name = "span-begin-end-pairing"
    severity = "warning"
    description = ("a span handle from <tracer>.begin() has a "
                   "non-exception path to the function exit without "
                   "reaching <tracer>.end() (or is re-bound while "
                   "open) — open spans truncate the trace stream and "
                   "fail the build_spans audits")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            analysis = SpanPathAnalysis(fn, _is_span_begin, _is_span_end)
            for node, kind in analysis.leaks():
                if kind == "overwrite":
                    yield self.finding(
                        module, node,
                        "span handle re-bound while the previous span "
                        "is still open — the first span never ends")
                else:
                    yield self.finding(
                        module, node,
                        "span opened here can reach the function exit "
                        "without .end() on a non-exception path — "
                        "close it on every path or hand it off "
                        "explicitly")


def _is_span_begin(call: ast.Call) -> bool:
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "begin"
            and _trace_receiver(call.func))


def _is_span_end(call: ast.Call) -> bool:
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "end"
            and _trace_receiver(call.func))


# ------------------------------------------------------------------ SIM014
#: Strategy hooks that constitute teardown: a timer family with no
#: cancellation reachable from any of these is orphaned when the job is
#: forgotten or the peer dies.
_TEARDOWN_HOOKS = ("on_job_forgotten", "on_peer_dead", "on_power_off")


@register
class OrphanedStrategyTimerRule(Rule):
    """A strategy timer armed in a hook needs a teardown story.

    The static twin of the orphaned-timer matrix tests: for every class
    deriving from ``ReliabilityStrategy``, each ``start_timer(tag, …)``
    family (the leading string literal of the tag tuple) must either

    - have a matching ``cancel_timer`` reachable from a teardown hook
      (``on_job_forgotten`` / ``on_peer_dead`` / ``on_power_off``,
      resolved through inheritance and the call graph), or
    - be covered by a *stale-entry guard* in the effective ``on_timer``:
      the handler looks the entry up (``outstanding_entry``/lookup
      helper) and returns when it is gone, so a late firing is inert.

    Tags whose family is not a syntactic string literal are skipped —
    the rule under-approximates rather than guessing.
    """

    code = "SIM014"
    name = "orphaned-strategy-timer"
    severity = "error"
    description = ("ReliabilityStrategy timer family armed in a hook "
                   "with neither a cancel_timer reachable from "
                   "teardown (forget_job / dead peer / power_off) nor "
                   "a stale-entry guard in on_timer — the timer fires "
                   "into a forgotten job")
    scope = "project"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        project = module.project
        if project is None:
            return
        for cls in project.subclasses_of("ReliabilityStrategy"):
            if cls.module_name != module.module_name:
                continue
            yield from self._check_class(module, project, cls)

    def _check_class(self, module, project, cls) -> Iterator[Finding]:
        arms = []   # (family, call node, hook name) — own methods only
        for name, info in sorted(cls.methods.items()):
            for node in ast.walk(info.node):
                if _is_method_call(node, "start_timer"):
                    family = _tag_family(node.args[0]) if node.args else None
                    if family is not None:
                        arms.append((family, node, name))
        if not arms:
            return
        cancelled = self._teardown_cancel_families(project, cls)
        guarded = self._has_stale_guard(project, cls)
        for family, node, hook in arms:
            if family in cancelled or guarded:
                continue
            yield self.finding(
                module, node,
                f"timer family {family!r} armed in "
                f"{_short(cls.qualname)}.{hook} has no cancel_timer "
                f"reachable from teardown "
                f"({'/'.join(_TEARDOWN_HOOKS)}) and no stale-entry "
                f"guard in on_timer — it fires into a forgotten job")

    def _teardown_cancel_families(self, project, cls) -> set:
        """Tag families cancelled somewhere reachable from teardown."""
        roots = []
        for hook in _TEARDOWN_HOOKS:
            info = project.lookup_method(cls.qualname, hook)
            if info is not None:
                roots.append(info)
        reachable, queue = {}, list(roots)
        while queue:
            info = queue.pop()
            if info.qualname in reachable:
                continue
            reachable[info.qualname] = info
            for target in info.calls:
                nxt = project.functions.get(target)
                if nxt is not None:
                    queue.append(nxt)
        families: set = set()
        for info in reachable.values():
            for node in ast.walk(info.node):
                if _is_method_call(node, "cancel_timer") and node.args:
                    family = _tag_family(node.args[0])
                    if family is not None:
                        families.add(family)
        return families

    def _has_stale_guard(self, project, cls) -> bool:
        """The effective ``on_timer`` checks the outstanding entry and
        returns when it is gone (late firings are inert).

        Overrides that delegate with ``super().on_timer(tag)`` pass the
        check through to the next ``on_timer`` up the base chain — the
        cumulative/NACK family guards its inherited per-packet timers
        exactly this way.
        """
        info = project.lookup_method(cls.qualname, "on_timer")
        seen: set = set()
        while info is not None and info.qualname not in seen:
            seen.add(info.qualname)
            if _body_has_stale_guard(info.node):
                return True
            if not _calls_super(info.node, "on_timer"):
                return False
            info = _super_method(project, info.class_qualname, "on_timer")
        return False


def _body_has_stale_guard(fn) -> bool:
    """One ``on_timer`` body: looks the entry up, returns when gone."""
    looks_up = any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and ("outstanding" in node.func.attr
             or node.func.attr == "outstanding_entry")
        for node in ast.walk(fn))
    if not looks_up:
        return False
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if isinstance(test, ast.Compare) \
                and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.Is) \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None \
                and any(isinstance(s, ast.Return) for s in node.body):
            return True
    return False


def _calls_super(fn, method: str) -> bool:
    """Does ``fn`` contain a ``super().<method>(…)`` call?"""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"):
            return True
    return False


def _super_method(project, class_qualname, method: str):
    """The next definition of ``method`` above ``class_qualname``."""
    cls = project.classes.get(class_qualname)
    if cls is None:
        return None
    for base in cls.base_names:
        resolved = project.resolve_symbol(base)
        if resolved is None:
            continue
        found = project.lookup_method(resolved, method)
        if found is not None:
            return found
    return None


def _is_method_call(node, attr: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr)


def _tag_family(node) -> Optional[str]:
    """Leading string literal of a timer tag expression.

    ``("rto", seq)`` -> ``"rto"``; ``("cum",) + channel`` -> ``"cum"``
    (tuple-concat idiom); a bare string tag is its own family.  Anything
    else (a variable, a computed tag) returns None and the arm is
    skipped rather than guessed at.
    """
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _tag_family(node.left)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
