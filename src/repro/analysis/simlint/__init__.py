"""simlint: determinism & protocol-safety analysis for the reproduction.

Two tools live here:

- the **static analyser** — the :mod:`~repro.analysis.simlint.core`
  engine, the per-file rules SIM001–SIM010
  (:mod:`~repro.analysis.simlint.rules`) and the whole-program rules
  SIM011–SIM014 (:mod:`~repro.analysis.simlint.interproc`, backed by
  the :mod:`~repro.analysis.simlint.project` call-graph index and the
  :mod:`~repro.analysis.simlint.cfg` path walker), run via
  ``python -m repro lint``;
- the **dynamic buffer-ownership race detector**
  (:mod:`~repro.analysis.simlint.racecheck`), run via
  ``python -m repro racecheck``.

See ``RULES.md`` in this package for the rule catalogue and
EXPERIMENTS.md for workflow documentation.
"""

from repro.analysis.simlint.cache import (  # noqa: F401
    DEFAULT_CACHE_NAME,
    LintCache,
)
from repro.analysis.simlint.core import (  # noqa: F401
    Finding,
    LintResult,
    ModuleUnderLint,
    Rule,
    all_rules,
    lint_module,
    lint_paths,
    project_fingerprint,
    rules_inventory_hash,
)
from repro.analysis.simlint.project import (  # noqa: F401
    ProjectIndex,
    module_name_for,
)
from repro.analysis.simlint.report import (  # noqa: F401
    diff_against_baseline,
    load_baseline,
    render_baseline,
    render_json,
    render_text,
)
from repro.analysis.simlint.sarif import render_sarif  # noqa: F401

__all__ = [
    "DEFAULT_CACHE_NAME", "Finding", "LintCache", "LintResult",
    "ModuleUnderLint", "ProjectIndex", "Rule", "all_rules", "lint_module",
    "lint_paths", "module_name_for", "project_fingerprint",
    "rules_inventory_hash", "diff_against_baseline", "load_baseline",
    "render_baseline", "render_json", "render_sarif", "render_text",
]
