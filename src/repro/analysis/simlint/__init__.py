"""simlint: determinism & protocol-safety analysis for the reproduction.

Two tools live here:

- the **static analyser** (:mod:`~repro.analysis.simlint.core` engine +
  :mod:`~repro.analysis.simlint.rules` SIM001–SIM010), run via
  ``python -m repro lint``;
- the **dynamic buffer-ownership race detector**
  (:mod:`~repro.analysis.simlint.racecheck`), run via
  ``python -m repro racecheck``.

See ``RULES.md`` in this package for the rule catalogue and
EXPERIMENTS.md for workflow documentation.
"""

from repro.analysis.simlint.core import (  # noqa: F401
    Finding,
    LintResult,
    ModuleUnderLint,
    Rule,
    all_rules,
    lint_module,
    lint_paths,
)
from repro.analysis.simlint.report import (  # noqa: F401
    diff_against_baseline,
    load_baseline,
    render_baseline,
    render_json,
    render_text,
)

__all__ = [
    "Finding", "LintResult", "ModuleUnderLint", "Rule", "all_rules",
    "lint_module", "lint_paths", "diff_against_baseline", "load_baseline",
    "render_baseline", "render_json", "render_text",
]
