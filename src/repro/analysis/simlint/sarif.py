"""SARIF 2.1.0 exporter.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
platforms ingest to surface findings as inline code annotations.  This
renderer emits the minimal conforming document: ``version``/``$schema``
at the top, one run with the tool driver's rule catalogue, and one
``result`` per finding with ``ruleId``, ``level``, ``message.text`` and
a ``physicalLocation`` (1-based lines and columns — SARIF columns start
at 1 while :class:`~repro.analysis.simlint.core.Finding` columns are
0-based AST offsets).

Unparsable files are reported too, under the synthetic ``PARSE`` rule,
so a syntax error cannot silently shrink the report.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.simlint.core import LintResult, Rule, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Finding severity -> SARIF result level (identical today, mapped
#: explicitly so a future severity cannot leak through unvalidated).
_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(result: LintResult,
                 rules: Optional[Iterable[Rule]] = None) -> str:
    active = list(rules) if rules is not None else all_rules()
    catalogue = [_rule_entry(r) for r in
                 sorted(active, key=lambda r: r.code)]
    catalogue.append({
        "id": "PARSE",
        "name": "unparsable-file",
        "shortDescription": {"text": "file could not be parsed"},
        "fullDescription": {"text": "syntax or decode error — the file "
                                    "was not analysed at all"},
        "defaultConfiguration": {"level": "error"},
    })
    index = {entry["id"]: i for i, entry in enumerate(catalogue)}

    results = []
    for f in result.findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index.get(f.rule, -1),
            "level": _LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col + 1,
                        "endLine": f.last_line,
                    },
                },
            }],
        })
    for path, message in sorted(result.parse_errors):
        results.append({
            "ruleId": "PARSE",
            "ruleIndex": index["PARSE"],
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": 1, "startColumn": 1},
                },
            }],
        })

    doc = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "rules": catalogue,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"


def _rule_entry(rule: Rule) -> dict:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }
