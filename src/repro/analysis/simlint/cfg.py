"""A lightweight per-function path walker for protocol-pairing rules.

SIM013 needs an answer to "does this ``spans.begin()`` result reach a
``spans.end()`` on every non-exception path?" — a question about paths,
not occurrences, so a plain ``ast.walk`` cannot answer it.  This module
implements the smallest analysis that can: a statement-level symbolic
walk of one function body tracking, per local variable, whether a span
opened into it is still open.

Design points (all deliberate under-/over-approximations, chosen so the
*real tree's* idioms analyze exactly):

- **Paths, not a graph.**  Blocks are walked statement by statement
  carrying a set of live states; branches fork states, joins merge them
  with de-duplication, so the state count stays bounded by the number
  of distinct open-variable combinations, not by path count.
- **Guard correlation.**  The universal emission idiom is::

      if spans:
          h = spans.begin(...)
      ...
      if spans:
          spans.end(h)

  A path-insensitive walk would report the begin-then-skip-the-end
  path.  Instead, each open variable remembers the syntactic guard
  tests it was opened under; a later ``if`` with an identical test
  (by ``ast.dump``) is *correlated* — on its false branch the begin
  cannot have executed either, so the variable is dropped there rather
  than reported.  Guard expressions are assumed stable within one
  function body (true for ``if spans:`` — emitter truthiness never
  changes mid-run).
- **Escape closes.**  A span id that is returned, yielded, stored into
  an attribute/subscript, or passed to any call other than ``end()``
  has transferred ownership (``table[node] = spans.begin(...)`` in the
  recovery stats, ``parent=switch_span`` in noded) — tracking stops
  without a report.  Leak detection is deliberately limited to ids the
  function provably kept to itself.
- **Exception paths are exempt.**  ``raise`` terminates a path without
  a report (SIM013 reads "every non-exception path"), and ``except``
  handler bodies are analyzed only for their own begins, not as
  closers for the normal path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

#: Walk outcome kinds.
_FALL, _RETURN, _BREAK, _CONTINUE, _RAISE = range(5)


class OpenSpan:
    """One still-open begin: the node (for reporting) + its guards."""

    __slots__ = ("node", "guards")

    def __init__(self, node: ast.AST, guards: frozenset):
        self.node = node
        self.guards = guards


class SpanPathAnalysis:
    """Walk one function; collect begin nodes that can leak.

    ``is_begin(call)`` / ``is_end(call)`` classify calls (the rule
    supplies the receiver heuristics); ``leaks()`` yields
    ``(begin_node, kind)`` where kind is ``"path"`` (some non-exception
    path reaches the function exit with the span open) or
    ``"overwrite"`` (the variable was re-bound while still open).
    """

    def __init__(self, fn, is_begin, is_end):
        self.fn = fn
        self.is_begin = is_begin
        self.is_end = is_end
        self._leaks: dict = {}   # id(node) -> (node, kind)

    def leaks(self) -> Iterator:
        outcomes = self._walk_block(self.fn.body, {}, frozenset())
        for kind, state in outcomes:
            if kind in (_FALL, _RETURN):
                for span in state.values():
                    self._leaks.setdefault(id(span.node),
                                           (span.node, "path"))
        seen: set = set()
        for node, kind in self._leaks.values():
            if id(node) not in seen:
                seen.add(id(node))
                yield node, kind

    # --------------------------------------------------------------- blocks
    def _walk_block(self, stmts, state: dict, guards: frozenset):
        """Returns a list of (outcome-kind, state) pairs; ``state`` maps
        variable name -> OpenSpan."""
        live = [dict(state)]
        done: list = []
        for stmt in stmts:
            next_live: list = []
            for s in live:
                for kind, out in self._walk_stmt(stmt, s, guards):
                    if kind == _FALL:
                        next_live.append(out)
                    else:
                        done.append((kind, out))
            live = _dedupe(next_live)
            if not live:
                break
        done.extend((_FALL, s) for s in live)
        return done

    # ----------------------------------------------------------- statements
    def _walk_stmt(self, stmt, state: dict, guards: frozenset):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return [(_FALL, state)]   # nested scopes analyzed separately

        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_uses(stmt.value, state, closing=True)
            return [(_RETURN, state)]
        if isinstance(stmt, ast.Raise):
            return [(_RAISE, state)]
        if isinstance(stmt, ast.Break):
            return [(_BREAK, state)]
        if isinstance(stmt, ast.Continue):
            return [(_CONTINUE, state)]

        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, state, guards)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._walk_loop(stmt, state, guards)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, state, guards)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._escape_uses(item.context_expr, state, closing=True)
            return self._walk_block(stmt.body, state, guards)

        # -- simple statements ------------------------------------------
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call) \
                and self.is_begin(stmt.value):
            # Other tracked spans fed to this begin (``parent=outer``)
            # are handed off to the span tree — ownership transfers.
            self._escape_uses(stmt.value, state, closing=True)
            var = stmt.targets[0].id
            prior = state.get(var)
            if prior is not None:
                self._leaks.setdefault(id(prior.node),
                                       (prior.node, "overwrite"))
            state = dict(state)
            state[var] = OpenSpan(stmt.value, guards)
            return [(_FALL, state)]

        end_var = self._end_target(stmt)
        if end_var is not None:
            if end_var in state:
                state = dict(state)
                del state[end_var]
            return [(_FALL, state)]

        # Any other statement: span ids it *uses* escape tracking;
        # plain reads in comparisons/conditions do not count.
        self._escape_uses(stmt, state, closing=True)
        return [(_FALL, state)]

    def _walk_if(self, stmt: ast.If, state: dict, guards: frozenset):
        """Fork on an ``if``, correlating guards conjunct by conjunct.

        The compound close idiom ``if spans and h is not None:
        spans.end(h)`` must correlate with a begin guarded by ``if
        spans:`` alone — so an ``and`` test contributes each conjunct
        to the true branch's guard set, and a variable is dropped from
        the *false* branch when every conjunct is either one of its
        recorded begin guards (test false ⇒ begin never ran) or a
        non-None self-check on the variable itself (test false ⇒ the
        handle is None ⇒ the begin never produced one).
        """
        test = stmt.test
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            conjuncts = list(test.values)
        else:
            conjuncts = [test]
        keys = [_dump(c) for c in conjuncts]
        true_out = self._walk_block(stmt.body, state, guards | set(keys))
        false_state = {
            var: span for var, span in state.items()
            if not all(key in span.guards
                       or _is_self_check(conj, var)
                       for conj, key in zip(conjuncts, keys))
        }
        false_out = self._walk_block(stmt.orelse, false_state, guards)
        return true_out + false_out

    def _walk_loop(self, stmt, state: dict, guards: frozenset):
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._escape_uses(stmt.iter, state, closing=True)
        body_out = self._walk_block(stmt.body, state, guards)
        outcomes = []
        exit_states = [dict(state)]       # zero iterations
        for kind, out in body_out:
            if kind in (_FALL, _BREAK, _CONTINUE):
                exit_states.append(out)   # one-iteration approximation
            else:
                outcomes.append((kind, out))
        else_block = getattr(stmt, "orelse", None) or []
        for s in _dedupe(exit_states):
            if else_block:
                outcomes.extend(self._walk_block(else_block, s, guards))
            else:
                outcomes.append((_FALL, s))
        return outcomes

    def _walk_try(self, stmt: ast.Try, state: dict, guards: frozenset):
        body_out = self._walk_block(stmt.body, state, guards)
        # Handler bodies are exception paths: walk them only so begins
        # inside are tracked for their own leaks, discard the outcomes.
        for handler in stmt.handlers:
            self._walk_block(handler.body, dict(state), guards)
        outcomes = []
        for kind, out in body_out:
            if kind == _FALL and stmt.orelse:
                for ekind, eout in self._walk_block(stmt.orelse, out,
                                                    guards):
                    outcomes.append((ekind, eout))
            else:
                outcomes.append((kind, out))
        if not stmt.finalbody:
            return outcomes
        final = []
        for kind, out in outcomes:
            for fkind, fout in self._walk_block(stmt.finalbody, out,
                                                guards):
                final.append((kind if fkind == _FALL else fkind, fout))
        return final

    # -------------------------------------------------------------- helpers
    def _end_target(self, stmt) -> Optional[str]:
        """Variable closed by a statement-level ``<recv>.end(var, ...)``."""
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and self.is_end(stmt.value)):
            return None
        call = stmt.value
        if call.args and isinstance(call.args[0], ast.Name):
            return call.args[0].id
        return None

    def _escape_uses(self, node, state: dict, closing: bool) -> None:
        """Drop tracking for span vars that escape through ``node``.

        Uses inside a correlated ``end()`` call are not escapes (they
        are the close); uses inside comparisons/boolean tests are plain
        reads and keep tracking (``if spans and h is not None:``).
        """
        if not state:
            return
        escaped: set = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                if self.is_end(sub):
                    continue
                for arg in list(sub.args) + [k.value for k in sub.keywords]:
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Name) \
                                and inner.id in state:
                            escaped.add(inner.id)
            elif isinstance(sub, (ast.Assign, ast.AugAssign,
                                  ast.AnnAssign)):
                value = getattr(sub, "value", None)
                targets = getattr(sub, "targets", None) \
                    or [getattr(sub, "target", None)]
                if value is not None and any(
                        not isinstance(t, ast.Name) for t in targets if t):
                    for inner in ast.walk(value):
                        if isinstance(inner, ast.Name) \
                                and inner.id in state:
                            escaped.add(inner.id)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)) \
                    and sub.value is not None:
                for inner in ast.walk(sub.value):
                    if isinstance(inner, ast.Name) and inner.id in state:
                        escaped.add(inner.id)
            elif isinstance(sub, ast.Return) and sub.value is not None:
                for inner in ast.walk(sub.value):
                    if isinstance(inner, ast.Name) and inner.id in state:
                        escaped.add(inner.id)
        for var in sorted(escaped):
            del state[var]


def _is_self_check(test, var: str) -> bool:
    """Is ``test`` a truthiness/non-None check of ``var`` itself?

    Matches ``var``, ``var is not None`` and ``var != None`` — the
    conjunct forms of the compound close guard.  When such a test is
    false the handle is None, which (handles being non-None by
    construction) means the begin never executed on this path.
    """
    if isinstance(test, ast.Name):
        return test.id == var
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.left, ast.Name) and test.left.id == var \
            and isinstance(test.ops[0], (ast.IsNot, ast.NotEq)) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        return True
    return False


def _dedupe(states: list) -> list:
    seen: set = set()
    out = []
    for s in states:
        key = frozenset(s)
        if key not in seen:
            seen.add(key)
            out.append(s)
    return out


def _dump(node) -> str:
    try:
        return ast.dump(node)
    except Exception:            # pragma: no cover - malformed test node
        return repr(node)
