"""Cross-run result cache for the lint driver.

One JSON file (default ``.simlint_cache.json`` at the repo root) maps
each linted file to its findings, keyed so stale reuse is impossible:

- **module-scope** results are valid while the file's content sha and
  the rule-inventory hash both match — editing any *other* file cannot
  change them;
- **project-scope** results additionally carry the whole-tree
  fingerprint (every file's sha + the rules hash): a helper edited in
  one module can change taint for call sites in another, so any edit
  anywhere invalidates every project-scope entry while the module-scope
  ones survive;
- changing the rule inventory (add/remove/re-scope/re-severity) changes
  the inventory hash and drops the entire cache in one shot.

Findings round-trip through :meth:`Finding.to_dict`; the cache stores
*unsuppressed* findings exactly as the driver would emit them, so a
full-tree warm hit needs no parsing at all.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.analysis.simlint.core import Finding

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".simlint_cache.json"


class LintCache:
    """Findings keyed by (file sha, rules hash[, tree fingerprint])."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self.dirty = False
        self._rules_hash: Optional[str] = None
        self._files: dict = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("version") != CACHE_VERSION:
            return
        self._rules_hash = data.get("rules_hash")
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    # ------------------------------------------------------------- lookups
    def _entry(self, rel: str, sha: str, rules_hash: str):
        if rules_hash != self._rules_hash:
            return None
        entry = self._files.get(rel)
        if entry is None or entry.get("sha") != sha:
            return None
        return entry

    def lookup_full(self, path, rel: str, sha: str, rules_hash: str,
                    fingerprint: str):
        """``(error, local, project)`` if *everything* for this file is
        current — used by the all-hit fast path — else None."""
        entry = self._entry(rel, sha, rules_hash)
        if entry is None:
            return None
        if entry.get("error") is not None:
            return (entry["error"], [], [])
        if entry.get("fingerprint") != fingerprint:
            return None
        return (None, _revive(entry.get("local", [])),
                _revive(entry.get("project", [])))

    def lookup_local(self, path, rel: str, sha: str, rules_hash: str):
        entry = self._entry(rel, sha, rules_hash)
        if entry is None or entry.get("error") is not None:
            return None
        return _revive(entry.get("local", []))

    def lookup_project(self, path, rel: str, sha: str, fingerprint: str):
        entry = self._files.get(rel)
        if entry is None or entry.get("sha") != sha \
                or entry.get("error") is not None \
                or entry.get("fingerprint") != fingerprint:
            return None
        return _revive(entry.get("project", []))

    # -------------------------------------------------------------- stores
    def _reset_for(self, rules_hash: str) -> None:
        if rules_hash != self._rules_hash:
            self._rules_hash = rules_hash
            self._files = {}
            self.dirty = True

    def store(self, path, rel: str, sha: str, rules_hash: str,
              fingerprint: str, local, project) -> None:
        self._reset_for(rules_hash)
        self._files[rel] = {
            "sha": sha,
            "error": None,
            "fingerprint": fingerprint,
            "local": [f.to_dict() for f in local],
            "project": [f.to_dict() for f in project],
        }
        self.dirty = True

    def store_error(self, path, rel: str, sha: str, rules_hash: str,
                    message: str) -> None:
        self._reset_for(rules_hash)
        self._files[rel] = {"sha": sha, "error": message}
        self.dirty = True

    # ----------------------------------------------------------- lifecycle
    def save(self) -> None:
        """Atomic write; a torn cache file must never be readable."""
        if not self.dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "rules_hash": self._rules_hash,
            "files": self._files,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.path)
        self.dirty = False

    def __len__(self) -> int:
        return len(self._files)


def _revive(dicts) -> list:
    out = []
    for d in dicts:
        out.append(Finding(path=d["path"], line=d["line"], col=d["col"],
                           rule=d["rule"], severity=d["severity"],
                           message=d["message"],
                           end_line=d.get("end_line", 0)))
    return out
