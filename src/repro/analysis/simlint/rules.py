"""The simlint rule catalogue (SIM001–SIM010).

Each rule is a small :class:`~repro.analysis.simlint.core.Rule` subclass
registered at import time.  See ``RULES.md`` in this package for the
human-facing catalogue with rationale and near-miss examples; the short
form:

==========  ========  =====================================================
code        severity  what it catches
==========  ========  =====================================================
SIM001      error     wall-clock reads (``time.time``, ``datetime.now``, …)
SIM002      error     unseeded randomness outside ``sim/rand.py``
SIM003      warning   iteration over a ``set`` in order-sensitive position
SIM004      warning   ``id()`` feeding sort keys, hashes, or sets
SIM005      warning   float accumulation over an unordered set
SIM006      error     ``yield`` of a raw negative / NaN delay in a process
SIM007      error     blocking host call inside a sim-process generator
SIM008      warning   side effects inside trace/span emission arguments
SIM009      warning   environment/argv access outside the CLI layer
SIM010      error     process entropy (``os.getpid``, ``uuid4``, ``hash()``)
==========  ========  =====================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.simlint.core import (
    Finding,
    ModuleUnderLint,
    Rule,
    is_set_expr,
    register,
)

# ------------------------------------------------------------------ SIM001
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRule(Rule):
    """Wall-clock reads make two runs of the same seed disagree."""

    code = "SIM001"
    name = "wall-clock"
    severity = "error"
    description = ("ban time.time/monotonic/perf_counter/process_time and "
                   "datetime.now/utcnow/today — sim time comes from the "
                   "Simulator clock, never the host")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    f"wall-clock call {name}() — use the Simulator clock "
                    f"(sim.now) so runs replay bit-identically")


# ------------------------------------------------------------------ SIM002
_RNG_CLASSES = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
})


@register
class UnseededRandomRule(Rule):
    """All randomness must flow through the named-substream registry."""

    code = "SIM002"
    name = "unseeded-random"
    severity = "error"
    description = ("ban stdlib random and numpy global-RNG calls outside "
                   "sim/rand.py; np.random.default_rng() must get an "
                   "explicit seed")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.path.endswith("sim/rand.py"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random":
                        yield self.finding(
                            module, node,
                            "import of stdlib random — use "
                            "repro.sim.rand.RandomStreams named substreams")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "import from stdlib random — use "
                        "repro.sim.rand.RandomStreams named substreams")
            elif isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name is None:
                    continue
                if name.split(".")[0] == "random":
                    yield self.finding(
                        module, node,
                        f"unseeded stdlib {name}() — draw from a named "
                        f"RandomStreams substream instead")
                elif name.startswith("numpy.random."):
                    tail = name[len("numpy.random."):]
                    if tail == "default_rng":
                        if not node.args and not node.keywords:
                            yield self.finding(
                                module, node,
                                "numpy.random.default_rng() without a seed "
                                "— pass an explicit seed or use "
                                "RandomStreams")
                    elif tail not in _RNG_CLASSES:
                        yield self.finding(
                            module, node,
                            f"numpy global-RNG call {name}() — global "
                            f"numpy RNG state is shared and unseeded; use "
                            f"RandomStreams")


# ------------------------------------------------------------------ SIM003
#: Order-insensitive consumers: iterating a set into these is safe.
_ORDER_FREE_SINKS = frozenset({
    "sorted", "min", "max", "any", "all", "len", "set", "frozenset",
})
_MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})


def _comprehension_sink(module: ModuleUnderLint,
                        comp: ast.AST) -> Optional[str]:
    """Name of the call a comprehension feeds directly into, if any."""
    call = module.enclosing_call(comp)
    if call is None or comp not in call.args:
        return None
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _element_is_int_constant(comp: ast.AST) -> bool:
    elt = getattr(comp, "elt", None)
    return (isinstance(elt, ast.Constant) and isinstance(elt.value, int)
            and not isinstance(elt.value, bool))


@register
class SetIterationRule(Rule):
    """Set iteration order is arbitrary; dicts are insertion-ordered."""

    code = "SIM003"
    name = "set-iteration"
    severity = "warning"
    description = ("iterating a set in an order-sensitive position "
                   "(for-loop bodies, list()/tuple()/enumerate(), or "
                   "comprehensions not feeding an order-free reducer) — "
                   "sort first or use an insertion-ordered dict")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        attrs = module.set_typed_attrs
        names = module.set_typed_names
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if is_set_expr(node.iter, attrs, names):
                    yield self.finding(
                        module, node.iter,
                        "for-loop over a set — iteration order is "
                        "arbitrary; iterate sorted(...) or keep an "
                        "insertion-ordered dict")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                if not any(is_set_expr(g.iter, attrs, names)
                           for g in node.generators):
                    continue
                sink = _comprehension_sink(module, node)
                if sink in _ORDER_FREE_SINKS:
                    continue
                if sink == "sum" and _element_is_int_constant(node):
                    continue  # counting is order-free
                yield self.finding(
                    module, node,
                    "comprehension over a set feeding an order-sensitive "
                    "consumer — sort the set or reduce order-free "
                    "(sorted/min/max/any/all/len or an integer count)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _MATERIALIZERS \
                    and node.args and is_set_expr(node.args[0], attrs, names):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() over a set materialises an "
                    f"arbitrary order — use sorted(...)")


# ------------------------------------------------------------------ SIM004
@register
class IdOrderRule(Rule):
    """id() values vary run to run; ordering or hashing them is chaos."""

    code = "SIM004"
    name = "id-order"
    severity = "warning"
    description = ("id() inside a sort key, a hash() call, or a set — "
                   "object addresses differ across runs; key on a stable "
                   "field instead")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and node.func.id not in module.aliases):
                continue
            cur = module.parents.get(node)
            while cur is not None:
                if isinstance(cur, ast.keyword) and cur.arg == "key":
                    yield self.finding(
                        module, node,
                        "id() inside a sort key — object addresses are "
                        "not stable across runs; key on a stable field")
                    break
                if isinstance(cur, ast.Set):
                    yield self.finding(
                        module, node,
                        "id() inside a set — address-derived members make "
                        "iteration order run-dependent")
                    break
                if isinstance(cur, ast.Call) \
                        and isinstance(cur.func, ast.Name) \
                        and cur.func.id in ("hash", "set", "frozenset"):
                    yield self.finding(
                        module, node,
                        f"id() flowing into {cur.func.id}() — object "
                        f"addresses are not stable across runs")
                    break
                if isinstance(cur, ast.stmt):
                    break  # statement boundary: no ordering sink above
                cur = module.parents.get(cur)


# ------------------------------------------------------------------ SIM005
@register
class FloatSetAccumulationRule(Rule):
    """Float addition is not associative; set order varies — so sums do."""

    code = "SIM005"
    name = "float-set-accumulation"
    severity = "warning"
    description = ("sum() over a set (or a comprehension over one) whose "
                   "elements are not integer counts — float rounding is "
                   "order-dependent; sum over sorted(...)")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        attrs = module.set_typed_attrs
        names = module.set_typed_names
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args):
                continue
            arg = node.args[0]
            if is_set_expr(arg, attrs, names):
                yield self.finding(
                    module, node,
                    "sum() directly over a set — float accumulation order "
                    "is arbitrary; sum over sorted(...)")
            elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)) \
                    and any(is_set_expr(g.iter, attrs, names)
                            for g in arg.generators) \
                    and not _element_is_int_constant(arg):
                yield self.finding(
                    module, node,
                    "sum() of non-count elements drawn from a set — "
                    "float accumulation order is arbitrary; iterate "
                    "sorted(...)")


# ------------------------------------------------------------------ SIM006
def _negative_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float)))


def _nan_or_inf_literal(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float" and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower().lstrip("+-")
            in ("nan", "inf", "infinity"))


@register
class RawDelayRule(Rule):
    """Sim processes yield delays; negative or NaN delays corrupt time."""

    code = "SIM006"
    name = "raw-delay"
    severity = "error"
    description = ("yield of a literal negative or NaN/inf delay inside a "
                   "sim-process generator — the event queue requires "
                   "finite non-negative delays")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        gen_ids = set(map(id, module.generator_bodies))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            fn = module.enclosing_function(node)
            if fn is None or id(fn) not in gen_ids:
                continue
            if _negative_number(node.value):
                yield self.finding(
                    module, node,
                    "yield of a negative delay — the simulator rejects "
                    "time travel; clamp to max(0.0, delay)")
            elif _nan_or_inf_literal(node.value):
                yield self.finding(
                    module, node,
                    "yield of a NaN/inf delay — non-finite delays wedge "
                    "the event queue")


# ------------------------------------------------------------------ SIM007
_BLOCKING_EXACT = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "os.waitpid",
    "urllib.request.urlopen", "input", "breakpoint",
})
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "http.client.")


@register
class BlockingHostCallRule(Rule):
    """A sim process that blocks the host stalls every simulated node."""

    code = "SIM007"
    name = "blocking-host-call"
    severity = "error"
    description = ("blocking host call (time.sleep, subprocess, sockets, "
                   "input, …) inside a sim-process generator — model the "
                   "latency with a yielded delay instead")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        generators = module.generator_bodies
        if not generators:
            return
        gen_ids = set(map(id, generators))
        for fn in generators:
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                owner = module.enclosing_function(node)
                if owner is None or id(owner) not in gen_ids:
                    continue
                name = module.resolve(node.func)
                if name is None:
                    continue
                if name in _BLOCKING_EXACT or \
                        name.startswith(_BLOCKING_PREFIXES):
                    yield self.finding(
                        module, node,
                        f"blocking host call {name}() inside a sim-process "
                        f"body — yield a simulated delay instead")


# ------------------------------------------------------------------ SIM008
_TRACE_METHODS = frozenset({"record", "begin", "end"})
_MUTATORS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popleft", "remove",
    "discard", "clear", "extend", "insert", "setdefault", "inc", "dec",
    "set", "observe", "sample", "put", "push", "send", "write",
})


def _trace_receiver(func: ast.Attribute) -> bool:
    recv = func.value
    name = None
    if isinstance(recv, ast.Attribute):
        name = recv.attr
    elif isinstance(recv, ast.Name):
        name = recv.id
    if name is None:
        return False
    low = name.lower()
    return "trace" in low or low in ("spans", "span", "emitter")


@register
class TraceSideEffectRule(Rule):
    """Trace emission vanishes when telemetry is off — it must be pure."""

    code = "SIM008"
    name = "trace-side-effect"
    severity = "warning"
    description = ("mutating call or walrus assignment inside the "
                   "arguments of tracer.record/spans.begin/spans.end — "
                   "emission is skipped when telemetry is off, so side "
                   "effects there break on==off bit-identity")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TRACE_METHODS
                    and _trace_receiver(node.func)):
                continue
            for arg in list(node.args) + [k.value for k in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.NamedExpr):
                        yield self.finding(
                            module, sub,
                            "walrus assignment inside trace emission "
                            "arguments — the binding disappears when "
                            "telemetry is off")
                    elif isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Attribute) \
                            and sub.func.attr in _MUTATORS:
                        yield self.finding(
                            module, sub,
                            f".{sub.func.attr}() inside trace emission "
                            f"arguments — emission must be side-effect "
                            f"free (compute before the guard)")


# ------------------------------------------------------------------ SIM009
_CLI_BASENAMES = ("cli.py", "__main__.py")


@register
class EnvAccessRule(Rule):
    """Environment and argv reads belong in the CLI layer only."""

    code = "SIM009"
    name = "env-access"
    severity = "warning"
    description = ("os.environ / os.getenv / sys.argv outside cli.py or "
                   "__main__.py — ambient host state makes library code "
                   "machine-dependent; thread configuration explicitly")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.path.endswith(_CLI_BASENAMES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = module.resolve(node)
                if name in ("os.environ", "sys.argv"):
                    yield self.finding(
                        module, node,
                        f"{name} access outside the CLI layer — pass "
                        f"configuration explicitly")
            elif isinstance(node, ast.Call):
                if module.resolve(node.func) == "os.getenv":
                    yield self.finding(
                        module, node,
                        "os.getenv() outside the CLI layer — pass "
                        "configuration explicitly")


# ------------------------------------------------------------------ SIM010
_ENTROPY = frozenset({
    "os.getpid", "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})


@register
class ProcessEntropyRule(Rule):
    """PIDs, urandom, uuid4 and hash() differ per process — banned."""

    code = "SIM010"
    name = "process-entropy"
    severity = "error"
    description = ("os.getpid/os.urandom/uuid1/uuid4/secrets/builtin "
                   "hash() — per-process entropy breaks serial == -jN "
                   "bit-identity; derive identifiers from seeds or "
                   "hashlib.sha256")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            if name in _ENTROPY or name.startswith("secrets."):
                yield self.finding(
                    module, node,
                    f"{name}() is per-process entropy — derive from the "
                    f"experiment seed (hashlib.sha256) instead")
            elif name == "hash" and "hash" not in module.aliases:
                yield self.finding(
                    module, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED) — use hashlib.sha256 for stable "
                    "digests")
