"""Whole-program context for simlint: symbol table, call graph, taint.

The per-file rules (SIM001–SIM010) are defeated by one indirection:
``def now(): return time.time()`` in a helper module is flagged *at the
read* (SIM001 in the helper), but nothing connects a model-code call of
``now()`` back to the host clock — and once the read carries a pragma
(``sim/bench.py`` measures wall time by design), its callers inherit a
laundered determinism leak that no rule sees.  This module is the
cross-module half of the analyzer:

- **Pass one** builds a *module-qualified symbol table* over every
  parsed file: functions and methods under dotted qualified names
  (``repro.fm.queues.PacketQueue.append``), class base lists, and
  re-export edges (``from x.y import f`` in ``pkg/__init__.py`` maps
  ``pkg.f`` to ``x.y.f``).
- **Pass two** derives a *conservative call graph*: for every function
  body, each syntactically resolvable call target (local function,
  imported name through the alias map, ``self.method()`` through the
  class and its project-resolved bases) becomes an edge.  Unresolvable
  targets (arbitrary attribute chains, dynamic dispatch) contribute no
  edge — the analysis under-approximates reachability rather than
  inventing it, so every reported chain is a real syntactic path.
- **Taint closures** label functions whose *return value* carries a
  banned source transitively: wall-clock reads (SIM001's table),
  process entropy (SIM010's), or materialised set-iteration order
  (SIM003's concern).  A source read that carries its own suppression
  pragma does not taint — the pragma's justification covers the value's
  downstream use, exactly like the documented ``sim/bench.py`` sites.
- **Blocking closures** label functions that (transitively) perform a
  blocking host call (SIM007's table), so SIM012 can flag a generator
  that reaches ``time.sleep`` two frames down.

Everything here is stdlib ``ast`` over the already-parsed
:class:`~repro.analysis.simlint.core.ModuleUnderLint` trees; building
the index costs one linear walk per module plus fixpoint closures over
the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Taint kinds, in the order chains are reported.
TAINT_WALL_CLOCK = "wall-clock"
TAINT_ENTROPY = "process-entropy"
TAINT_SET_ORDER = "set-order"


@dataclass
class FunctionInfo:
    """One function or method, module-qualified."""

    qualname: str                 # "pkg.mod.func" / "pkg.mod.Class.method"
    module_name: str              # "pkg.mod"
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    class_qualname: Optional[str] = None   # owning class, if a method
    is_generator: bool = False
    #: resolved project-internal call targets (qualified names)
    calls: set = field(default_factory=set)
    #: unresolved dotted external targets ("time.sleep", "numpy.zeros")
    external_calls: set = field(default_factory=set)
    #: call node per resolved internal target (first site wins), for
    #: precise finding locations
    call_sites: dict = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class: bases as written plus project-resolved base qualnames."""

    qualname: str
    module_name: str
    node: ast.ClassDef
    base_names: list = field(default_factory=list)   # resolved dotted names
    methods: dict = field(default_factory=dict)      # name -> FunctionInfo


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/fm/queues.py`` -> ``repro.fm.queues`` (the ``src``
    layout prefix is dropped so names match import statements);
    ``tests/helpers.py`` -> ``tests.helpers``; ``pkg/__init__.py`` ->
    ``pkg``.
    """
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProjectIndex:
    """Symbol table + call graph + taint closures over one lint run."""

    def __init__(self, modules: Iterable):
        self.modules = list(modules)          # ModuleUnderLint objects
        self.by_module_name: dict = {}
        self.functions: dict = {}             # qualname -> FunctionInfo
        self.classes: dict = {}               # qualname -> ClassInfo
        self.reexports: dict = {}             # "pkg.Name" -> "pkg.mod.Name"
        self._taint: Optional[dict] = None    # qualname -> (kind, source)
        self._blocking: Optional[dict] = None # qualname -> source call name
        for module in self.modules:
            module.module_name = module_name_for(module.path)
            self.by_module_name[module.module_name] = module
        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._link_calls(module)

    def attach(self) -> "ProjectIndex":
        """Point every module at this index (pass-two context)."""
        for module in self.modules:
            module.project = self
        return self

    # ------------------------------------------------------------- pass one
    def _index_module(self, module) -> None:
        modname = module.module_name
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, f"{modname}.{node.name}")
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node, f"{modname}.{node.name}")
            elif isinstance(node, ast.ImportFrom):
                source = self._import_source(module, node)
                if source is None:
                    continue
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    self.reexports[f"{modname}.{local}"] = \
                        f"{source}.{item.name}"

    def _import_source(self, module, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted source module of a (possibly relative) import."""
        if node.level == 0:
            return node.module
        base = module.module_name.split(".")
        if not module.path.endswith("__init__.py"):
            base = base[:-1]
        cut = node.level - 1
        if cut:
            base = base[:-cut] if cut <= len(base) else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _add_function(self, module, node, qualname,
                      class_qualname: Optional[str] = None) -> None:
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, module_name=module.module_name, node=node,
            class_qualname=class_qualname,
            is_generator=_is_generator(node))

    def _add_class(self, module, node: ast.ClassDef, qualname: str) -> None:
        info = ClassInfo(qualname=qualname, module_name=module.module_name,
                         node=node)
        for base in node.bases:
            name = module.resolve(base)
            if name is not None:
                info.base_names.append(self.resolve_symbol(name) or name)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{child.name}"
                self._add_function(module, child, method_qual,
                                   class_qualname=qualname)
                info.methods[child.name] = self.functions[method_qual]
        self.classes[qualname] = info

    # ----------------------------------------------------------- resolution
    def resolve_symbol(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Canonical qualified name for ``dotted``, chasing re-exports.

        Returns a key of :attr:`functions` or :attr:`classes`, or None
        when the name does not resolve inside the project.
        """
        if _depth > 8:     # re-export cycle guard
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.reexports:
            return self.resolve_symbol(self.reexports[dotted], _depth + 1)
        # "pkg.mod.Class.method" where "pkg.mod.Class" needs resolving
        # (e.g. through a re-export) one level up.
        if "." in dotted:
            head, _, tail = dotted.rpartition(".")
            resolved_head = self.resolve_symbol(head, _depth + 1)
            if resolved_head is not None and resolved_head != head:
                return self.resolve_symbol(f"{resolved_head}.{tail}",
                                           _depth + 1)
        return None

    def resolve_call(self, module, call: ast.Call) -> Optional[str]:
        """Project-internal qualified target of ``call``, or None."""
        func = call.func
        # self.method() -> look it up on the enclosing class + bases.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            owner = self._enclosing_class_qualname(module, call)
            if owner is not None:
                found = self.lookup_method(owner, func.attr)
                if found is not None:
                    return found.qualname
            return None
        name = module.resolve(func)
        if name is None:
            return None
        # A bare name is module-local first, then an imported alias.
        if "." not in name:
            candidate = f"{module.module_name}.{name}"
            resolved = self.resolve_symbol(candidate)
            if resolved is not None:
                return resolved
        return self.resolve_symbol(name)

    def lookup_method(self, class_qualname: str, method: str,
                      _depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve ``method`` on a class or its project-known bases (MRO
        approximated depth-first in base order)."""
        if _depth > 8:
            return None
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.base_names:
            resolved = self.resolve_symbol(base)
            if resolved is None:
                continue
            found = self.lookup_method(resolved, method, _depth + 1)
            if found is not None:
                return found
        return None

    def class_of(self, qualname: str) -> Optional[ClassInfo]:
        info = self.functions.get(qualname)
        if info is None or info.class_qualname is None:
            return None
        return self.classes.get(info.class_qualname)

    def subclasses_of(self, base_suffix: str) -> list:
        """ClassInfo list whose (transitive) bases end with
        ``base_suffix`` (e.g. ``"ReliabilityStrategy"``)."""
        out = []
        for info in self.classes.values():
            if self._derives_from(info, base_suffix, set()):
                out.append(info)
        return sorted(out, key=lambda c: c.qualname)

    def _derives_from(self, info: ClassInfo, suffix: str,
                      seen: set) -> bool:
        if info.qualname in seen:
            return False
        seen.add(info.qualname)
        for base in info.base_names:
            if base == suffix or base.endswith("." + suffix):
                return True
            resolved = self.resolve_symbol(base)
            if resolved is not None:
                parent = self.classes.get(resolved)
                if parent is not None \
                        and self._derives_from(parent, suffix, seen):
                    return True
        return False

    def _enclosing_class_qualname(self, module, node) -> Optional[str]:
        cur = module.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                qual = f"{module.module_name}.{cur.name}"
                return qual if qual in self.classes else None
            cur = module.parents.get(cur)
        return None

    def function_at(self, module, node) -> Optional[FunctionInfo]:
        """The indexed FunctionInfo whose body contains ``node``."""
        fn = module.enclosing_function(node)
        while fn is not None and isinstance(fn, ast.Lambda):
            fn = module.enclosing_function(fn)
        if fn is None:
            return None
        return self._info_for_node(module, fn)

    def _info_for_node(self, module, fn) -> Optional[FunctionInfo]:
        owner = self._enclosing_class_qualname(module, fn)
        qual = (f"{owner}.{fn.name}" if owner
                else f"{module.module_name}.{fn.name}")
        info = self.functions.get(qual)
        if info is not None and info.node is fn:
            return info
        return None

    # ------------------------------------------------------------- pass two
    def _link_calls(self, module) -> None:
        for qual, info in self.functions.items():
            if info.module_name != module.module_name:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                # Skip calls belonging to a *nested* indexed function:
                # they get their own edges.  (Nested defs are not
                # indexed, so their calls conservatively attribute to
                # the enclosing indexed function.)
                target = self.resolve_call(module, node)
                if target is not None and target != qual:
                    info.calls.add(target)
                    info.call_sites.setdefault(target, node)
                else:
                    name = module.resolve(node.func)
                    if name is not None and "." in name:
                        info.external_calls.add(name)

    # ------------------------------------------------------- taint closures
    @property
    def taint(self) -> dict:
        """qualname -> (kind, chain) for return-value-tainted functions.

        ``chain`` is the qualified-name path from this function down to
        the banned source call, ending in the source's dotted name —
        ready to render as ``a -> b -> time.monotonic() [wall-clock]``.
        """
        if self._taint is None:
            self._taint = self._compute_taint()
        return self._taint

    @property
    def blocking(self) -> dict:
        """qualname -> chain for functions that reach a blocking call."""
        if self._blocking is None:
            self._blocking = self._compute_blocking()
        return self._blocking

    def _compute_taint(self) -> dict:
        from repro.analysis.simlint.rules import _ENTROPY, _WALL_CLOCK

        tainted: dict = {}
        # Seed: functions whose return value contains a banned read.
        for qual, info in sorted(self.functions.items()):
            module = self.by_module_name[info.module_name]
            seed = _direct_return_taint(module, info.node,
                                        _WALL_CLOCK, _ENTROPY)
            if seed is not None:
                kind, source = seed
                tainted[qual] = (kind, [qual, source])
        # Closure: returning a call of a tainted function taints.
        changed = True
        while changed:
            changed = False
            for qual, info in sorted(self.functions.items()):
                if qual in tainted:
                    continue
                module = self.by_module_name[info.module_name]
                for target in sorted(info.calls):
                    if target not in tainted:
                        continue
                    if _returns_call_of(module, info, target, self):
                        kind, chain = tainted[target]
                        tainted[qual] = (kind, [qual] + chain)
                        changed = True
                        break
        return tainted

    def _compute_blocking(self) -> dict:
        from repro.analysis.simlint.rules import (
            _BLOCKING_EXACT,
            _BLOCKING_PREFIXES,
        )

        blocking: dict = {}
        for qual, info in sorted(self.functions.items()):
            module = self.by_module_name[info.module_name]
            source = _direct_blocking_call(module, info.node,
                                           _BLOCKING_EXACT,
                                           _BLOCKING_PREFIXES)
            if source is not None:
                blocking[qual] = [qual, source]
        changed = True
        while changed:
            changed = False
            for qual, info in sorted(self.functions.items()):
                if qual in blocking:
                    continue
                for target in sorted(info.calls):
                    if target in blocking:
                        blocking[qual] = [qual] + blocking[target]
                        changed = True
                        break
        return blocking


# ------------------------------------------------------------- tree helpers
def _is_generator(fn) -> bool:
    for sub in ast.walk(fn):
        if sub is fn:
            continue
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            continue
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) \
                and _owner_is(fn, sub):
            return True
    return False


def _owner_is(fn, node) -> bool:
    """Cheap ownership check: no nested function re-owns ``node``."""
    for sub in ast.walk(fn):
        if sub is fn:
            continue
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            for inner in ast.walk(sub):
                if inner is node:
                    return False
    return True


def _call_name_if(module, node, exact, prefixes=()) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    name = module.resolve(node.func)
    if name is None:
        return None
    if name in exact or name.startswith(tuple(prefixes)):
        return name
    return None


def _suppressed_source(module, node, codes=("SIM001", "SIM010", "SIM007",
                                            "SIM011", "SIM012")) -> bool:
    """A pragma on the source read discharges downstream propagation."""
    line = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", None) or line
    sup = module.suppressions
    return sup.skip_file or any(sup.suppresses(line, c, end) for c in codes)


def _direct_return_taint(module, fn, wall_clock, entropy):
    """(kind, source-name) if any ``return`` carries a banned read.

    Tracks one level of local data flow: names assigned from a banned
    call anywhere in the function taint a ``return`` of that name.
    """
    tainted_names: dict = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            hit = _expr_taint(module, node.value, wall_clock, entropy)
            if hit is not None:
                tainted_names[node.targets[0].id] = hit
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        hit = _expr_taint(module, node.value, wall_clock, entropy)
        if hit is not None:
            return hit
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Name) and sub.id in tainted_names:
                return tainted_names[sub.id]
    return None


def _expr_taint(module, expr, wall_clock, entropy):
    for sub in ast.walk(expr):
        name = _call_name_if(module, sub, wall_clock)
        if name is not None and not _suppressed_source(module, sub):
            return (TAINT_WALL_CLOCK, f"{name}()")
        name = _call_name_if(module, sub, entropy, ("secrets.",))
        if name is not None and not _suppressed_source(module, sub):
            return (TAINT_ENTROPY, f"{name}()")
    # Materialised set order: list()/tuple() over a set expression.
    from repro.analysis.simlint.core import is_set_expr

    for sub in ast.walk(expr):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id in ("list", "tuple") and sub.args
                and is_set_expr(sub.args[0], module.set_typed_attrs,
                                module.set_typed_names)
                and not _suppressed_source(module, sub, ("SIM003", "SIM011"))):
            return (TAINT_SET_ORDER, f"{sub.func.id}(set)")
    return None


def _returns_call_of(module, info, target, index) -> bool:
    """Does ``info`` return (directly or via a local name) a call whose
    resolved target is ``target``?"""
    returned_names: set = set()
    call_names: dict = {}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            if index.resolve_call(module, node.value) == target:
                call_names[node.targets[0].id] = True
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Call) \
                    and index.resolve_call(module, sub) == target:
                return True
            if isinstance(sub, ast.Name) and sub.id in call_names:
                returned_names.add(sub.id)
    return bool(returned_names)


def _direct_blocking_call(module, fn, exact, prefixes):
    for node in ast.walk(fn):
        name = _call_name_if(module, node, exact, prefixes)
        if name is not None and not _suppressed_source(
                module, node, ("SIM007", "SIM012")):
            return f"{name}()"
    return None
