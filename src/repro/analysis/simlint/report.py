"""simlint reporters and the CI baseline protocol.

Two output formats, both stable (findings pre-sorted by the engine):

- **text** — one ``path:line:col: CODE [severity] message`` line per
  finding plus a summary line, for humans;
- **json** — a versioned document with the finding list and per-rule
  counts, for CI artifacts and machine diffing.

The **baseline** protocol lets CI fail only on *new* findings: a
checked-in ``schemas/simlint_baseline.json`` records finding counts per
``(path, rule)`` key.  :func:`diff_against_baseline` compares a fresh
run against it — a key whose count grew (or is new) is a regression; a
key that shrank or vanished is progress and never fails the gate.
Counts (not line numbers) make the baseline robust to unrelated edits
shifting code up or down a file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.analysis.simlint.core import LintResult

#: Bump when the JSON document shape changes incompatibly.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [f.render() for f in result.findings]
    for path, message in sorted(result.parse_errors):
        lines.append(f"{path}:1:0: PARSE [error] {message}")
    lines.append(
        f"simlint: {result.files} files, {result.errors} errors, "
        f"{result.warnings} warnings"
        + (f", {len(result.parse_errors)} unparsable" if result.parse_errors
           else ""))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    by_rule: dict = {}
    for f in result.findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "version": REPORT_VERSION,
        "files": result.files,
        "errors": result.errors,
        "warnings": result.warnings,
        "parse_errors": [{"path": p, "message": m}
                         for p, m in sorted(result.parse_errors)],
        "counts_by_rule": dict(sorted(by_rule.items())),
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


# -------------------------------------------------------------------- baseline
def baseline_counts(result: LintResult) -> dict:
    """``"path::RULE" -> count`` for every finding in ``result``."""
    counts: dict = {}
    for f in result.findings:
        key = f"{f.path}::{f.rule}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def render_baseline(result: LintResult,
                    rules_hash: Optional[str] = None) -> str:
    doc = {
        "version": REPORT_VERSION,
        "counts": dict(sorted(baseline_counts(result).items())),
    }
    if rules_hash is not None:
        doc["rules_hash"] = rules_hash
    return json.dumps(doc, indent=2) + "\n"


def load_baseline(path: Path, rules_hash: Optional[str] = None) -> dict:
    """Counts map from a baseline file; empty when the file is absent.

    When ``rules_hash`` is given, a baseline recorded under a different
    rule inventory (or with no recorded inventory at all) is *stale*:
    its counts were computed by different rules and cannot ratchet the
    current run, so an empty map is returned — every current finding
    then reads as a regression until the baseline is regenerated with
    ``--write-baseline``.
    """
    if not path.exists():
        return {}
    doc = json.loads(path.read_text())
    if rules_hash is not None and doc.get("rules_hash") != rules_hash:
        return {}
    return dict(doc.get("counts", {}))


def diff_against_baseline(result: LintResult,
                          baseline: Optional[dict]) -> list:
    """New-finding keys: present keys whose count exceeds the baseline.

    Returns sorted ``(key, baseline_count, new_count)`` tuples; empty
    means the gate passes.  Improvements (shrunk or vanished keys) are
    deliberately not reported — ratcheting down is always allowed.
    """
    if not baseline:
        baseline = {}
    current = baseline_counts(result)
    regressions = []
    for key in sorted(current):
        allowed = int(baseline.get(key, 0))
        if current[key] > allowed:
            regressions.append((key, allowed, current[key]))
    return regressions
